//! Dependency-free mini JSON reader and writer.
//!
//! The workspace builds offline with no serde; the few JSON files xtask
//! touches (`lint-baseline.json`, `BENCH_substrate.json`, the lint report
//! artifact) are small and regular, so a minimal recursive-descent value
//! parser and an escaping writer cover everything needed. Numbers are kept
//! as `f64`, which is exact for every integer these files contain.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (no hashing — determinism and
    /// stable round-trips matter more than lookup speed here).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document. Returns an error message with a byte offset on
/// malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = P { bytes, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != bytes.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct P<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(&b) => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let len = utf8_len(b);
                    let s = std::str::from_utf8(&self.bytes[self.i..self.i + len])
                        .map_err(|_| format!("bad utf-8 at byte {}", self.i))?;
                    out.push_str(s);
                    self.i += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1; // [
        let mut out = Vec::new();
        self.ws();
        if self.bytes.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected , or ] at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1; // {
        let mut out = Vec::new();
        self.ws();
        if self.bytes.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            if self.bytes.get(self.i) != Some(&b'"') {
                return Err(format!("expected key at byte {}", self.i));
            }
            let key = self.string()?;
            self.ws();
            if self.bytes.get(self.i) != Some(&b':') {
                return Err(format!("expected : at byte {}", self.i));
            }
            self.i += 1;
            self.ws();
            let val = self.value()?;
            out.push((key, val));
            self.ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected , or }} at byte {}", self.i)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes a string for embedding in JSON output (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basic_document() {
        let doc = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b")
                .and_then(Json::as_arr)
                .and_then(|a| a[2].as_str()),
            Some("x\ny")
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escape_matches_parser() {
        let original = "a\"b\\c\nd\te\u{1}";
        let escaped = escape(original);
        let back = parse(&escaped).expect("parse escaped");
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse(r#""π → λ""#).expect("parse");
        assert_eq!(v.as_str(), Some("π → λ"));
    }
}
