//! A minimal, dependency-free Rust tokenizer for the lint pass.
//!
//! This is not a full lexer: it produces just enough structure for reliable
//! static analysis — identifiers, numbers, string/char literals, lifetimes
//! and (joined) punctuation, each with a 1-based line/column — while
//! *correctly skipping* everything that defeated the old substring matcher:
//!
//! * line comments, doc comments, and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary number of `#` guards (`r"…"`, `r##"…"##`, `br#"…"#`);
//! * char literals vs. lifetimes (`'a'` is a literal, `'a` is not), and
//!   byte-char literals (`b'x'`), which are always literals;
//! * raw identifiers (`r#type`);
//! * a shebang line (`#!/usr/bin/env …`), which is not Rust tokens at all.
//!
//! Byte strings and byte chars are lexed in one pass with the token anchored
//! at the `b` prefix, so diagnostics point at the start of the literal.
//!
//! Comments are returned separately (with their line spans) so the lint can
//! honour `lint:allow(...)` directives without them ever shadowing code.

/// Token classification. The lint rules mostly care about `Ident`/`Punct`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`as`, `fn`, `HashMap`, ...).
    Ident,
    /// Numeric literal (`0xFF`, `1_000`, `1.5e3` — lexed loosely).
    Num,
    /// String literal contents (quotes/guards stripped).
    Str,
    /// Char literal contents.
    Char,
    /// Lifetime name (without the `'`).
    Lifetime,
    /// Punctuation, joined for a small set of two/three-char operators
    /// (`::`, `->`, `+=`, `..=`, ...).
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text (for `Str`/`Char`, the unescaped-as-written contents).
    pub text: String,
    /// Classification.
    pub kind: Kind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in chars) of the token's first character.
    pub col: usize,
}

/// One comment (line or block) with its line span.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Raw comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based first line.
    pub start_line: usize,
    /// 1-based last line (differs from `start_line` for block comments).
    pub end_line: usize,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct Scan {
    /// All code tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Three- and two-character punctuation sequences emitted as one token,
/// longest first.
const JOINED3: &[&str] = &["..=", "<<=", ">>=", "..."];
const JOINED2: &[&str] = &[
    "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consumes a `"…"` string body (opening quote at `peek(0)`), honouring
/// escapes, and returns the contents without the quotes.
fn lex_str_body(cur: &mut Cursor) -> String {
    cur.bump(); // opening `"`
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.peek(0) {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        cur.bump();
        if ch == '"' {
            break;
        }
        text.push(ch);
    }
    text
}

/// Consumes a `'…'` char body (opening quote at `peek(0)`) and returns the
/// contents without the quotes. The caller has already decided this is a
/// char literal, not a lifetime.
fn lex_char_body(cur: &mut Cursor) -> String {
    cur.bump(); // opening `'`
    let mut text = String::new();
    if cur.peek(0) == Some('\\') {
        text.push(cur.bump().unwrap_or('\\'));
        if let Some(esc) = cur.peek(0) {
            text.push(esc);
            cur.bump();
        }
        while let Some(ch) = cur.peek(0) {
            cur.bump();
            if ch == '\'' {
                break;
            }
            text.push(ch);
        }
    } else if let Some(ch) = cur.peek(0) {
        text.push(ch);
        cur.bump();
        if cur.peek(0) == Some('\'') {
            cur.bump();
        }
    }
    text
}

/// Scans `src` into tokens and comments.
pub fn scan(src: &str) -> Scan {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Scan::default();

    // Shebang line: `#!…` at the very start of the file, unless it is the
    // inner attribute `#![…]`. Without this it would lex as garbage
    // punctuation and stray identifiers.
    if cur.peek(0) == Some('#') && cur.peek(1) == Some('!') && cur.peek(2) != Some('[') {
        let mut text = String::new();
        while let Some(ch) = cur.peek(0) {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            cur.bump();
        }
        out.comments.push(Comment {
            text,
            start_line: 1,
            end_line: 1,
        });
    }

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Line comment (also `///` and `//!` doc comments).
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                start_line: line,
                end_line: line,
            });
            continue;
        }

        // Block comment; Rust block comments nest.
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump_n(2);
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push_str("*/");
                        cur.bump_n(2);
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(_), _) => {
                        text.push(cur.bump().unwrap());
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text,
                start_line: line,
                end_line: cur.line,
            });
            continue;
        }

        // Raw strings (`r"…"`, `r#"…"#`, `br##"…"##`) and raw idents (`r#x`).
        if c == 'r' || c == 'b' {
            let prefix = if c == 'b' && cur.peek(1) == Some('r') {
                2
            } else {
                1
            };
            if c == 'r' || prefix == 2 {
                let mut hashes = 0;
                while cur.peek(prefix + hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(prefix + hashes) == Some('"') {
                    cur.bump_n(prefix + hashes + 1);
                    let mut text = String::new();
                    while let Some(ch) = cur.peek(0) {
                        if ch == '"' && (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) {
                            cur.bump_n(hashes + 1);
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    out.tokens.push(Tok {
                        text,
                        kind: Kind::Str,
                        line,
                        col,
                    });
                    continue;
                }
                if c == 'r' && hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
                    cur.bump_n(2); // `r#`
                    let mut text = String::new();
                    while let Some(ch) = cur.peek(0) {
                        if !is_ident_continue(ch) {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    out.tokens.push(Tok {
                        text,
                        kind: Kind::Ident,
                        line,
                        col,
                    });
                    continue;
                }
            }
            // Byte string / byte char: lex in one pass, anchored at the `b`.
            // (These used to fall through to the plain-string branch after
            // bumping the `b`, which anchored the token at the quote — one
            // column off — and an unterminated check could re-enter here.)
            if c == 'b' && cur.peek(1) == Some('"') {
                cur.bump(); // the `b`
                let text = lex_str_body(&mut cur);
                out.tokens.push(Tok {
                    text,
                    kind: Kind::Str,
                    line,
                    col,
                });
                continue;
            }
            if c == 'b' && cur.peek(1) == Some('\'') {
                cur.bump(); // the `b`
                            // A byte literal is always a char literal, never a lifetime
                            // (`b'r'` must not lex as ident `br` + lifetime).
                let text = lex_char_body(&mut cur);
                out.tokens.push(Tok {
                    text,
                    kind: Kind::Char,
                    line,
                    col,
                });
                continue;
            }
        }

        // String literal with escapes.
        if c == '"' {
            let text = lex_str_body(&mut cur);
            out.tokens.push(Tok {
                text,
                kind: Kind::Str,
                line,
                col,
            });
            continue;
        }

        // Char literal vs. lifetime: `'a'` (or an escape `'\n'`) is a char,
        // `'a` with no closing quote is a lifetime or loop label.
        if c == '\'' {
            let is_char = cur.peek(1) == Some('\\')
                || (cur.peek(2) == Some('\'') && cur.peek(1) != Some('\''));
            if is_char {
                let text = lex_char_body(&mut cur);
                out.tokens.push(Tok {
                    text,
                    kind: Kind::Char,
                    line,
                    col,
                });
            } else {
                cur.bump(); // the `'`
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Tok {
                    text,
                    kind: Kind::Lifetime,
                    line,
                    col,
                });
            }
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.tokens.push(Tok {
                text,
                kind: Kind::Ident,
                line,
                col,
            });
            continue;
        }

        // Numeric literal (loose: suffixes and hex digits ride along; a
        // single `.` joins only when followed by a digit, so `0..n` stays
        // a range).
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                cur.bump();
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
            }
            out.tokens.push(Tok {
                text,
                kind: Kind::Num,
                line,
                col,
            });
            continue;
        }

        // Punctuation, joining multi-char operators.
        let take3: String = (0..3).filter_map(|k| cur.peek(k)).collect();
        let joined = JOINED3
            .iter()
            .find(|p| take3.starts_with(**p))
            .or_else(|| JOINED2.iter().find(|p| take3.starts_with(**p)));
        let text = match joined {
            Some(p) => {
                cur.bump_n(p.chars().count());
                (*p).to_string()
            }
            None => {
                cur.bump();
                c.to_string()
            }
        };
        out.tokens.push(Tok {
            text,
            kind: Kind::Punct,
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts_join() {
        assert_eq!(
            texts("a::b -> c += 1..=2"),
            ["a", "::", "b", "->", "c", "+=", "1", "..=", "2"]
        );
    }

    #[test]
    fn comments_are_not_tokens() {
        let s = scan("x // HashMap\n/* Instant /* nested */ still comment */ y");
        assert_eq!(s.tokens.len(), 2);
        assert_eq!(s.tokens[1].text, "y");
        assert_eq!(s.comments.len(), 2);
        assert!(s.comments[1].text.contains("nested"));
    }

    #[test]
    fn strings_hide_their_contents_kind() {
        let s = scan(r#"let x = "HashMap \" quoted";"#);
        let strs: Vec<_> = s.tokens.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_ignore_escapes_and_guards() {
        let s = scan(r###"let x = r#"a "quote" \ b"#; let y = 1;"###);
        let strs: Vec<_> = s.tokens.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#"a "quote" \ b"#);
        // Scanning continued correctly after the raw string.
        assert!(s.tokens.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = scan(r"let c: char = 'x'; fn f<'a>(s: &'a str) {} let nl = '\n';");
        let chars: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, ["x", "\\n"]);
        let lts: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lts, ["a", "a"]);
    }

    #[test]
    fn raw_ident_scans_as_ident() {
        let s = scan("let r#type = 1;");
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == "type"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let s = scan("ab\n  cd");
        assert_eq!((s.tokens[0].line, s.tokens[0].col), (1, 1));
        assert_eq!((s.tokens[1].line, s.tokens[1].col), (2, 3));
    }

    #[test]
    fn numbers_lex_loosely_but_ranges_split() {
        assert_eq!(texts("0..n"), ["0", "..", "n"]);
        assert_eq!(texts("1.5e3 0xFF 1_000u64"), ["1.5e3", "0xFF", "1_000u64"]);
    }

    // --- byte strings / byte chars (regression: these used to be re-lexed
    // after dropping the `b`, anchoring the token one column late) ---

    #[test]
    fn byte_string_is_one_token_anchored_at_the_b() {
        let s = scan(r#"let x = b"HashMap";"#);
        let strs: Vec<_> = s.tokens.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "HashMap");
        // Column of the `b`, not of the quote.
        assert_eq!((strs[0].line, strs[0].col), (1, 9));
        // No stray `b` identifier token survives.
        assert!(!s
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == "b"));
    }

    #[test]
    fn byte_string_escapes_and_termination() {
        let s = scan(r#"b"a\"b" y"#);
        let strs: Vec<_> = s.tokens.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "a\\\"b");
        assert!(s.tokens.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn byte_char_is_a_char_literal_not_a_lifetime() {
        // `b'r'` is the worst case: without byte-char handling it lexes as
        // ident `b` + lifetime-ish `'r'`.
        let s = scan("let x = b'r'; let y = b'\\n';");
        let chars: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Char)
            .map(|t| (t.text.clone(), t.col))
            .collect();
        assert_eq!(chars, [("r".to_string(), 9), ("\\n".to_string(), 23)]);
        assert!(!s.tokens.iter().any(|t| t.kind == Kind::Lifetime));
    }

    #[test]
    fn raw_byte_string_anchored_at_the_b() {
        let s = scan(r##"let x = br#"Instant"#;"##);
        let strs: Vec<_> = s.tokens.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "Instant");
        assert_eq!((strs[0].line, strs[0].col), (1, 9));
    }

    // --- shebang (regression: lexed as `#`, `!`, and path garbage) ---

    #[test]
    fn shebang_line_is_skipped() {
        let s = scan("#!/usr/bin/env run-cargo-script\nfn main() {}");
        assert_eq!(s.tokens[0].text, "fn");
        assert_eq!(s.tokens[0].line, 2);
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.starts_with("#!/usr"));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let s = scan("#![allow(dead_code)]\nfn main() {}");
        assert_eq!(s.tokens[0].text, "#");
        assert_eq!(s.tokens[1].text, "!");
        assert_eq!(s.tokens[2].text, "[");
    }
}
