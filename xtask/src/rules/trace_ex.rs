//! `trace-exhaustiveness`: a cross-file check that every variant of a
//! trace enum is handled by each of its emit fns.
//!
//! The tracing layer keeps several hand-maintained variant lists that the
//! compiler cannot check: `DropCause::from_name` matches against a literal
//! array, `EventKind::ALL` is the canonical variant roster, and simnet's
//! trace adapter maps `DropReason` to `DropCause` arm by arm. Adding a
//! variant and forgetting one of these silently drops telemetry. The
//! wiring lives in `lint.toml [[trace]]` tables: each names the enum, the
//! file defining it, and the fns/consts that must mention *every* variant
//! (as `Enum::Variant` or `Self::Variant`).
//!
//! This rule runs at workspace level (it needs two files at once), so it
//! is not part of the per-file candidate pass.

use crate::config::{LintConfig, TraceEnumCfg};
use crate::lint::Finding;
use crate::parse::{parse, Ast, Item, ItemKind};
use crate::tokenize::{scan, Tok};

use super::WHY_TRACE;

/// Checks every configured trace enum against `sources`, a list of
/// `(workspace-relative path, file contents)`. Missing files or fns are
/// findings themselves — a broken wiring must not pass silently.
pub fn check_sources(sources: &[(String, String)], cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in &cfg.trace_enums {
        check_one(sources, t, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}

fn check_one(sources: &[(String, String)], t: &TraceEnumCfg, out: &mut Vec<Finding>) {
    let misconfig = |file: &str, text: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule: "trace-exhaustiveness",
            text,
            why: WHY_TRACE,
        });
    };
    let Some(def_src) = lookup(sources, &t.defined_in) else {
        misconfig(
            &t.defined_in,
            format!("trace enum `{}`: file not found", t.enum_name),
            out,
        );
        return;
    };
    let def_scan = scan(def_src);
    let def_ast = parse(&def_scan.tokens);
    let Some(enum_item) = def_ast.find_named(ItemKind::Enum, &t.enum_name) else {
        misconfig(
            &t.defined_in,
            format!("trace enum `{}` not found", t.enum_name),
            out,
        );
        return;
    };
    // The emit file may be the defining file itself; reuse its parse.
    let (emit_toks, emit_ast);
    let (etoks, east): (&[Tok], &Ast) = if t.emit_file == t.defined_in {
        (&def_scan.tokens, &def_ast)
    } else {
        let Some(emit_src) = lookup(sources, &t.emit_file) else {
            misconfig(
                &t.emit_file,
                format!("trace enum `{}`: emit file not found", t.enum_name),
                out,
            );
            return;
        };
        let s = scan(emit_src);
        emit_ast = parse(&s.tokens);
        emit_toks = s.tokens;
        (&emit_toks, &emit_ast)
    };
    for fn_name in &t.emit_fns {
        let bodies = emit_bodies(east, &t.enum_name, fn_name);
        if bodies.is_empty() {
            misconfig(
                &t.emit_file,
                format!(
                    "trace enum `{}`: emit fn `{fn_name}` not found",
                    t.enum_name
                ),
                out,
            );
            continue;
        }
        for (vtok, vname) in &enum_item.variants {
            let present = bodies
                .iter()
                .any(|&(bs, be)| mentions_variant(etoks, bs, be, &t.enum_name, vname));
            if !present {
                let anchor = &def_scan.tokens[*vtok];
                out.push(Finding {
                    file: t.defined_in.clone(),
                    line: anchor.line,
                    col: anchor.col,
                    rule: "trace-exhaustiveness",
                    text: format!("{}::{vname} not emitted by `{fn_name}`", t.enum_name),
                    why: WHY_TRACE,
                });
            }
        }
    }
}

fn lookup<'a>(sources: &'a [(String, String)], path: &str) -> Option<&'a str> {
    sources
        .iter()
        .find(|(p, _)| p == path)
        .map(|(_, s)| s.as_str())
}

/// Body ranges of the emit fn/const: items named `fn_name` inside an
/// `impl <enum_name>` block take priority; otherwise any fn/const with the
/// name anywhere in the file (the cross-enum adapter case).
fn emit_bodies(ast: &Ast, enum_name: &str, fn_name: &str) -> Vec<(usize, usize)> {
    fn named_bodies(items: &[Item], fn_name: &str, out: &mut Vec<(usize, usize)>) {
        for it in items {
            if matches!(it.kind, ItemKind::Fn | ItemKind::Const | ItemKind::Static)
                && it.name == fn_name
            {
                if let Some(b) = it.body {
                    out.push(b);
                }
            }
            named_bodies(&it.children, fn_name, out);
        }
    }
    let mut out = Vec::new();
    let mut walk_impls = |items: &[Item]| {
        fn go(items: &[Item], enum_name: &str, fn_name: &str, out: &mut Vec<(usize, usize)>) {
            for it in items {
                if it.kind == ItemKind::Impl && it.name == enum_name {
                    named_bodies(&it.children, fn_name, out);
                } else {
                    go(&it.children, enum_name, fn_name, out);
                }
            }
        }
        go(items, enum_name, fn_name, &mut out);
    };
    walk_impls(&ast.items);
    if out.is_empty() {
        named_bodies(&ast.items, fn_name, &mut out);
    }
    out
}

/// `Enum::Variant` or `Self::Variant` appears in the token range.
fn mentions_variant(toks: &[Tok], bs: usize, be: usize, enum_name: &str, variant: &str) -> bool {
    for i in bs..be.min(toks.len()) {
        if toks[i].text == variant
            && i >= 2
            && toks[i - 1].text == "::"
            && (toks[i - 2].text == enum_name || toks[i - 2].text == "Self")
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn cfg_one(enum_name: &str, defined_in: &str, emit_file: &str, fns: &[&str]) -> LintConfig {
        LintConfig {
            trace_enums: vec![TraceEnumCfg {
                enum_name: enum_name.to_string(),
                defined_in: defined_in.to_string(),
                emit_file: emit_file.to_string(),
                emit_fns: fns.iter().map(|s| s.to_string()).collect(),
            }],
            ..LintConfig::default()
        }
    }

    #[test]
    fn complete_coverage_passes() {
        let lib = "pub enum Cause { A, B }\n\
                   impl Cause {\n\
                       pub fn name(&self) -> &str { match self { Cause::A => \"a\", Cause::B => \"b\" } }\n\
                   }";
        let cfg = cfg_one("Cause", "lib.rs", "lib.rs", &["name"]);
        let found = check_sources(&[("lib.rs".to_string(), lib.to_string())], &cfg);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_arm_in_one_fn_is_flagged() {
        let lib = "pub enum Cause { A, B }\n\
                   impl Cause {\n\
                       pub fn name(&self) -> &str { match self { Self::A => \"a\", Self::B => \"b\" } }\n\
                       pub fn from_name(s: &str) -> Option<Self> {\n\
                           [Cause::A].iter().find(|c| c.name() == s).copied()\n\
                       }\n\
                   }";
        let cfg = cfg_one("Cause", "lib.rs", "lib.rs", &["name", "from_name"]);
        let found = check_sources(&[("lib.rs".to_string(), lib.to_string())], &cfg);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "trace-exhaustiveness");
        assert!(found[0].text.contains("Cause::B"));
        assert!(found[0].text.contains("from_name"));
        assert_eq!(found[0].line, 1); // anchored at the variant definition
    }

    #[test]
    fn cross_file_adapter_checked() {
        let queue = "pub enum DropReason { Cap, Red }";
        let trace = "fn dropped(r: DropReason) -> Cause {\n\
                         match r { DropReason::Cap => Cause::A, DropReason::Red => Cause::B }\n\
                     }";
        let cfg = cfg_one("DropReason", "queue.rs", "trace.rs", &["dropped"]);
        let found = check_sources(
            &[
                ("queue.rs".to_string(), queue.to_string()),
                ("trace.rs".to_string(), trace.to_string()),
            ],
            &cfg,
        );
        assert!(found.is_empty(), "{found:?}");
        // Drop an arm: the variant surfaces at its definition site.
        let trace_missing =
            "fn dropped(r: DropReason) -> Cause { match r { DropReason::Cap => Cause::A, _ => Cause::B } }";
        let found = check_sources(
            &[
                ("queue.rs".to_string(), queue.to_string()),
                ("trace.rs".to_string(), trace_missing.to_string()),
            ],
            &cfg,
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].file, "queue.rs");
        assert!(found[0].text.contains("DropReason::Red"));
    }

    #[test]
    fn const_roster_counts_as_emit() {
        let lib = "pub enum Kind { X, Y }\n\
                   impl Kind { pub const ALL: [Kind; 2] = [Kind::X, Kind::Y]; }";
        let cfg = cfg_one("Kind", "lib.rs", "lib.rs", &["ALL"]);
        assert!(check_sources(&[("lib.rs".to_string(), lib.to_string())], &cfg).is_empty());
    }

    #[test]
    fn missing_fn_is_itself_a_finding() {
        let lib = "pub enum Cause { A }";
        let cfg = cfg_one("Cause", "lib.rs", "lib.rs", &["name"]);
        let found = check_sources(&[("lib.rs".to_string(), lib.to_string())], &cfg);
        assert_eq!(found.len(), 1);
        assert!(found[0].text.contains("`name` not found"));
    }
}
