//! Unit-discipline rules: `float-time`, `raw-cast`, `unit-mixing`,
//! `raw-header-size`.
//!
//! Improvements over the token pass, beyond span fidelity:
//!
//! * `float-time` no longer flags the *definitions* of the conversion fns
//!   (an item's own name is not a use), only calls.
//! * `raw-cast` runs only inside fn bodies and const initializers, and its
//!   backward operand walk skips `[…]` index groups — an index variable
//!   named `byte_pos` is not the quantity being cast.
//! * `unit-mixing` runs per expression segment *inside bodies only*, so
//!   `+` in trait bounds or where clauses can no longer combine with field
//!   names into a phantom finding.
//! * `raw-header-size` ignores attribute token trees (`#[repr(align(…))]`
//!   and friends), while still applying to `#[cfg(test)]` code.

use crate::tokenize::{Kind, Tok};

use super::{Cand, FileCtx, WHY_FLOAT_TIME, WHY_HEADER_SIZE, WHY_MIXING, WHY_RAW_CAST};

const FLOAT_TIME_FNS: &[&str] = &[
    "as_secs_f64",
    "as_micros_f64",
    "as_millis_f64",
    "from_secs_f64",
];

const WIRE_FAMILY: &[&str] = &["DATA_WIRE", "DATA_HEADER_WIRE", "CTRL_WIRE", "WireBytes"];
const PAYLOAD_FAMILY: &[&str] = &["MTU_PAYLOAD", "Bytes", "payload"];

pub fn candidates(ctx: &FileCtx, out: &mut Vec<Cand>) {
    float_time(ctx, out);
    raw_cast(ctx, out);
    unit_mixing(ctx, out);
    raw_header_size(ctx, out);
}

fn float_time(ctx: &FileCtx, out: &mut Vec<Cand>) {
    if ctx.float_home {
        return;
    }
    for m in &ctx.methods {
        if FLOAT_TIME_FNS.contains(&m.name.as_str()) && !ctx.exempt[m.tok] {
            out.push(Cand {
                tok: m.tok,
                rule: "float-time",
                why: WHY_FLOAT_TIME,
            });
        }
    }
    for p in &ctx.paths {
        let t = p.last_tok();
        if p.is_call && FLOAT_TIME_FNS.contains(&p.last()) && !ctx.exempt[t] && !ctx.def_name[t] {
            out.push(Cand {
                tok: t,
                rule: "float-time",
                why: WHY_FLOAT_TIME,
            });
        }
    }
}

fn raw_cast(ctx: &FileCtx, out: &mut Vec<Cand>) {
    if ctx.unit_home {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != Kind::Ident
            || t.text != "as"
            || !ctx.in_body[i]
            || ctx.exempt[i]
            || ctx.in_attr[i]
        {
            continue;
        }
        let next_is_numeric = ctx
            .toks
            .get(i + 1)
            .is_some_and(|n| n.kind == Kind::Ident && is_numeric_type(&n.text));
        if next_is_numeric && cast_source_is_quantity(ctx.toks, i) {
            out.push(Cand {
                tok: i,
                rule: "raw-cast",
                why: WHY_RAW_CAST,
            });
        }
    }
}

fn is_numeric_type(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

/// Byte-ish or time-ish identifier: the cast's source carries a unit.
fn is_quantity_ident(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    l == "size"
        || ["byte", "wire", "payload", "mtu"]
            .iter()
            .any(|n| l.contains(n))
        || ["nanos", "micros", "millis", "secs"]
            .iter()
            .any(|n| l.contains(n))
}

/// Walks backwards from the `as` keyword over the cast's source expression
/// (a primary expression: idents, field/method chains, call groups) and
/// reports whether any identifier in it names a byte/time quantity. `[…]`
/// index groups are stepped over without inspection: the index expression
/// is not the value being cast.
fn cast_source_is_quantity(toks: &[Tok], as_idx: usize) -> bool {
    let mut depth = 0u32;
    let mut j = as_idx;
    for _ in 0..64 {
        if j == 0 {
            return false;
        }
        j -= 1;
        let t = &toks[j];
        match t.kind {
            Kind::Punct => match t.text.as_str() {
                "]" => {
                    // Skip the whole subscript group.
                    let mut d = 1u32;
                    while j > 0 && d > 0 {
                        j -= 1;
                        match toks[j].text.as_str() {
                            "]" => d += 1,
                            "[" => d -= 1,
                            _ => {}
                        }
                    }
                    if d > 0 {
                        return false;
                    }
                }
                ")" => depth += 1,
                "(" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                "." | "::" => {}
                // Operators and delimiters end the operand — but only at
                // depth 0; inside a parenthesized group they are part of it.
                _ if depth > 0 => {}
                _ => return false,
            },
            Kind::Ident => {
                let name = t.text.as_str();
                if depth == 0
                    && matches!(
                        name,
                        "as" | "return" | "let" | "if" | "else" | "match" | "in"
                    )
                {
                    return false;
                }
                if is_quantity_ident(name) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Flags comma/semicolon/brace-delimited expression segments that name both
/// byte families *and* apply arithmetic — the signature of an unchecked
/// domain crossing. Runs per body range, so type-level `+` never counts.
fn unit_mixing(ctx: &FileCtx, out: &mut Vec<Cand>) {
    if ctx.unit_home {
        return;
    }
    for &(bs, be, in_test) in &ctx.bodies {
        if in_test {
            continue;
        }
        let mut seg_start = bs;
        for i in bs..=be {
            let boundary = i == be
                || (ctx.toks[i].kind == Kind::Punct
                    && matches!(ctx.toks[i].text.as_str(), ";" | "{" | "}" | ","));
            if !boundary {
                continue;
            }
            let seg = seg_start..i;
            seg_start = i + 1;
            if seg.is_empty() {
                continue;
            }
            let has = |fam: &[&str]| {
                seg.clone().any(|k| {
                    ctx.toks[k].kind == Kind::Ident && fam.contains(&ctx.toks[k].text.as_str())
                })
            };
            let arith = seg.clone().find(|&k| {
                ctx.toks[k].kind == Kind::Punct
                    && matches!(
                        ctx.toks[k].text.as_str(),
                        "+" | "-" | "*" | "/" | "+=" | "-=" | "*=" | "/="
                    )
            });
            if let Some(op) = arith {
                if has(WIRE_FAMILY) && has(PAYLOAD_FAMILY) {
                    out.push(Cand {
                        tok: op,
                        rule: "unit-mixing",
                        why: WHY_MIXING,
                    });
                }
            }
        }
    }
}

/// Any spelling of the blessed wire sizes 78 / 84 / 1538 outside the unit
/// homes — including in `#[cfg(test)]` code, but not inside attributes.
fn raw_header_size(ctx: &FileCtx, out: &mut Vec<Cand>) {
    if ctx.unit_home {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == Kind::Num && !ctx.in_attr[i] && is_header_size_literal(&t.text) {
            out.push(Cand {
                tok: i,
                rule: "raw-header-size",
                why: WHY_HEADER_SIZE,
            });
        }
    }
}

/// True for any spelling of 78 / 84 / 1538: digit-separated (`1_538`),
/// suffixed (`1538u64`), or float (`1538.0`). Radix-prefixed literals
/// (`0x84`) are bit patterns, not byte counts, and are left alone; so is
/// `1460` (`MTU_PAYLOAD`), which legitimately appears in workload tables.
fn is_header_size_literal(text: &str) -> bool {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    let digits_end = t
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(t.len());
    let num = t[..digits_end]
        .strip_suffix(".0")
        .unwrap_or(&t[..digits_end]);
    matches!(num, "78" | "84" | "1538")
}
