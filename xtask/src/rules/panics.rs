//! `panic-path`: `panic!` / `unreachable!` macros and `.unwrap()` calls in
//! simulation code. `.expect("…")` with a rationale is allowed, as are the
//! non-panicking `unwrap_or*` family (they simply aren't named `unwrap`).
//!
//! Ported false-positive fix: a *definition* of a fn named `unwrap` (e.g.
//! an infallible accessor on a sim type) is no longer flagged — the item's
//! own name is not a call.

use super::{Cand, FileCtx, WHY_PANIC};

pub fn candidates(ctx: &FileCtx, out: &mut Vec<Cand>) {
    for p in &ctx.paths {
        let t = p.last_tok();
        if ctx.exempt[t] || ctx.def_name[t] {
            continue;
        }
        let flagged = (p.is_macro && matches!(p.last(), "panic" | "unreachable"))
            || (p.is_call && p.last() == "unwrap");
        if flagged {
            out.push(Cand {
                tok: t,
                rule: "panic-path",
                why: WHY_PANIC,
            });
        }
    }
    for m in &ctx.methods {
        if m.name == "unwrap" && !ctx.exempt[m.tok] {
            out.push(Cand {
                tok: m.tok,
                rule: "panic-path",
                why: WHY_PANIC,
            });
        }
    }
}
