//! `panic-path`: explicit and implicit panic sites in simulation code.
//!
//! Explicit sites — `panic!` / `unreachable!` macros, `.unwrap()` (method
//! or path call), and `.expect("")` with an *empty or whitespace-only*
//! rationale — are flagged in every linted file. A `.expect` that states a
//! real rationale is allowed, as are the non-panicking `unwrap_or*` family
//! (they simply aren't named `unwrap`).
//!
//! Implicit sites — subscripts (`x[i]`, including slicing) and bare `/` /
//! `%` on non-literal operands — are flagged only inside the hot modules
//! (`lint.toml [alloc] hot-modules`): there an out-of-range index or a
//! zero divisor aborts the event loop mid-run. Divisions whose adjacent
//! operand is a float literal, or whose divisor is a nonzero integer
//! literal, cannot panic and are skipped; divisions on variables the rule
//! cannot type (e.g. two `f64` locals) need a `lint:allow(panic-path)`
//! rationale. Outside the hot modules the same implicit sites still feed
//! the transitive `panic-reachable` rule's leaf set (see
//! `crate::callgraph`).
//!
//! Ported false-positive fix: a *definition* of a fn named `unwrap` (e.g.
//! an infallible accessor on a sim type) is no longer flagged — the item's
//! own name is not a call.

use crate::parse;
use crate::tokenize::Kind;

use super::{Cand, FileCtx, WHY_PANIC};

/// One potential panic site, pre-suppression.
#[derive(Debug, Clone, Copy)]
pub struct PanicSite {
    /// Anchor token index.
    pub tok: usize,
    /// Classification: `panic!`, `unreachable!`, `unwrap`, `expect-empty`,
    /// `index`, `int-div`.
    pub kind: &'static str,
    /// Implicit sites (`index`, `int-div`) are file-local findings only in
    /// hot modules; explicit sites are flagged everywhere.
    pub implicit: bool,
}

/// Every panic site in the file, excluding `#[cfg(test)]` code and item
/// definitions. This is the shared leaf set: `candidates` turns it into
/// file-local `panic-path` findings, and the call-graph rule
/// (`panic-reachable`) consumes it transitively.
pub fn sites(ctx: &FileCtx) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for p in &ctx.paths {
        let t = p.last_tok();
        if ctx.exempt[t] || ctx.def_name[t] {
            continue;
        }
        if p.is_macro && matches!(p.last(), "panic" | "unreachable") {
            out.push(PanicSite {
                tok: t,
                kind: if p.last() == "panic" {
                    "panic!"
                } else {
                    "unreachable!"
                },
                implicit: false,
            });
        } else if p.is_call && p.last() == "unwrap" {
            out.push(PanicSite {
                tok: t,
                kind: "unwrap",
                implicit: false,
            });
        }
    }

    let code = parse::code_indices(ctx.toks, (0, ctx.toks.len()));
    // Position of each code token in `code`, for prev/next lookups.
    let mut pos = vec![usize::MAX; ctx.toks.len()];
    for (i, &t) in code.iter().enumerate() {
        pos[t] = i;
    }

    for m in &ctx.methods {
        if ctx.exempt[m.tok] {
            continue;
        }
        if m.name == "unwrap" {
            out.push(PanicSite {
                tok: m.tok,
                kind: "unwrap",
                implicit: false,
            });
        } else if m.name == "expect" && empty_expect_rationale(ctx, &code, &pos, m.tok) {
            out.push(PanicSite {
                tok: m.tok,
                kind: "expect-empty",
                implicit: false,
            });
        }
    }

    // Implicit sites: subscripts and bare `/` / `%` inside fn bodies.
    for (i, &ti) in code.iter().enumerate() {
        let t = &ctx.toks[ti];
        if t.kind != Kind::Punct || ctx.exempt[ti] || !ctx.in_body[ti] {
            continue;
        }
        match t.text.as_str() {
            "[" => {
                // Indexing, not an array/slice literal, type, or pattern:
                // the subscript follows a value expression.
                let indexes = i > 0
                    && code.get(i - 1).is_some_and(|&p| {
                        let prev = &ctx.toks[p];
                        matches!(prev.text.as_str(), ")" | "]")
                            || (prev.kind == Kind::Ident && !is_keyword(&prev.text))
                    });
                if indexes {
                    out.push(PanicSite {
                        tok: ti,
                        kind: "index",
                        implicit: true,
                    });
                }
            }
            "/" | "%" | "/=" | "%=" => {
                let prev_float = i > 0
                    && code.get(i - 1).is_some_and(|&p| {
                        ctx.toks[p].kind == Kind::Num && is_float_literal(&ctx.toks[p].text)
                    });
                let divisor_safe = code.get(i + 1).is_some_and(|&nx| {
                    let n = &ctx.toks[nx];
                    n.kind == Kind::Num
                        && (is_float_literal(&n.text) || is_nonzero_int_literal(&n.text))
                });
                if !prev_float && !divisor_safe {
                    out.push(PanicSite {
                        tok: ti,
                        kind: "int-div",
                        implicit: true,
                    });
                }
            }
            _ => {}
        }
    }

    out.sort_by_key(|s| s.tok);
    out.dedup_by_key(|s| s.tok);
    out
}

pub fn candidates(ctx: &FileCtx, out: &mut Vec<Cand>) {
    for s in sites(ctx) {
        if s.implicit && !ctx.hot_module {
            continue;
        }
        out.push(Cand {
            tok: s.tok,
            rule: "panic-path",
            why: WHY_PANIC,
        });
    }
}

/// True when the `.expect(...)` at `tok` passes an empty or whitespace-only
/// string literal. Non-literal arguments are left alone — they at least
/// name *something*.
fn empty_expect_rationale(ctx: &FileCtx, code: &[usize], pos: &[usize], tok: usize) -> bool {
    let Some(&i) = pos.get(tok) else { return false };
    if i == usize::MAX {
        return false;
    }
    // `expect` then `(` then the argument; turbofish never appears here.
    if !matches!(code.get(i + 1), Some(&o) if ctx.toks[o].text == "(") {
        return false;
    }
    // The tokenizer stores `Str` tokens quote-stripped, so the text IS the
    // literal's content.
    match code.get(i + 2) {
        Some(&a) if ctx.toks[a].kind == Kind::Str => ctx.toks[a].text.trim().is_empty(),
        _ => false,
    }
}

/// Keywords that may directly precede `[` without it being indexing
/// (patterns, array types, expressions like `return [..]`).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let"
            | "mut"
            | "ref"
            | "in"
            | "if"
            | "else"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "loop"
            | "while"
            | "for"
            | "move"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "unsafe"
            | "box"
            | "const"
            | "static"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "crate"
            | "super"
    )
}

fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.contains('e')
        || text.contains('E')
        || text.ends_with("f32")
        || text.ends_with("f64")
}

fn is_nonzero_int_literal(text: &str) -> bool {
    if is_float_literal(text) {
        return false;
    }
    let t = text
        .strip_prefix("0x")
        .or_else(|| text.strip_prefix("0o"))
        .or_else(|| text.strip_prefix("0b"))
        .unwrap_or(text);
    t.chars()
        .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
        .any(|c| matches!(c, '1'..='9' | 'a'..='f' | 'A'..='F'))
}
