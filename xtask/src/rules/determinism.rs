//! Nondeterminism sources: `hash-collections`, `wall-clock`,
//! `ambient-rng`, `thread-spawn`, `sync-locks`.
//!
//! All five are *path* rules: a bare `HashMap` in an expression or type
//! position, `std::time::Instant`, `rand::thread_rng` / `rand::random`,
//! any `std::thread` path, and `std::sync::Mutex` / `RwLock` in the
//! configured lock-free modules. Matching on parsed path segments (instead
//! of raw adjacent tokens) is what lets `thread::spawn` on a *locally
//! aliased* module stay unflagged while `use std::{thread, …}` — invisible
//! to the token pass, which only saw `std :: thread` spelled out — is now
//! caught through the expanded use-tree.
//!
//! Two file-scoped gates from `lint.toml [determinism]`: `thread-spawn`
//! is skipped in the blessed thread homes (the parallel engine's domain
//! runners), and `sync-locks` fires only in the lock-free modules, where
//! a blocking lock is either a hot-path serialization point or a deadlock
//! risk at the engine's window barriers (channels + barriers only).

use crate::parse::ItemKind;

use super::{Cand, FileCtx, WHY_CLOCK, WHY_HASH, WHY_LOCKS, WHY_RNG, WHY_THREAD};

/// Path prefixes under which the hash collections live.
const HASH_PREFIXES: &[&str] = &["std", "collections", "hash_map", "hash_set"];

/// Path prefixes under which the wall clocks live.
const CLOCK_PREFIXES: &[&str] = &["std", "time"];

/// Path prefixes under which the blocking locks live.
const LOCK_PREFIXES: &[&str] = &["std", "sync"];

pub fn candidates(ctx: &FileCtx, out: &mut Vec<Cand>) {
    // File-scoped gates: blessed thread homes drop `thread-spawn`, and
    // `sync-locks` only applies inside the lock-free modules.
    let keep = |c: &Cand| match c.rule {
        "thread-spawn" => !ctx.thread_home,
        "sync-locks" => ctx.lock_free,
        _ => true,
    };
    // Expression/type positions (everything outside `use` declarations).
    for p in &ctx.paths {
        for (si, (tok, seg)) in p.segs.iter().enumerate() {
            if ctx.exempt[*tok] || ctx.def_name[*tok] {
                continue;
            }
            let prev = if si == 0 {
                None
            } else {
                Some(p.segs[si - 1].1.as_str())
            };
            if let Some(c) = classify(seg, prev, *tok) {
                if keep(&c) {
                    out.push(c);
                }
            }
        }
    }
    // `use` declarations, through the expanded tree — this sees the full
    // path of every leaf even in grouped imports.
    ctx.ast.walk(&mut |item, in_test| {
        if item.kind != ItemKind::Use || in_test {
            return;
        }
        for up in &item.use_paths {
            for (si, seg) in up.segs.iter().enumerate() {
                let prev = if si == 0 {
                    None
                } else {
                    Some(up.segs[si - 1].as_str())
                };
                // Anchor at the leaf: it's the only per-leaf token the
                // tree expansion keeps, and it is on the offending line.
                if let Some(c) = classify(seg, prev, up.anchor) {
                    if keep(&c) {
                        out.push(c);
                    }
                    break; // one finding per leaf
                }
            }
        }
    });
}

/// Classifies one path segment given the segment before it. `None` means
/// the name is used bare (imported or local), which counts for the type
/// names but not for `random`/`thread` (too generic bare).
fn classify(seg: &str, prev: Option<&str>, tok: usize) -> Option<Cand> {
    let cand = |rule, why| Some(Cand { tok, rule, why });
    match seg {
        "HashMap" | "HashSet"
            if prev.is_none() || prev.is_some_and(|p| HASH_PREFIXES.contains(&p)) =>
        {
            cand("hash-collections", WHY_HASH)
        }
        "Instant" | "SystemTime"
            if prev.is_none() || prev.is_some_and(|p| CLOCK_PREFIXES.contains(&p)) =>
        {
            cand("wall-clock", WHY_CLOCK)
        }
        "thread_rng" if prev.is_none() || prev == Some("rand") => cand("ambient-rng", WHY_RNG),
        "random" if prev == Some("rand") => cand("ambient-rng", WHY_RNG),
        "thread" if prev == Some("std") => cand("thread-spawn", WHY_THREAD),
        "Mutex" | "RwLock"
            if prev.is_none() || prev.is_some_and(|p| LOCK_PREFIXES.contains(&p)) =>
        {
            cand("sync-locks", WHY_LOCKS)
        }
        _ => None,
    }
}
