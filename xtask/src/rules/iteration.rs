//! `unordered-iteration`: loops and iterator-method calls over types
//! outside the ordered-collections allowlist (`lint.toml [iteration]
//! ordered-types`) in deterministic code.
//!
//! `hash-collections` already bans the std hash types wholesale; this rule
//! closes the gap for *other* unordered sources — third-party maps, slab
//! re-use patterns, custom containers — at the point where their order
//! actually leaks into event processing: iteration.
//!
//! Resolution is deliberately conservative. A receiver or iterated
//! expression is checked only when its type can be resolved from a `let`
//! ascription, a typed fn parameter, or a `self.field` whose struct is
//! defined in the same file; everything else is skipped, never guessed.
//! Ranges (`0..n`) and call-result expressions in `for` headers are
//! skipped too (the latter are covered by the method-call scan when the
//! receiver is resolvable).

use std::collections::BTreeMap;

use crate::parse::{for_loops_in, let_types_in, method_calls_in, param_types_in};
use crate::tokenize::Kind;

use super::{Cand, FileCtx, FnScope, WHY_ITER};

/// Iterator-producing methods worth checking on a resolved receiver.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

pub fn candidates(ctx: &FileCtx, out: &mut Vec<Cand>) {
    for scope in &ctx.fns {
        if scope.in_test {
            continue;
        }
        let env = fn_env(ctx, scope);
        for fl in for_loops_in(ctx.toks, scope.body) {
            if let Some(ty) = iterated_type(ctx, scope, &env, fl.iter) {
                if !ctx.ordered(&ty) {
                    out.push(Cand {
                        tok: fl.tok,
                        rule: "unordered-iteration",
                        why: WHY_ITER,
                    });
                }
            }
        }
        for m in method_calls_in(ctx.toks, scope.body) {
            if !ITER_METHODS.contains(&m.name.as_str()) {
                continue;
            }
            let ty = match (&m.recv_root, &m.recv_field) {
                (Some(root), None) if root == "self" => None,
                (Some(root), Some(field)) if root == "self" => {
                    scope.owner.and_then(|o| ctx.struct_field_type(o, field))
                }
                (Some(root), None) => env.get(root.as_str()).cloned(),
                _ => None,
            };
            if let Some(ty) = ty {
                if !ctx.ordered(&ty) {
                    out.push(Cand {
                        tok: m.tok,
                        rule: "unordered-iteration",
                        why: WHY_ITER,
                    });
                }
            }
        }
    }
}

impl FileCtx<'_> {
    fn ordered(&self, ty: &str) -> bool {
        self.cfg.ordered_types.iter().any(|t| t == ty)
    }
}

fn fn_env(ctx: &FileCtx, scope: &FnScope) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    for (name, ty) in param_types_in(ctx.toks, (scope.item.sig_start, scope.item.sig_end())) {
        env.insert(name, ty);
    }
    for (name, ty) in let_types_in(ctx.toks, scope.body) {
        env.insert(name, ty);
    }
    env
}

/// Resolves the type of a `for … in <expr>` header when the expression is
/// a (possibly borrowed) plain identifier or `self.field`. Ranges and
/// anything ending in a call are skipped.
fn iterated_type(
    ctx: &FileCtx,
    scope: &FnScope,
    env: &BTreeMap<String, String>,
    iter: (usize, usize),
) -> Option<String> {
    let mut names: Vec<&str> = Vec::new();
    let mut dots = 0usize;
    for i in iter.0..iter.1.min(ctx.toks.len()) {
        let t = &ctx.toks[i];
        match t.kind {
            Kind::Punct => match t.text.as_str() {
                "&" | "&&" => {}
                "." => dots += 1,
                ".." | "..=" => return None, // range expression
                _ => return None,            // calls, indexing, tuples, …
            },
            Kind::Ident if t.text == "mut" => {}
            Kind::Ident => names.push(t.text.as_str()),
            _ => return None,
        }
    }
    match (names.as_slice(), dots) {
        ([name], 0) => env.get(*name).cloned(),
        (["self", field], 1) => scope.owner.and_then(|o| ctx.struct_field_type(o, field)),
        _ => None,
    }
}
