//! The lint rules, run over the parsed AST.
//!
//! Each submodule contributes *candidates* — `(token, rule, rationale)`
//! triples — from one family of checks; the driver in `lint.rs` applies
//! `lint:allow` suppression, rule toggles from `lint.toml`, and the
//! baseline on top. Splitting candidates from findings keeps every rule a
//! pure function of the token stream + AST, which is what the fixture
//! corpus pins down.
//!
//! Rule families:
//!
//! * [`determinism`] — `hash-collections`, `wall-clock`, `ambient-rng`,
//!   `thread-spawn`, `sync-locks`: nondeterminism sources banned from
//!   simulation code, and blocking locks banned from the lock-free
//!   modules (the parallel engine synchronizes with channels + barriers).
//! * [`units`] — `float-time`, `raw-cast`, `unit-mixing`,
//!   `raw-header-size`: byte/time unit-discipline checks.
//! * [`panics`] — `panic-path`: panics, `.unwrap()`, empty `.expect("")`
//!   rationales, and (in hot modules) subscripts and bare `/` / `%` as
//!   implicit panic sites.
//! * [`alloc`] — `alloc-in-datapath`: allocation-shaped expressions in the
//!   hot per-event modules, plus the `--report alloc` inventory.
//! * [`iteration`] — `unordered-iteration`: loops over types without an
//!   ordering guarantee.
//! * [`trace_ex`] — `trace-exhaustiveness`: cross-file check that every
//!   trace-enum variant reaches its emit fns (runs at workspace level, not
//!   per file).
//! * [`reachable`] — `panic-reachable` / `alloc-reachable`: interprocedural
//!   twins of `panic-path` and `alloc-in-datapath` over the workspace call
//!   graph (`crate::callgraph`), reporting shortest witness chains from
//!   the datapath entry points (workspace level, not per file).

pub mod alloc;
pub mod determinism;
pub mod iteration;
pub mod panics;
pub mod reachable;
pub mod trace_ex;
pub mod units;

use crate::config::LintConfig;
use crate::parse::{self, Ast, Item, ItemKind, MethodCall, PathRef};
use crate::tokenize::Tok;

pub const WHY_HASH: &str = "randomized iteration order; use BTreeMap/BTreeSet";
pub const WHY_CLOCK: &str = "wall-clock time in simulation logic; use simcore::time";
pub const WHY_RNG: &str = "unseeded randomness; use an explicitly seeded SimRng";
pub const WHY_FLOAT_TIME: &str =
    "float time arithmetic outside simcore::time; keep time in integer ns";
pub const WHY_RAW_CAST: &str =
    "bare numeric cast on a byte/time quantity; convert through simcore::units / simcore::time";
pub const WHY_PANIC: &str =
    "panic in simulation code; handle the case or justify with lint:allow(panic-path)";
pub const WHY_MIXING: &str =
    "arithmetic mixing wire bytes and payload bytes; cross domains in simnet::consts only";
pub const WHY_THREAD: &str =
    "threads in simulation logic; only the experiment orchestrator may spawn/sleep threads";
pub const WHY_LOCKS: &str =
    "blocking lock in a lock-free module; synchronize with channels and barriers only";
pub const WHY_HEADER_SIZE: &str =
    "raw header/frame-size literal; use simnet::consts (DATA_HEADER_WIRE / CTRL_WIRE / DATA_WIRE)";
pub const WHY_ALLOC: &str =
    "allocation in the per-event datapath; preallocate in a constructor or reuse a buffer";
pub const WHY_ITER: &str =
    "iteration over a type outside the ordered-collections allowlist; event order may drift";
pub const WHY_TRACE: &str =
    "trace enum variant missing from an emit fn; update the fns wired in lint.toml [[trace]]";
pub const WHY_PANIC_REACH: &str =
    "panic reachable from a datapath entry point; make the chain infallible, allowlist a \
     proven-infallible fn in lint.toml [callgraph], or baseline the witness";
pub const WHY_ALLOC_REACH: &str =
    "allocation reachable from a datapath entry point; preallocate, hoist the allocation out \
     of the chain, or baseline the witness";

/// The only file allowed to define/use the float↔time conversions.
pub const FLOAT_TIME_HOME: &str = "crates/simcore/src/time.rs";

/// Files whose whole point is unit conversion: the typed-units layer, the
/// time layer, and the blessed payload↔wire crossing. `raw-cast`,
/// `unit-mixing` and `raw-header-size` do not apply there.
pub const UNIT_HOMES: &[&str] = &[
    "crates/simcore/src/units.rs",
    "crates/simcore/src/time.rs",
    "crates/simnet/src/consts.rs",
];

/// One pre-suppression rule candidate, anchored at a token.
#[derive(Debug, Clone, Copy)]
pub struct Cand {
    pub tok: usize,
    pub rule: &'static str,
    pub why: &'static str,
}

/// One function's body plus the context rules need to reason about it.
pub struct FnScope<'a> {
    pub item: &'a Item,
    /// Inherited `#[cfg(test)]`.
    pub in_test: bool,
    /// Enclosing `impl` type name, when the fn is a method.
    pub owner: Option<&'a str>,
    /// Body token range.
    pub body: (usize, usize),
}

/// Everything the per-file rules see: tokens, AST, config, and the derived
/// per-token flags each rule shares.
pub struct FileCtx<'a> {
    pub file: &'a str,
    pub toks: &'a [Tok],
    pub ast: &'a Ast,
    pub cfg: &'a LintConfig,
    /// Token is inside a `#[cfg(test)]` item (attributes included).
    pub exempt: Vec<bool>,
    /// Token is an item's own name (definitions are not uses).
    pub def_name: Vec<bool>,
    /// Token is inside a `use` declaration (path rules consult the
    /// expanded use-tree instead).
    pub in_use: Vec<bool>,
    /// Token is inside an attribute's token tree.
    pub in_attr: Vec<bool>,
    /// Token is inside a fn body or const/static initializer.
    pub in_body: Vec<bool>,
    /// All path references outside `use` items.
    pub paths: Vec<PathRef>,
    /// All method calls in the file.
    pub methods: Vec<MethodCall>,
    /// Fn bodies and const/static initializers with their test flag
    /// (expression-scoped rules run over these).
    pub bodies: Vec<(usize, usize, bool)>,
    /// Fn scopes, for the receiver/type-resolving rules.
    pub fns: Vec<FnScope<'a>>,
    /// File matches the configured hot-module list.
    pub hot_module: bool,
    /// File is a blessed thread home (`thread-spawn` does not apply).
    pub thread_home: bool,
    /// File matches the lock-free-module list (`sync-locks` applies).
    pub lock_free: bool,
    pub float_home: bool,
    pub unit_home: bool,
}

impl<'a> FileCtx<'a> {
    pub fn new(file: &'a str, toks: &'a [Tok], ast: &'a Ast, cfg: &'a LintConfig) -> Self {
        let n = toks.len();
        let mut exempt = vec![false; n];
        let mut def_name = vec![false; n];
        let mut in_use = vec![false; n];
        let mut in_body = vec![false; n];
        let mut bodies = Vec::new();
        ast.walk(&mut |item, in_test| {
            if in_test {
                for f in exempt.iter_mut().take(item.end.min(n)).skip(item.start) {
                    *f = true;
                }
            }
            if let Some(t) = item.name_tok {
                if t < n {
                    def_name[t] = true;
                }
            }
            if item.kind == ItemKind::Use {
                for f in in_use.iter_mut().take(item.end.min(n)).skip(item.start) {
                    *f = true;
                }
            }
            if matches!(item.kind, ItemKind::Fn | ItemKind::Const | ItemKind::Static) {
                if let Some((bs, be)) = item.body {
                    for f in in_body.iter_mut().take(be.min(n)).skip(bs) {
                        *f = true;
                    }
                    bodies.push((bs, be, in_test));
                }
            }
        });
        // Attribute spans: everything each_code_tok skips.
        let mut in_attr = vec![true; n];
        parse::each_code_tok(toks, (0, n), |i| in_attr[i] = false);

        let mut fns = Vec::new();
        collect_fns(&ast.items, false, None, &mut fns);

        let paths = parse::paths_in(toks, (0, n))
            .into_iter()
            .filter(|p| !in_use[p.segs[0].0])
            .collect();
        let methods = parse::method_calls_in(toks, (0, n));

        FileCtx {
            file,
            toks,
            ast,
            cfg,
            exempt,
            def_name,
            in_use,
            in_attr,
            in_body,
            paths,
            methods,
            bodies,
            fns,
            hot_module: cfg.hot_modules.iter().any(|m| file.ends_with(m.as_str())),
            thread_home: cfg.thread_homes.iter().any(|m| file.ends_with(m.as_str())),
            lock_free: cfg
                .lock_free_modules
                .iter()
                .any(|m| file.ends_with(m.as_str())),
            float_home: file.ends_with(FLOAT_TIME_HOME),
            unit_home: UNIT_HOMES.iter().any(|h| file.ends_with(h)),
        }
    }

    /// Root type of a struct defined in this file, looked up by name.
    pub fn struct_field_type(&self, struct_name: &str, field: &str) -> Option<String> {
        let s = self.ast.find_named(ItemKind::Struct, struct_name)?;
        s.fields
            .iter()
            .find(|f| f.name == field)
            .map(|f| f.ty_root.clone())
    }

    /// Whether a type root is `Copy`: a numeric/char/bool builtin, or a
    /// struct/enum in this file deriving `Copy`.
    pub fn type_is_copy(&self, ty: &str) -> bool {
        if matches!(
            ty,
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
                | "f32"
                | "f64"
                | "bool"
                | "char"
        ) {
            return true;
        }
        let mut copy = false;
        self.ast.walk(&mut |it, _| {
            if matches!(it.kind, ItemKind::Struct | ItemKind::Enum)
                && it.name == ty
                && it.derives_copy
            {
                copy = true;
            }
        });
        copy
    }
}

fn collect_fns<'a>(
    items: &'a [Item],
    in_test: bool,
    owner: Option<&'a str>,
    out: &mut Vec<FnScope<'a>>,
) {
    for it in items {
        let t = in_test || it.cfg_test;
        match it.kind {
            ItemKind::Fn => {
                if let Some(body) = it.body {
                    out.push(FnScope {
                        item: it,
                        in_test: t,
                        owner,
                        body,
                    });
                }
            }
            ItemKind::Impl => collect_fns(&it.children, t, Some(it.name.as_str()), out),
            ItemKind::Mod | ItemKind::Trait => collect_fns(&it.children, t, owner, out),
            _ => {}
        }
    }
}

/// Runs every per-file rule, returning deduplicated, position-sorted
/// candidates. (`trace-exhaustiveness` is workspace-level and not run
/// here.)
pub fn run_file_rules(ctx: &FileCtx) -> Vec<Cand> {
    let mut cands = Vec::new();
    determinism::candidates(ctx, &mut cands);
    units::candidates(ctx, &mut cands);
    panics::candidates(ctx, &mut cands);
    alloc::candidates(ctx, &mut cands);
    iteration::candidates(ctx, &mut cands);
    cands.retain(|c| ctx.cfg.rule_enabled(c.rule));
    cands.sort_by_key(|c| (c.tok, c.rule));
    cands.dedup_by_key(|c| (c.tok, c.rule));
    cands
}
