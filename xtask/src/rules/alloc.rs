//! `alloc-in-datapath`: allocation-shaped expressions in the hot per-event
//! modules (configured in `lint.toml [alloc] hot-modules`).
//!
//! The rule classifies every fn body in a hot module, excluding test code
//! and *constructors* (named `new`/`default`, prefixed `new_`/`with_`, or
//! returning `Self`/the impl type): constructors are exactly where
//! preallocation is supposed to happen. Inside the remaining bodies it
//! flags:
//!
//! * container/box construction: `Vec::new`, `Vec::with_capacity`,
//!   `Box::new`, `String::from`, … (any configured-alloc type × ctor);
//! * the allocating macros `vec![…]` and `format!(…)`;
//! * copying conversions: `.to_vec()`, `.to_string()`, `.to_owned()`,
//!   `.collect()`;
//! * `.clone()` on receivers that don't resolve to a `Copy` type (params,
//!   locals and `self.field`s are resolved through their declared types;
//!   unresolvable receivers are flagged conservatively).
//!
//! The same classification feeds `xtask lint --report alloc`, which also
//! inventories *growth* sites (`push`, `insert`, `reserve`, …) as ungated
//! context: a `push` on a preallocated buffer is fine at steady state but
//! is where capacity growth would hide, so the report lists it while the
//! lint stays quiet. The committed report is the work-list for the
//! ROADMAP-1 arena/pool refactor, and the counting-allocator bench gate
//! (`cargo xtask bench --alloc-count`) is its dynamic counterpart.

use std::collections::BTreeMap;

use crate::parse::{let_types_in, param_types_in, MethodCall};

use super::{Cand, FileCtx, FnScope, WHY_ALLOC};

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Box",
    "Vec",
    "VecDeque",
    "String",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "Rc",
    "Arc",
];

/// Associated fns on [`ALLOC_TYPES`] that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Copying conversion methods that always allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect"];

/// Methods that can grow a container — inventoried, not gated.
const GROWTH_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "reserve",
    "extend",
    "resize",
    "append",
];

/// One classified allocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Workspace-relative file.
    pub file: String,
    pub line: usize,
    pub col: usize,
    /// Enclosing fn, `Owner::name` for methods.
    pub func: String,
    /// Site classification (`Vec::new`, `vec!`, `clone`, `growth:push`, …).
    pub kind: String,
    /// Trimmed source line.
    pub text: String,
    /// Gated sites are lint findings; ungated ones are report-only.
    pub gated: bool,
    /// Anchor token index (for the lint driver).
    pub tok: usize,
}

/// Classifies every allocation site in the file's hot fn bodies.
pub fn report(ctx: &FileCtx, lines: &[&str]) -> Vec<AllocSite> {
    let mut out = Vec::new();
    if !ctx.hot_module {
        return out;
    }
    for scope in &ctx.fns {
        if scope.in_test || is_constructor(ctx, scope) {
            continue;
        }
        let func = match scope.owner {
            Some(o) => format!("{o}::{}", scope.item.name),
            None => scope.item.name.clone(),
        };
        for (tok, kind, gated) in classify_scope(ctx, scope) {
            let t = &ctx.toks[tok];
            out.push(AllocSite {
                file: ctx.file.to_string(),
                line: t.line,
                col: t.col,
                func: func.clone(),
                kind,
                text: lines
                    .get(t.line - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                gated,
                tok,
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, &a.kind).cmp(&(b.line, b.col, &b.kind)));
    out.dedup();
    out
}

/// Emits the gated sites as `alloc-in-datapath` candidates.
pub fn candidates(ctx: &FileCtx, out: &mut Vec<Cand>) {
    if !ctx.hot_module {
        return;
    }
    // The per-line text is rebuilt by the driver; pass empty lines here.
    for site in report(ctx, &[]) {
        if site.gated {
            out.push(Cand {
                tok: site.tok,
                rule: "alloc-in-datapath",
                why: WHY_ALLOC,
            });
        }
    }
}

/// Classifies one fn scope's allocation sites regardless of module
/// hotness or constructor status: `(token, kind, gated)` triples. The
/// file-local rule applies the hot/constructor policy on top; the
/// call-graph rule (`alloc-reachable`) consumes the gated sites as leaves
/// wherever the scope is reachable from a datapath entry.
pub fn classify_scope(ctx: &FileCtx, scope: &FnScope) -> Vec<(usize, String, bool)> {
    let env = fn_env(ctx, scope);
    let (bs, be) = scope.body;
    let mut out = Vec::new();
    for p in &ctx.paths {
        let first = p.segs[0].0;
        if first < bs || first >= be {
            continue;
        }
        if p.is_macro && matches!(p.last(), "vec" | "format") {
            out.push((p.last_tok(), format!("{}!", p.last()), true));
            continue;
        }
        if p.is_call {
            for w in p.segs.windows(2) {
                if ALLOC_TYPES.contains(&w[0].1.as_str()) && ALLOC_CTORS.contains(&w[1].1.as_str())
                {
                    out.push((w[1].0, format!("{}::{}", w[0].1, w[1].1), true));
                    break;
                }
            }
        }
    }
    for m in &ctx.methods {
        if m.tok < bs || m.tok >= be {
            continue;
        }
        let name = m.name.as_str();
        if ALLOC_METHODS.contains(&name) {
            out.push((m.tok, name.to_string(), true));
        } else if name == "clone" {
            if !receiver_is_copy(ctx, scope, &env, m) {
                out.push((m.tok, "clone".to_string(), true));
            }
        } else if GROWTH_METHODS.contains(&name) {
            out.push((m.tok, format!("growth:{name}"), false));
        }
    }
    out
}

/// Constructors are exempt: fns named per config, or returning `Self` /
/// the impl type.
pub fn is_constructor(ctx: &FileCtx, scope: &FnScope) -> bool {
    let name = scope.item.name.as_str();
    if ctx.cfg.constructor_names.iter().any(|n| n == name) {
        return true;
    }
    if ctx
        .cfg
        .constructor_prefixes
        .iter()
        .any(|p| name.starts_with(p.as_str()))
    {
        return true;
    }
    // Return type mentions Self or the owner type.
    let sig = (scope.item.sig_start, scope.item.sig_end());
    let mut after_arrow = false;
    for i in sig.0..sig.1.min(ctx.toks.len()) {
        let t = &ctx.toks[i];
        if t.text == "->" {
            after_arrow = true;
        } else if after_arrow && (t.text == "Self" || scope.owner.is_some_and(|o| o == t.text)) {
            return true;
        }
    }
    false
}

/// Declared types in scope: params and `let` ascriptions.
pub fn fn_env(ctx: &FileCtx, scope: &FnScope) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    for (name, ty) in param_types_in(ctx.toks, (scope.item.sig_start, scope.item.sig_end())) {
        env.insert(name, ty);
    }
    for (name, ty) in let_types_in(ctx.toks, scope.body) {
        env.insert(name, ty);
    }
    env
}

/// Resolves a `.clone()` receiver to a type and checks `Copy`. Only simple
/// chains resolve (`x`, `self.field`); anything else is conservatively
/// non-`Copy`.
fn receiver_is_copy(
    ctx: &FileCtx,
    scope: &FnScope,
    env: &BTreeMap<String, String>,
    m: &MethodCall,
) -> bool {
    let ty = match (&m.recv_root, &m.recv_field) {
        (Some(root), None) if root == "self" => scope.owner.map(str::to_string),
        (Some(root), Some(field)) if root == "self" => {
            scope.owner.and_then(|o| ctx.struct_field_type(o, field))
        }
        (Some(root), None) => env.get(root).cloned(),
        _ => None,
    };
    ty.is_some_and(|t| ctx.type_is_copy(&t))
}
