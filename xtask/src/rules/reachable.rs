//! `panic-reachable` / `alloc-reachable`: interprocedural twins of
//! `panic-path` and `alloc-in-datapath`, run over the workspace call graph
//! (`crate::callgraph`).
//!
//! Entry points are every non-test, non-constructor fn defined in a hot
//! module (`lint.toml [alloc] hot-modules`), plus any extra qnames in
//! `[callgraph] entry-points`. A BFS from the entries must reach no panic
//! or allocation leaf; each violation reports the *shortest* witness chain
//! `entry -> f -> g` ending at the leaf's file, kind, and source line. The
//! chain text deliberately omits line numbers so baseline entries survive
//! line churn (the `--report callgraph` JSON carries exact positions).
//!
//! Leaves inside hot-module files are *not* reported here — the file-local
//! rules already flag them — so the interprocedural rules cover exactly
//! the cross-file blind spot. Fns named in `[callgraph] known-infallible`
//! are not traversed into: the allowlist is for hand-proven helpers (e.g.
//! masked ring indexing) where a `lint:allow` at every call site would be
//! noise. A `lint:allow(panic-path)` / `lint:allow(panic-reachable)` (or
//! the `alloc-*` pair) on the leaf itself also removes it from the leaf
//! set, with the same adjacency rules as every other suppression.

use std::collections::VecDeque;

use crate::callgraph::{self, Family};
use crate::config::LintConfig;
use crate::lint::Finding;

use super::{WHY_ALLOC_REACH, WHY_PANIC_REACH};

/// One witness: the shortest call chain from an entry point to a leaf.
#[derive(Debug, Clone)]
pub struct Witness {
    pub rule: &'static str,
    /// Entry qname plus its definition site (the finding anchor).
    pub entry: String,
    pub entry_file: String,
    pub entry_line: usize,
    pub entry_col: usize,
    /// Qnames from the entry to the leaf's enclosing fn.
    pub chain: Vec<String>,
    /// Leaf position.
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub kind: String,
    pub text: String,
}

impl Witness {
    /// The baseline-stable finding text: chain + leaf, no line numbers.
    pub fn chain_text(&self) -> String {
        format!(
            "{}\n  -> {} [{}] {}",
            self.chain.join(" -> "),
            self.file,
            self.kind,
            self.text
        )
    }
}

/// Deterministic summary for `--report callgraph`.
#[derive(Debug, Default)]
pub struct CallgraphReport {
    pub fn_count: usize,
    pub edge_count: usize,
    /// Entry-point qnames, sorted and deduplicated.
    pub entries: Vec<String>,
    /// All witnesses (pre-baseline), sorted.
    pub witnesses: Vec<Witness>,
}

/// Runs the interprocedural analysis over `(path, source)` pairs,
/// returning the per-rule findings (respecting `[rules]` toggles) and the
/// full report.
pub fn analyze(sources: &[(String, String)], cfg: &LintConfig) -> (Vec<Finding>, CallgraphReport) {
    let graph = callgraph::build(sources, cfg);

    let mut entry_ids: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| {
            let f = &graph.fns[i];
            !f.infallible
                && ((f.hot && !f.is_ctor) || cfg.entry_points.iter().any(|e| e == &f.qname))
        })
        .collect();
    entry_ids.sort_by(|&a, &b| {
        (&graph.fns[a].qname, &graph.fns[a].file).cmp(&(&graph.fns[b].qname, &graph.fns[b].file))
    });

    // Multi-source BFS. First discovery wins: minimum depth, ties broken
    // by entry qname order (sources are enqueued sorted) and then by
    // callee qname (adjacency is sorted).
    let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut seen = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    for &e in &entry_ids {
        if !seen[e] {
            seen[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &graph.fns[u].callees {
            if seen[v] || graph.fns[v].infallible {
                continue;
            }
            seen[v] = true;
            parent[v] = Some(u);
            queue.push_back(v);
        }
    }

    let mut witnesses = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        // Leaves in hot files are the file-local rules' business; the
        // interprocedural rules cover exactly the cross-file remainder.
        if !seen[id] || node.hot || node.leaves.is_empty() {
            continue;
        }
        let mut chain = vec![node.qname.clone()];
        let mut root = id;
        while let Some(p) = parent[root] {
            root = p;
            chain.push(graph.fns[root].qname.clone());
        }
        chain.reverse();
        let entry = &graph.fns[root];
        for l in &node.leaves {
            witnesses.push(Witness {
                rule: match l.family {
                    Family::Panic => "panic-reachable",
                    Family::Alloc => "alloc-reachable",
                },
                entry: entry.qname.clone(),
                entry_file: entry.file.clone(),
                entry_line: entry.line,
                entry_col: entry.col,
                chain: chain.clone(),
                file: node.file.clone(),
                line: l.line,
                col: l.col,
                kind: l.kind.clone(),
                text: l.text.clone(),
            });
        }
    }
    witnesses.sort_by(|a, b| {
        (a.rule, &a.file, a.line, a.col, &a.kind, &a.entry)
            .cmp(&(b.rule, &b.file, b.line, b.col, &b.kind, &b.entry))
    });

    let findings = witnesses
        .iter()
        .filter(|w| cfg.rule_enabled(w.rule))
        .map(|w| Finding {
            file: w.entry_file.clone(),
            line: w.entry_line,
            col: w.entry_col,
            rule: w.rule,
            text: w.chain_text(),
            why: match w.rule {
                "panic-reachable" => WHY_PANIC_REACH,
                _ => WHY_ALLOC_REACH,
            },
        })
        .collect();

    let mut entries: Vec<String> = entry_ids
        .iter()
        .map(|&i| graph.fns[i].qname.clone())
        .collect();
    entries.dedup();

    let report = CallgraphReport {
        fn_count: graph.fns.len(),
        edge_count: graph.edge_count,
        entries,
        witnesses,
    };
    (findings, report)
}

/// The findings alone, for the fixture harness.
pub fn check_sources(sources: &[(String, String)], cfg: &LintConfig) -> Vec<Finding> {
    analyze(sources, cfg).0
}
