//! Per-rule lint configuration (`lint.toml`).
//!
//! The defaults compiled into this module are the committed workspace
//! policy; `lint.toml` at the workspace root overlays them so the hot-module
//! list, ordered-type allowlist, and trace-enum wiring can evolve without
//! recompiling. The reader is a deliberately small TOML subset — tables,
//! array-of-tables, `key = value` with strings / bools / integers / string
//! arrays (single- or multi-line), and `#` comments — which is all the
//! committed file uses. Unknown keys are ignored so the format can grow.

use std::collections::BTreeMap;
use std::path::Path;

/// Wiring for one trace-exhaustiveness check: every variant of `enum_name`
/// (defined in `defined_in`) must be mentioned in one of the `emit_fns`
/// (functions or consts) of `emit_file`.
#[derive(Debug, Clone)]
pub struct TraceEnumCfg {
    pub enum_name: String,
    pub defined_in: String,
    pub emit_file: String,
    pub emit_fns: Vec<String>,
}

/// The full lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Baseline file path, relative to the workspace root.
    pub baseline_path: String,
    /// Per-rule enable flags; absent rules default to enabled.
    pub rule_enabled: BTreeMap<String, bool>,
    /// Files (workspace-relative) whose item bodies are the per-event hot
    /// datapath for `alloc-in-datapath`.
    pub hot_modules: Vec<String>,
    /// Exact fn names exempt from the alloc rule (constructors).
    pub constructor_names: Vec<String>,
    /// Fn-name prefixes exempt from the alloc rule.
    pub constructor_prefixes: Vec<String>,
    /// Type roots whose iteration order is deterministic
    /// (`unordered-iteration` allowlist).
    pub ordered_types: Vec<String>,
    /// Trace-exhaustiveness wiring.
    pub trace_enums: Vec<TraceEnumCfg>,
    /// Extra call-graph entry points (fn qnames) beyond the hot-module
    /// fns, for `panic-reachable` / `alloc-reachable`.
    pub entry_points: Vec<String>,
    /// Fns (qname `Owner::name` or bare name) the call graph treats as
    /// infallible and never traverses into.
    pub known_infallible: Vec<String>,
    /// Files (workspace-relative) that are blessed thread homes: the
    /// `thread-spawn` rule does not apply inside them (the experiment
    /// pool uses per-site `lint:allow`; the parallel engine's domain
    /// runners are structural and live here instead).
    pub thread_homes: Vec<String>,
    /// Files (workspace-relative) where `std::sync::Mutex`/`RwLock` are
    /// banned (`sync-locks`): the parallel engine synchronizes with
    /// channels and barriers only, so a lock in these modules is either a
    /// hot-path serialization point or a deadlock risk at the window
    /// barriers.
    pub lock_free_modules: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            baseline_path: "lint-baseline.json".to_string(),
            rule_enabled: BTreeMap::new(),
            hot_modules: vec![
                "crates/simnet/src/queue.rs".to_string(),
                "crates/simnet/src/port.rs".to_string(),
                "crates/simnet/src/sim.rs".to_string(),
                "crates/simnet/src/packet.rs".to_string(),
                "crates/simcore/src/wheel.rs".to_string(),
                "crates/simcore/src/event.rs".to_string(),
            ],
            constructor_names: vec!["new".to_string(), "default".to_string()],
            constructor_prefixes: vec!["new_".to_string(), "with_".to_string()],
            ordered_types: vec![
                "Vec".to_string(),
                "VecDeque".to_string(),
                "BTreeMap".to_string(),
                "BTreeSet".to_string(),
                "BinaryHeap".to_string(),
                "Option".to_string(),
                "Range".to_string(),
                "array".to_string(),
                "tuple".to_string(),
                "String".to_string(),
                "str".to_string(),
                "Slab".to_string(),
            ],
            trace_enums: vec![
                TraceEnumCfg {
                    enum_name: "DropCause".to_string(),
                    defined_in: "crates/simtrace/src/lib.rs".to_string(),
                    emit_file: "crates/simtrace/src/lib.rs".to_string(),
                    emit_fns: vec!["name".to_string(), "from_name".to_string()],
                },
                TraceEnumCfg {
                    enum_name: "EventKind".to_string(),
                    defined_in: "crates/simtrace/src/lib.rs".to_string(),
                    emit_file: "crates/simtrace/src/lib.rs".to_string(),
                    emit_fns: vec!["name".to_string(), "ALL".to_string()],
                },
                TraceEnumCfg {
                    enum_name: "DropReason".to_string(),
                    defined_in: "crates/simnet/src/queue.rs".to_string(),
                    emit_file: "crates/simnet/src/trace.rs".to_string(),
                    emit_fns: vec!["dropped".to_string()],
                },
            ],
            entry_points: Vec::new(),
            known_infallible: Vec::new(),
            thread_homes: vec!["crates/simnet/src/parsim.rs".to_string()],
            lock_free_modules: vec![
                "crates/simnet/src/arena.rs".to_string(),
                "crates/simnet/src/queue.rs".to_string(),
                "crates/simnet/src/port.rs".to_string(),
                "crates/simnet/src/sim.rs".to_string(),
                "crates/simnet/src/packet.rs".to_string(),
                "crates/simcore/src/wheel.rs".to_string(),
                "crates/simcore/src/event.rs".to_string(),
                "crates/simnet/src/parsim.rs".to_string(),
                "crates/simnet/src/partition.rs".to_string(),
            ],
        }
    }
}

impl LintConfig {
    /// Whether a rule is enabled (default true).
    pub fn rule_enabled(&self, rule: &str) -> bool {
        self.rule_enabled.get(rule).copied().unwrap_or(true)
    }

    /// Loads `lint.toml` from the workspace root if present, overlaying the
    /// defaults. A missing file is not an error; a malformed one is.
    pub fn load(root: &Path) -> Result<LintConfig, String> {
        let path = root.join("lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(src) => LintConfig::from_toml(&src).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LintConfig::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses a `lint.toml` document, overlaying the defaults. List-valued
    /// keys *replace* the default list when present.
    pub fn from_toml(src: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let mut table = String::new();
        let mut trace_current: Option<TraceEnumCfg> = None;
        let mut lines = src.lines().enumerate().peekable();
        while let Some((lineno, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if let Some(t) = trace_current.take() {
                    cfg.trace_enums.push(t);
                }
                let name = name.trim();
                if name == "trace" {
                    // First `[[trace]]` table replaces the defaults wholesale.
                    if table != "trace" {
                        cfg.trace_enums.clear();
                    }
                    trace_current = Some(TraceEnumCfg {
                        enum_name: String::new(),
                        defined_in: String::new(),
                        emit_file: String::new(),
                        emit_fns: Vec::new(),
                    });
                }
                table = name.to_string();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if let Some(t) = trace_current.take() {
                    cfg.trace_enums.push(t);
                }
                table = name.trim().to_string();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let key = line[..eq].trim().trim_matches('"').to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets balance.
            while value.starts_with('[') && !brackets_balanced(&value) {
                match lines.next() {
                    Some((_, more)) => {
                        value.push(' ');
                        value.push_str(strip_comment(more).trim());
                    }
                    None => return Err(format!("line {}: unterminated array", lineno + 1)),
                }
            }
            apply_kv(&mut cfg, &mut trace_current, &table, &key, &value)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        if let Some(t) = trace_current.take() {
            cfg.trace_enums.push(t);
        }
        for t in &cfg.trace_enums {
            if t.enum_name.is_empty() || t.defined_in.is_empty() || t.emit_file.is_empty() {
                return Err(
                    "each [[trace]] table needs `enum`, `defined-in`, and `emit-file`".to_string(),
                );
            }
        }
        Ok(cfg)
    }
}

fn apply_kv(
    cfg: &mut LintConfig,
    trace: &mut Option<TraceEnumCfg>,
    table: &str,
    key: &str,
    value: &str,
) -> Result<(), String> {
    match table {
        "baseline" if key == "path" => {
            cfg.baseline_path = parse_string(value)?;
        }
        "rules" => {
            let enabled = parse_bool(value)?;
            cfg.rule_enabled.insert(key.to_string(), enabled);
        }
        "alloc" => match key {
            "hot-modules" => cfg.hot_modules = parse_string_array(value)?,
            "constructor-names" => cfg.constructor_names = parse_string_array(value)?,
            "constructor-prefixes" => cfg.constructor_prefixes = parse_string_array(value)?,
            _ => {}
        },
        "iteration" if key == "ordered-types" => {
            cfg.ordered_types = parse_string_array(value)?;
        }
        "callgraph" => match key {
            "entry-points" => cfg.entry_points = parse_string_array(value)?,
            "known-infallible" => cfg.known_infallible = parse_string_array(value)?,
            _ => {}
        },
        "determinism" => match key {
            "thread-homes" => cfg.thread_homes = parse_string_array(value)?,
            "lock-free-modules" => cfg.lock_free_modules = parse_string_array(value)?,
            _ => {}
        },
        "trace" => {
            let t = trace
                .as_mut()
                .ok_or_else(|| "key outside a [[trace]] table".to_string())?;
            match key {
                "enum" => t.enum_name = parse_string(value)?,
                "defined-in" => t.defined_in = parse_string(value)?,
                "emit-file" => t.emit_file = parse_string(value)?,
                "emit-fns" => t.emit_fns = parse_string_array(value)?,
                _ => {}
            }
        }
        _ => {} // unknown table: ignore
    }
    Ok(())
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{v}`"))
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected true/false, got `{other}`")),
    }
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_hot_modules() {
        let cfg = LintConfig::default();
        assert!(cfg
            .hot_modules
            .iter()
            .any(|m| m == "crates/simnet/src/queue.rs"));
        assert!(cfg.rule_enabled("alloc-in-datapath"));
        assert_eq!(cfg.trace_enums.len(), 3);
    }

    #[test]
    fn toml_overlay_rules_and_lists() {
        let cfg = LintConfig::from_toml(
            "# policy\n\
             [baseline]\n\
             path = \"other.json\"\n\
             [rules]\n\
             wall-clock = false\n\
             [iteration]\n\
             ordered-types = [\n  \"Vec\", # fast\n  \"BTreeMap\",\n]\n",
        )
        .expect("parse");
        assert_eq!(cfg.baseline_path, "other.json");
        assert!(!cfg.rule_enabled("wall-clock"));
        assert!(cfg.rule_enabled("panic-path"));
        assert_eq!(cfg.ordered_types, ["Vec", "BTreeMap"]);
        // Untouched sections keep their defaults.
        assert_eq!(cfg.hot_modules.len(), 6);
    }

    #[test]
    fn trace_tables_replace_defaults() {
        let cfg = LintConfig::from_toml(
            "[[trace]]\n\
             enum = \"DropCause\"\n\
             defined-in = \"a.rs\"\n\
             emit-file = \"b.rs\"\n\
             emit-fns = [\"name\"]\n\
             [[trace]]\n\
             enum = \"E2\"\n\
             defined-in = \"c.rs\"\n\
             emit-file = \"d.rs\"\n\
             emit-fns = [\"f\", \"g\"]\n",
        )
        .expect("parse");
        assert_eq!(cfg.trace_enums.len(), 2);
        assert_eq!(cfg.trace_enums[1].enum_name, "E2");
        assert_eq!(cfg.trace_enums[1].emit_fns, ["f", "g"]);
    }

    #[test]
    fn callgraph_table_parses() {
        let cfg = LintConfig::from_toml(
            "[callgraph]\n\
             entry-points = [\"Sim::run_until\"]\n\
             known-infallible = [\n  \"Wheel::place\", # masked ring index\n  \"saturating_gap\",\n]\n",
        )
        .expect("parse");
        assert_eq!(cfg.entry_points, ["Sim::run_until"]);
        assert_eq!(cfg.known_infallible, ["Wheel::place", "saturating_gap"]);
        // Untouched by default.
        assert!(LintConfig::default().entry_points.is_empty());
    }

    #[test]
    fn determinism_table_parses() {
        let cfg = LintConfig::from_toml(
            "[determinism]\n\
             thread-homes = [\"crates/simnet/src/parsim.rs\"]\n\
             lock-free-modules = [\"crates/simnet/src/sim.rs\", \"crates/simnet/src/parsim.rs\"]\n",
        )
        .expect("parse");
        assert_eq!(cfg.thread_homes, ["crates/simnet/src/parsim.rs"]);
        assert_eq!(
            cfg.lock_free_modules,
            ["crates/simnet/src/sim.rs", "crates/simnet/src/parsim.rs"]
        );
        // Defaults bless the parallel engine and ban locks across the hot
        // modules plus the engine files.
        let d = LintConfig::default();
        assert!(d.thread_homes.iter().any(|f| f.ends_with("parsim.rs")));
        assert!(d.lock_free_modules.iter().any(|f| f.ends_with("parsim.rs")));
        assert!(d
            .lock_free_modules
            .iter()
            .any(|f| f.ends_with("partition.rs")));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(LintConfig::from_toml("[rules]\nwall-clock = maybe\n").is_err());
        assert!(LintConfig::from_toml("[[trace]]\nenum = \"X\"\n").is_err());
        assert!(LintConfig::from_toml("just some words\n").is_err());
    }
}
