//! `cargo xtask trace-report`: post-mortem summary of packet-lifecycle
//! trace logs.
//!
//! Reads the JSONL files written by the experiments binary under
//! `--trace` (one `TraceEvent` per line, plus optional
//! `"kind":"summary"` lines from `flexpass-metrics`), aggregates them,
//! and prints the questions a post-mortem actually asks: where were
//! packets dropped and why, what fraction of admitted packets were
//! CE-marked, what fraction of credits bought no data, and which flows
//! retransmitted when.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use flexpass_simtrace::TraceEvent;

/// Aggregated view over every parsed event.
#[derive(Default)]
struct Report {
    files: usize,
    events: u64,
    summaries: u64,
    skipped: u64,
    by_kind: BTreeMap<&'static str, u64>,
    /// (node, cause name) → drop count.
    drop_sites: BTreeMap<(u64, &'static str), u64>,
    enqueues: u64,
    ecn_marks: u64,
    credits_sent: u64,
    credits_wasted: u64,
    /// Wasted credits matched against a still-outstanding observed issue
    /// for the same flow — the reliable numerator for the waste ratio.
    matched_waste: u64,
    /// Wasted credits whose issue was never observed (ring-evicted):
    /// evidence the trace is truncated and the ratio undercounts.
    unmatched_waste: u64,
    /// flow → observed issues not yet consumed by a waste.
    credit_outstanding: BTreeMap<u64, u64>,
    rtos: u64,
    timer_cancels: u64,
    /// flow → retransmit (t_ns, seq) timeline, in file order.
    retx: BTreeMap<u64, Vec<(u64, i64)>>,
}

impl Report {
    fn fold(&mut self, ev: &TraceEvent) {
        self.events += 1;
        *self.by_kind.entry(ev.kind().name()).or_insert(0) += 1;
        match ev {
            TraceEvent::Enqueue { .. } => self.enqueues += 1,
            TraceEvent::EcnMark { .. } => self.ecn_marks += 1,
            TraceEvent::Drop { node, cause, .. } => {
                *self.drop_sites.entry((*node, cause.name())).or_insert(0) += 1;
            }
            TraceEvent::CreditSent { flow, .. } => {
                self.credits_sent += 1;
                *self.credit_outstanding.entry(*flow).or_insert(0) += 1;
            }
            TraceEvent::CreditWasted { flow, .. } => {
                self.credits_wasted += 1;
                match self.credit_outstanding.get_mut(flow) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        self.matched_waste += 1;
                    }
                    _ => self.unmatched_waste += 1,
                }
            }
            TraceEvent::Retransmit { t_ns, flow, seq } => {
                self.retx.entry(*flow).or_default().push((*t_ns, *seq));
            }
            TraceEvent::Rto { .. } => self.rtos += 1,
            TraceEvent::TimerCancel { .. } => self.timer_cancels += 1,
            TraceEvent::Dequeue { .. } => {}
        }
    }

    fn fold_text(&mut self, text: &str) {
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match TraceEvent::parse_json_line(line) {
                Some(ev) => self.fold(&ev),
                None if line.contains("\"kind\":\"summary\"")
                    || line.contains("\"kind\":\"meta\"") =>
                {
                    self.summaries += 1
                }
                None => self.skipped += 1,
            }
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace-report: {} file(s), {} event(s), {} meta/summary line(s), {} unparsed",
            self.files, self.events, self.summaries, self.skipped
        );
        if self.events == 0 {
            return out;
        }
        let _ = writeln!(out, "\nevents by kind:");
        for (kind, n) in &self.by_kind {
            let _ = writeln!(out, "  {kind:<14} {n}");
        }

        if !self.drop_sites.is_empty() {
            let mut sites: Vec<_> = self.drop_sites.iter().collect();
            sites.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            let _ = writeln!(out, "\ntop drop sites:");
            for ((node, cause), n) in sites.into_iter().take(10) {
                let _ = writeln!(out, "  node {node:<5} {cause:<14} {n}");
            }
        }

        let ratio = |num: u64, den: u64| {
            if den == 0 {
                "n/a".to_string()
            } else {
                format!("{:.4} ({num}/{den})", num as f64 / den as f64)
            }
        };
        let _ = writeln!(out, "\nrates:");
        let _ = writeln!(
            out,
            "  ecn mark rate      {}",
            ratio(self.ecn_marks, self.enqueues)
        );
        // Only wastes with an observed matching issue count, so a
        // ring-truncated log can no longer render a >100 % waste rate.
        let truncated = if self.unmatched_waste > 0 {
            format!(
                " [TRUNCATED: {} waste(s) without observed issue]",
                self.unmatched_waste
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  credit waste       {}{truncated}",
            ratio(self.matched_waste, self.credits_sent)
        );
        let _ = writeln!(out, "  rto fires          {}", self.rtos);
        let _ = writeln!(out, "  timer cancels      {}", self.timer_cancels);

        if !self.retx.is_empty() {
            let mut flows: Vec<_> = self.retx.iter().collect();
            flows.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
            let _ = writeln!(out, "\nretransmit timelines (top flows):");
            for (flow, tl) in flows.into_iter().take(8) {
                let shown: Vec<String> = tl
                    .iter()
                    .take(10)
                    .map(|(t, s)| format!("{}us:seq{s}", t / 1_000))
                    .collect();
                let more = if tl.len() > 10 {
                    format!(" (+{} more)", tl.len() - 10)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  flow {flow:<6} x{:<4} {}{more}",
                    tl.len(),
                    shown.join(" ")
                );
            }
        }
        out
    }
}

fn collect_jsonl(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            collect_jsonl(&p, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "jsonl") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// Runs the report over `paths` (files or directories searched for
/// `*.jsonl`), printing to stdout. Returns an error string for usage /
/// IO problems.
pub fn run(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err("trace-report requires at least one file or directory".into());
    }
    let mut files = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if !path.exists() {
            return Err(format!("trace-report: no such path `{p}`"));
        }
        if path.is_dir() {
            collect_jsonl(&path, &mut files).map_err(|e| format!("trace-report: {p}: {e}"))?;
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err("trace-report: no .jsonl files found under the given paths".into());
    }
    let mut report = Report::default();
    for f in &files {
        let text =
            fs::read_to_string(f).map_err(|e| format!("trace-report: {}: {e}", f.display()))?;
        report.files += 1;
        report.fold_text(&text);
    }
    print!("{}", report.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simtrace::DropCause;

    fn jsonl() -> String {
        let evs = [
            TraceEvent::Enqueue {
                t_ns: 1_000,
                queue: 3,
                flow: 7,
                seq: 0,
                bytes_after: 1538,
            },
            TraceEvent::EcnMark {
                t_ns: 1_100,
                queue: 3,
                flow: 7,
                seq: 0,
            },
            TraceEvent::Drop {
                t_ns: 2_000,
                node: 4,
                flow: 7,
                seq: 1,
                cause: DropCause::Buffer,
            },
            TraceEvent::Drop {
                t_ns: 2_100,
                node: 4,
                flow: 8,
                seq: 0,
                cause: DropCause::Buffer,
            },
            TraceEvent::CreditSent {
                t_ns: 3_000,
                flow: 9,
                idx: 0,
            },
            TraceEvent::CreditWasted {
                t_ns: 3_500,
                flow: 9,
            },
            TraceEvent::Retransmit {
                t_ns: 4_000,
                flow: 7,
                seq: 1,
            },
        ];
        let mut s: String = evs.iter().map(|e| e.to_json_line() + "\n").collect();
        s.push_str("{\"kind\":\"summary\",\"bin_ns\":1000}\n");
        s.push_str("{\"kind\":\"meta\",\"label\":\"x\",\"total\":7}\n");
        s.push_str("not json\n");
        s
    }

    #[test]
    fn report_aggregates_and_renders() {
        let mut r = Report {
            files: 1,
            ..Default::default()
        };
        r.fold_text(&jsonl());
        assert_eq!(r.events, 7);
        assert_eq!(r.summaries, 2);
        assert_eq!(r.skipped, 1);
        assert_eq!(r.drop_sites[&(4, "buffer")], 2);
        assert_eq!(r.retx[&7], vec![(4_000, 1)]);
        let text = r.render();
        assert!(text.contains("top drop sites"), "{text}");
        assert!(text.contains("node 4"), "{text}");
        assert!(text.contains("ecn mark rate      1.0000 (1/1)"), "{text}");
        assert!(text.contains("credit waste       1.0000 (1/1)"), "{text}");
        assert!(!text.contains("TRUNCATED"), "{text}");
        assert!(text.contains("flow 7"), "{text}");
    }

    /// Regression: wastes whose issues were evicted from the trace ring
    /// used to push the rendered waste rate above 100 %; they must be
    /// excluded from the ratio and flagged instead.
    #[test]
    fn truncated_trace_flags_unreliable_waste_ratio() {
        let evs = [
            TraceEvent::CreditWasted { t_ns: 100, flow: 2 },
            TraceEvent::CreditSent {
                t_ns: 200,
                flow: 9,
                idx: 0,
            },
            TraceEvent::CreditWasted { t_ns: 300, flow: 9 },
            TraceEvent::CreditWasted { t_ns: 400, flow: 9 },
        ];
        let text: String = evs.iter().map(|e| e.to_json_line() + "\n").collect();
        let mut r = Report::default();
        r.fold_text(&text);
        assert_eq!(r.credits_wasted, 3);
        assert_eq!(r.matched_waste, 1);
        assert_eq!(r.unmatched_waste, 2);
        let rendered = r.render();
        assert!(
            rendered.contains("credit waste       1.0000 (1/1)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("[TRUNCATED: 2 waste(s) without observed issue]"),
            "{rendered}"
        );
    }

    #[test]
    fn empty_report_renders_without_sections() {
        let r = Report::default();
        let text = r.render();
        assert!(text.starts_with("trace-report: 0 file(s), 0 event(s)"));
        assert!(!text.contains("events by kind"));
    }
}
