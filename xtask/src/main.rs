//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! Currently one task: `lint`, the determinism static-analysis pass over
//! the simulation crates (see `lint.rs` and DESIGN.md "Determinism &
//! invariants").

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint    run the determinism lint over the simulation crates");
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    match lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root is one level above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask crate lives directly under the workspace root")
        .to_path_buf()
}
