//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! Tasks:
//!
//! * `lint` — the determinism & units static-analysis pass over the
//!   simulation crates (see `lint.rs` and DESIGN.md "Determinism &
//!   invariants"). Findings can be rendered for humans (default), as JSON
//!   (`--format json`, for CI artifacts), or as GitHub Actions error
//!   annotations (`--format github`).
//! * `bench` — the substrate benchmark with its regression gates.
//! * `trace-report` — post-mortem summary of `--trace` JSONL logs (see
//!   `trace_report.rs` and DESIGN.md "Packet-lifecycle tracing").

mod lint;
mod tokenize;
mod trace_report;

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_format(&args[1..]) {
            Ok(fmt) => run_lint(fmt),
            Err(msg) => {
                eprintln!("{msg}");
                print_usage();
                ExitCode::FAILURE
            }
        },
        Some("bench") => run_bench(&args[1..]),
        Some("trace-report") => match trace_report::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn parse_format(args: &[String]) -> Result<Format, String> {
    let mut fmt = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if let Some(v) = arg.strip_prefix("--format=") {
            v.to_string()
        } else if arg == "--format" {
            it.next()
                .ok_or_else(|| "--format requires a value".to_string())?
                .clone()
        } else {
            return Err(format!("unknown argument `{arg}`"));
        };
        fmt = match value.as_str() {
            "human" => Format::Human,
            "json" => Format::Json,
            "github" => Format::Github,
            other => return Err(format!("unknown format `{other}`")),
        };
    }
    Ok(fmt)
}

fn print_usage() {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint [--format human|json|github]");
    eprintln!("          run the determinism & units lint over the simulation crates");
    eprintln!("  bench [--smoke] [--out PATH]");
    eprintln!("          run the substrate benchmark (release build) and emit the");
    eprintln!("          BENCH_substrate.json report (default: workspace root)");
    eprintln!("  trace-report PATH...");
    eprintln!("          summarize packet-lifecycle trace logs (JSONL files or");
    eprintln!("          directories from the experiments binary's --trace)");
    eprintln!();
    eprintln!("lint rules:");
    for (name, why) in lint::RULES {
        eprintln!("  {name:<18} {why}");
    }
}

/// Builds and runs the standalone substrate benchmark
/// (`crates/bench/src/bin/substrate_bench.rs`) in release mode, writing
/// `BENCH_substrate.json` (events/sec, ns/event, wheel-over-heap speedups).
/// `--smoke` runs the fast CI-sized variant; `--out PATH` overrides the
/// report location. The bench binary itself enforces the regression gates
/// and sets the exit code.
fn run_bench(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        root.join("BENCH_substrate.json")
            .to_string_lossy()
            .into_owned()
    });
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(&root).args([
        "run",
        "--release",
        "-p",
        "flexpass-bench",
        "--bin",
        "substrate_bench",
        "--",
    ]);
    if smoke {
        cmd.arg("--smoke");
    }
    cmd.args(["--out", &out]);
    match cmd.status() {
        Ok(st) if st.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask bench: failed to run cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(fmt: Format) -> ExitCode {
    let root = workspace_root();
    let findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    match fmt {
        Format::Human => {
            for f in &findings {
                eprintln!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                eprintln!("xtask lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", to_json(&findings)),
        Format::Github => {
            for f in &findings {
                // `::error` annotations surface inline on the PR diff.
                println!(
                    "::error file={},line={},col={},title=lint {}::{} ({})",
                    f.file, f.line, f.col, f.rule, f.text, f.why
                );
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                eprintln!("xtask lint: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders findings as a JSON array (hand-rolled: the workspace builds
/// offline with no serde dependency).
fn to_json(findings: &[lint::Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"text\":{},\"why\":{}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.text),
            json_str(f.why)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root is one level above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask crate lives directly under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn json_output_shape() {
        let findings = vec![lint::Finding {
            file: "crates/simnet/src/x.rs".into(),
            line: 3,
            col: 7,
            rule: "wall-clock",
            text: "let t = Instant::now();".into(),
            why: "wall-clock time in simulation logic; use simcore::time",
        }];
        let j = to_json(&findings);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"file\":\"crates/simnet/src/x.rs\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"col\":7"));
        assert!(j.contains("\"rule\":\"wall-clock\""));
        assert_eq!(to_json(&[]), "[]");
    }
}
