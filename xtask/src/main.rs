//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! Tasks:
//!
//! * `lint` — the determinism & units static-analysis pass over the
//!   simulation crates (see `lint.rs` and DESIGN.md "Determinism &
//!   invariants"). Findings can be rendered for humans (default), as JSON
//!   (`--format json`, for CI artifacts), or as GitHub Actions error
//!   annotations (`--format github`). `--report alloc` dumps the
//!   allocation-site inventory of the hot datapath modules instead, and
//!   `--report callgraph` the call-graph summary with every
//!   panic/alloc-reachable witness chain; `--update-baseline` rewrites
//!   `lint-baseline.json` from the current findings (shrink-only
//!   workflow: review the diff before committing).
//! * `bench` — the substrate benchmark with its regression gates.
//!   `--alloc-count` rebuilds with the counting global allocator and gates
//!   steady-state datapath allocations per event.
//! * `trace-report` — post-mortem summary of `--trace` JSONL logs (see
//!   `trace_report.rs` and DESIGN.md "Packet-lifecycle tracing").

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::Baseline;
use xtask::config::LintConfig;
use xtask::{lint, trace_report};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Github,
}

#[derive(Clone, Copy)]
struct LintArgs {
    fmt: Format,
    report_alloc: bool,
    report_callgraph: bool,
    update_baseline: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_args(&args[1..]) {
            Ok(la) => run_lint(la),
            Err(msg) => {
                eprintln!("{msg}");
                print_usage();
                ExitCode::FAILURE
            }
        },
        Some("bench") => run_bench(&args[1..]),
        Some("trace-report") => match trace_report::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut la = LintArgs {
        fmt: Format::Human,
        report_alloc: false,
        report_callgraph: false,
        update_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--update-baseline" {
            la.update_baseline = true;
            continue;
        }
        if arg == "--report" {
            let what = it
                .next()
                .ok_or_else(|| "--report requires a value".to_string())?;
            match what.as_str() {
                "alloc" => la.report_alloc = true,
                "callgraph" => la.report_callgraph = true,
                other => {
                    return Err(format!(
                        "unknown report `{other}` (expected `alloc` or `callgraph`)"
                    ))
                }
            }
            continue;
        }
        let value = if let Some(v) = arg.strip_prefix("--format=") {
            v.to_string()
        } else if arg == "--format" {
            it.next()
                .ok_or_else(|| "--format requires a value".to_string())?
                .clone()
        } else {
            return Err(format!("unknown argument `{arg}`"));
        };
        la.fmt = match value.as_str() {
            "human" => Format::Human,
            "json" => Format::Json,
            "github" => Format::Github,
            other => return Err(format!("unknown format `{other}`")),
        };
    }
    Ok(la)
}

fn print_usage() {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint [--format human|json|github] [--report alloc|callgraph] [--update-baseline]");
    eprintln!("          run the determinism & units lint over the simulation crates;");
    eprintln!("          config in lint.toml, known findings in lint-baseline.json");
    eprintln!("  bench [--smoke] [--out PATH] [--alloc-count]");
    eprintln!("          run the substrate benchmark (release build) and emit the");
    eprintln!("          BENCH_substrate.json report (default: workspace root)");
    eprintln!("  trace-report PATH...");
    eprintln!("          summarize packet-lifecycle trace logs (JSONL files or");
    eprintln!("          directories from the experiments binary's --trace)");
    eprintln!();
    eprintln!("lint rules:");
    for (name, why) in lint::RULES {
        eprintln!("  {name:<20} {why}");
    }
}

/// Builds and runs the standalone substrate benchmark
/// (`crates/bench/src/bin/substrate_bench.rs`) in release mode, writing
/// `BENCH_substrate.json` (events/sec, ns/event, wheel-over-heap speedups).
/// `--smoke` runs the fast CI-sized variant; `--out PATH` overrides the
/// report location; `--alloc-count` rebuilds with the counting global
/// allocator and gates datapath allocations per event against the
/// committed report. The bench binary itself enforces the regression
/// gates and sets the exit code.
fn run_bench(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut smoke = false;
    let mut alloc_count = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--alloc-count" => alloc_count = true,
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        root.join("BENCH_substrate.json")
            .to_string_lossy()
            .into_owned()
    });
    // With --alloc-count, gate against the committed report's number (read
    // before the run overwrites the file).
    let gate = if alloc_count {
        committed_allocs_per_event(&root)
    } else {
        None
    };
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(&root)
        .args(["run", "--release", "-p", "flexpass-bench"]);
    if alloc_count {
        cmd.args(["--features", "alloc-count"]);
    }
    cmd.args(["--bin", "substrate_bench", "--"]);
    if smoke {
        cmd.arg("--smoke");
    }
    if let Some(g) = gate {
        cmd.args(["--gate-alloc", &format!("{g}")]);
    }
    // Gate the serial (par-1) multipod rate against the committed report
    // (read before the run overwrites the file): the partitioned engine
    // must not slow the serial engine down.
    if let Some(g) = committed_multipod_serial(&root) {
        cmd.args(["--gate-multipod", &format!("{g}")]);
    }
    // Gate the scale point's peak RSS against the committed ceiling: the
    // streaming recorder must keep metrics memory O(live flows).
    if let Some(g) = committed_scale_rss_ceiling(&root) {
        cmd.args(["--gate-scale-rss", &format!("{g}")]);
    }
    cmd.args(["--out", &out]);
    match cmd.status() {
        Ok(st) if st.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask bench: failed to run cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads `alloc.datapath_allocs_per_event` from the committed
/// BENCH_substrate.json, if present.
fn committed_allocs_per_event(root: &std::path::Path) -> Option<f64> {
    let src = std::fs::read_to_string(root.join("BENCH_substrate.json")).ok()?;
    let doc = xtask::json::parse(&src).ok()?;
    doc.get("alloc")?.get("datapath_allocs_per_event")?.as_f64()
}

/// Reads the committed serial (domains == 1) multipod rate from
/// BENCH_substrate.json, if present.
fn committed_multipod_serial(root: &std::path::Path) -> Option<f64> {
    let src = std::fs::read_to_string(root.join("BENCH_substrate.json")).ok()?;
    let doc = xtask::json::parse(&src).ok()?;
    doc.get("multipod")?
        .get("runs")?
        .as_arr()?
        .iter()
        .find(|r| r.get("domains").and_then(xtask::json::Json::as_u64) == Some(1))?
        .get("events_per_sec")?
        .as_f64()
}

/// Reads the committed scale peak-RSS ceiling (MiB) from
/// BENCH_substrate.json, if present.
fn committed_scale_rss_ceiling(root: &std::path::Path) -> Option<u64> {
    let src = std::fs::read_to_string(root.join("BENCH_substrate.json")).ok()?;
    let doc = xtask::json::parse(&src).ok()?;
    doc.get("scale")?.get("rss_ceiling_mb")?.as_u64()
}

fn run_lint(la: LintArgs) -> ExitCode {
    let root = workspace_root();
    let outcome = match lint::lint_workspace_full(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if la.report_alloc {
        println!("{}", alloc_report_json(&outcome.alloc_report));
        return ExitCode::SUCCESS;
    }
    if la.report_callgraph {
        println!("{}", callgraph_report_json(&outcome.callgraph));
        return ExitCode::SUCCESS;
    }
    if la.update_baseline {
        let cfg = match LintConfig::load(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut all = outcome.new.clone();
        all.extend(outcome.baselined.iter().cloned());
        let baseline = Baseline::from_findings(&all);
        let path = root.join(&cfg.baseline_path);
        if let Err(e) = std::fs::write(&path, baseline.to_json()) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: baseline rewritten with {} finding(s) ({} entr{}) at {}",
            all.len(),
            baseline.entries.len(),
            if baseline.entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            cfg.baseline_path
        );
        return ExitCode::SUCCESS;
    }
    let findings = &outcome.new;
    match la.fmt {
        Format::Human => {
            for f in findings {
                eprintln!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                eprintln!("xtask lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", to_json(findings)),
        Format::Github => {
            for f in findings {
                // `::error` annotations surface inline on the PR diff. The
                // message must be data-escaped: a raw newline (witness
                // chains are multi-line) would truncate the annotation and
                // corrupt the workflow log.
                println!(
                    "::error file={},line={},col={},title=lint {}::{}",
                    f.file,
                    f.line,
                    f.col,
                    f.rule,
                    github_escape_data(&format!("{} ({})", f.text, f.why))
                );
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                eprintln!("xtask lint: {} finding(s)", findings.len());
            }
        }
    }
    if !outcome.baselined.is_empty() {
        eprintln!(
            "xtask lint: {} baselined finding(s) suppressed (see lint-baseline.json)",
            outcome.baselined.len()
        );
    }
    for s in &outcome.stale {
        eprintln!(
            "xtask lint: stale baseline entry {}:[{}] {} (run --update-baseline)",
            s.file, s.rule, s.text
        );
    }
    if findings.is_empty() && outcome.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders findings as a JSON array (hand-rolled: the workspace builds
/// offline with no serde dependency).
fn to_json(findings: &[lint::Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"text\":{},\"why\":{}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.text),
            json_str(f.why)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders the hot-module allocation inventory as a JSON array, ordered by
/// (file, line, col) — byte-stable across runs for diffing in CI.
fn alloc_report_json(sites: &[xtask::rules::alloc::AllocSite]) -> String {
    let mut out = String::from("[");
    for (i, s) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"func\":{},\"kind\":{},\"gated\":{},\"text\":{}}}",
            json_str(&s.file),
            s.line,
            s.col,
            json_str(&s.func),
            json_str(&s.kind),
            s.gated,
            json_str(&s.text)
        ));
    }
    if !sites.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders the call-graph summary plus witness inventory as a single JSON
/// object — fully sorted upstream, so byte-identical across runs.
fn callgraph_report_json(report: &xtask::rules::reachable::CallgraphReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\n  \"fns\":{},", report.fn_count));
    out.push_str(&format!("\n  \"edges\":{},", report.edge_count));
    let panic_count = report
        .witnesses
        .iter()
        .filter(|w| w.rule == "panic-reachable")
        .count();
    let alloc_count = report.witnesses.len() - panic_count;
    out.push_str(&format!("\n  \"panic_reachable_count\":{panic_count},"));
    out.push_str(&format!("\n  \"alloc_reachable_count\":{alloc_count},"));
    out.push_str("\n  \"entries\":[");
    for (i, e) in report.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(e));
    }
    out.push_str("],\n  \"witnesses\":[");
    for (i, w) in report.witnesses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = w
            .chain
            .iter()
            .map(|c| json_str(c))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "\n    {{\"rule\":{},\"entry\":{},\"chain\":[{}],\"file\":{},\"line\":{},\"col\":{},\"kind\":{},\"text\":{}}}",
            json_str(w.rule),
            json_str(&w.entry),
            chain,
            json_str(&w.file),
            w.line,
            w.col,
            json_str(&w.kind),
            json_str(&w.text)
        ));
    }
    if !report.witnesses.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Escapes an annotation *message* for GitHub Actions workflow commands:
/// `%` first, then newlines — the documented `%0A` encoding renders a
/// multi-line witness chain as one annotation.
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root is one level above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask crate lives directly under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn github_escape_keeps_witness_chains_on_one_annotation() {
        assert_eq!(
            github_escape_data("A -> B\n  -> f.rs [index] x[i] (50% off)"),
            "A -> B%0A  -> f.rs [index] x[i] (50%25 off)"
        );
        // `%` escapes first, or `%0A` would double-escape.
        assert_eq!(github_escape_data("%\n"), "%25%0A");
    }

    #[test]
    fn callgraph_report_json_shape() {
        let report = xtask::rules::reachable::CallgraphReport {
            fn_count: 2,
            edge_count: 1,
            entries: vec!["Port::next_packet".into()],
            witnesses: vec![xtask::rules::reachable::Witness {
                rule: "panic-reachable",
                entry: "Port::next_packet".into(),
                entry_file: "crates/simnet/src/port.rs".into(),
                entry_line: 3,
                entry_col: 12,
                chain: vec!["Port::next_packet".into(), "helper".into()],
                file: "crates/simnet/src/host.rs".into(),
                line: 9,
                col: 5,
                kind: "unwrap".into(),
                text: "x.unwrap()".into(),
            }],
        };
        let j = callgraph_report_json(&report);
        assert!(j.contains("\"fns\":2"));
        assert!(j.contains("\"panic_reachable_count\":1"));
        assert!(j.contains("\"alloc_reachable_count\":0"));
        assert!(j.contains("\"chain\":[\"Port::next_packet\",\"helper\"]"));
        let empty = callgraph_report_json(&Default::default());
        assert!(empty.contains("\"witnesses\":[]"));
    }

    #[test]
    fn json_output_shape() {
        let findings = vec![lint::Finding {
            file: "crates/simnet/src/x.rs".into(),
            line: 3,
            col: 7,
            rule: "wall-clock",
            text: "let t = Instant::now();".into(),
            why: "wall-clock time in simulation logic; use simcore::time",
        }];
        let j = to_json(&findings);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"file\":\"crates/simnet/src/x.rs\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"col\":7"));
        assert!(j.contains("\"rule\":\"wall-clock\""));
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn alloc_report_json_shape() {
        let sites = vec![xtask::rules::alloc::AllocSite {
            file: "crates/simnet/src/queue.rs".into(),
            line: 10,
            col: 4,
            func: "Queue::enqueue".into(),
            kind: "growth:push".into(),
            text: "self.q.push(p);".into(),
            gated: false,
            tok: 0,
        }];
        let j = alloc_report_json(&sites);
        assert!(j.contains("\"kind\":\"growth:push\""));
        assert!(j.contains("\"gated\":false"));
        assert_eq!(alloc_report_json(&[]), "[]");
    }
}
