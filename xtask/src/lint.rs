//! Determinism static-analysis pass.
//!
//! The simulation must be bit-for-bit reproducible under a fixed seed, so a
//! small set of constructs is banned from the simulation crates (`simcore`,
//! `simnet`, `transport`, `core`) outside their test code:
//!
//! * `hash-collections` — `HashMap` / `HashSet`. Their iteration order is
//!   randomized per process, so any simulation state kept in one can change
//!   event order between runs. Use `BTreeMap` / `BTreeSet`.
//! * `wall-clock` — `std::time::Instant` / `SystemTime`. Real time must
//!   never leak into simulation logic; all time flows from the virtual
//!   calendar (`simcore::time::Time`).
//! * `ambient-rng` — `rand::thread_rng` / `rand::random`. All randomness
//!   must come from an explicitly seeded `simcore::rng::SimRng`.
//! * `float-time` — float↔time conversions (`as_secs_f64`,
//!   `as_micros_f64`, `as_millis_f64`, `from_secs_f64`) outside
//!   `simcore/src/time.rs`. Time arithmetic must stay in integer
//!   nanoseconds; scaling by a float factor goes through the contained
//!   `TimeDelta::mul_f64` / `Rate::scale` primitives instead of a seconds
//!   round-trip.
//!
//! Escape hatch: a `lint:allow(<rule>)` comment on the offending line or
//! the line directly above suppresses that rule (used for reporting-only
//! conversions that never feed back into simulation state).
//!
//! The pass is text-based by design: the workspace builds offline with no
//! parser dependencies, and the banned constructs are distinctive enough
//! that token matching on comment-stripped lines is reliable. Test code
//! (the conventional `#[cfg(test)]` tail module of each file, and `tests/`
//! directories) is exempt — tests may use wall clocks and hash maps freely.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crate directories (relative to the workspace root) the pass covers.
const LINTED_CRATES: &[&str] = &[
    "crates/simcore",
    "crates/simnet",
    "crates/transport",
    "crates/core",
];

/// A rule: name, substrings that trigger it, and a short rationale.
struct Rule {
    name: &'static str,
    needles: &'static [&'static str],
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "hash-collections",
        needles: &["HashMap", "HashSet"],
        why: "randomized iteration order; use BTreeMap/BTreeSet",
    },
    Rule {
        name: "wall-clock",
        needles: &["std::time::Instant", "SystemTime", "Instant::now"],
        why: "wall-clock time in simulation logic; use simcore::time",
    },
    Rule {
        name: "ambient-rng",
        needles: &["thread_rng", "rand::random"],
        why: "unseeded randomness; use an explicitly seeded SimRng",
    },
    Rule {
        name: "float-time",
        needles: &[
            ".as_secs_f64(",
            ".as_micros_f64(",
            ".as_millis_f64(",
            "from_secs_f64(",
        ],
        why: "float time arithmetic outside simcore::time; keep time in integer ns",
    },
];

/// The only file allowed to define/use the float↔time conversions.
const FLOAT_TIME_HOME: &str = "crates/simcore/src/time.rs";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (workspace-relative).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (e.g. `hash-collections`).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
    /// Why the construct is banned.
    pub why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} ({})",
            self.file, self.line, self.rule, self.text, self.why
        )
    }
}

/// Lints every `src/**/*.rs` file of the covered crates under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in LINTED_CRATES {
        let src_dir = root.join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            findings.extend(lint_source(&rel, &src));
        }
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file's source text. `file` is the workspace-relative path,
/// used for reporting and for the `time.rs` float-time exemption.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut prev_allows: Vec<&str> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        // Everything from the conventional test tail module on is exempt.
        if raw.trim() == "#[cfg(test)]" {
            break;
        }
        let allows = allow_list(raw);
        // Strip the comment part so prose mentioning HashMap etc. in doc
        // comments does not trigger; `lint:allow` was extracted above.
        let code = raw.split("//").next().unwrap_or(raw);
        for rule in RULES {
            if rule.name == "float-time" && file.ends_with(FLOAT_TIME_HOME) {
                continue;
            }
            if !rule.needles.iter().any(|n| code.contains(n)) {
                continue;
            }
            if allows.contains(&rule.name) || prev_allows.contains(&rule.name) {
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                rule: rule.name,
                text: raw.trim().to_string(),
                why: rule.why,
            });
        }
        prev_allows = allows;
    }
    findings
}

/// Rule names suppressed by `lint:allow(...)` comments on this line.
fn allow_list(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        if let Some(end) = rest.find(')') {
            out.extend(rest[..end].split(',').map(str::trim));
            rest = &rest[end..];
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        lint_source(file, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f() {
                let m: BTreeMap<u32, u32> = BTreeMap::new();
                for (k, v) in &m { let _ = (k, v); }
            }
        "#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) {
                for (k, v) in m.iter() { let _ = (k, v); }
            }
        "#;
        let hits = rules_hit("crates/simnet/src/x.rs", src);
        assert!(hits.iter().all(|&r| r == "hash-collections"));
        assert_eq!(hits.len(), 2); // the use and the signature
    }

    #[test]
    fn thread_rng_flagged() {
        let src = "fn f() { let mut r = rand::thread_rng(); }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), ["ambient-rng"]);
    }

    #[test]
    fn wall_clock_flagged() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["wall-clock"]);
    }

    #[test]
    fn float_time_flagged_outside_time_rs() {
        let src = "fn f(d: TimeDelta) -> f64 { d.as_secs_f64() * 2.0 }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["float-time"]);
    }

    #[test]
    fn float_time_allowed_in_time_rs() {
        let src = "pub fn as_secs_f64(self) -> f64 { self.0 as f64 / 1e9 }";
        assert!(lint_source("crates/simcore/src/time.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line() {
        let src = "fn f(d: TimeDelta) -> f64 { d.as_secs_f64() } // lint:allow(float-time)";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src = "// lint:allow(wall-clock): profiling aid\nfn f() { let _ = std::time::Instant::now(); }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_past_one_line() {
        let src =
            "// lint:allow(wall-clock)\nfn ok() {}\nfn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["wall-clock"]);
    }

    #[test]
    fn test_tail_module_exempt() {
        let src = r#"
fn prod() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let _ = std::time::Instant::now(); let _: HashMap<u8, u8> = HashMap::new(); }
}
"#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_prose_not_flagged() {
        let src = "/// Unlike a HashMap, iteration order here is stable.\nfn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn repo_is_currently_clean() {
        // The workspace itself must pass its own lint; run it from the
        // xtask test binary so `cargo test` catches regressions without a
        // separate CI step.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root")
            .to_path_buf();
        let findings = lint_workspace(&root).expect("walk workspace");
        assert!(
            findings.is_empty(),
            "determinism lint found:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
