//! Determinism & units static-analysis pass (v3, AST-based).
//!
//! The simulation must be bit-for-bit reproducible under a fixed seed, its
//! byte accounting must keep the payload and wire domains apart (see
//! `simcore::units`), and its per-event datapath must head toward
//! zero-alloc (ROADMAP-1). The pass drives a hand-rolled tokenizer
//! (`crate::tokenize`) and recursive-descent parser (`crate::parse`), and
//! runs the rule families in `crate::rules`:
//!
//! * `hash-collections` — `HashMap` / `HashSet`. Their iteration order is
//!   randomized per process, so any simulation state kept in one can change
//!   event order between runs. Use `BTreeMap` / `BTreeSet`.
//! * `wall-clock` — `std::time::Instant` / `SystemTime`. Real time must
//!   never leak into simulation logic; all time flows from the virtual
//!   calendar (`simcore::time::Time`).
//! * `ambient-rng` — `rand::thread_rng` / `rand::random`. All randomness
//!   must come from an explicitly seeded `simcore::rng::SimRng`.
//! * `float-time` — calls to the float↔time conversions (`as_secs_f64`,
//!   `as_micros_f64`, `as_millis_f64`, `from_secs_f64`) outside
//!   `simcore/src/time.rs`. Time arithmetic must stay in integer
//!   nanoseconds.
//! * `raw-cast` — a bare numeric `as` cast whose source expression names a
//!   byte or time quantity (`*bytes*`, `*wire*`, `*payload*`, `*mtu*`,
//!   `size`, `*nanos*`, `*micros*`, `*millis*`, `*secs*`). Byte quantities
//!   convert through `simcore::units` (`.get()`, `as_f64()`, `from_f64`),
//!   time through `simcore::time`.
//! * `panic-path` — `panic!` / `unreachable!` / `.unwrap(...)` /
//!   `.expect("")` with an empty rationale in simulation code, plus — in
//!   the hot modules only — subscripts and bare `/` / `%` as implicit
//!   panic sites. Hot paths must either handle the case or document the
//!   impossibility with a `lint:allow(panic-path)` rationale; `.expect`
//!   with a non-empty message is allowed.
//! * `unit-mixing` — arithmetic that combines wire-byte names
//!   (`DATA_WIRE`, `DATA_HEADER_WIRE`, `CTRL_WIRE`, `WireBytes`) with
//!   payload-byte names (`MTU_PAYLOAD`, `Bytes`, `payload`) in one
//!   expression. The only blessed domain crossing is `simnet::consts`.
//! * `thread-spawn` — `std::thread` (spawn/scope/sleep/…). A simulation
//!   is a single-threaded event loop; parallelism belongs to the
//!   experiment orchestrator (per-site `lint:allow`) and the partitioned
//!   engine's domain runners (`lint.toml [determinism] thread-homes`),
//!   which run whole simulations or domains on worker threads but never
//!   thread *inside* one.
//! * `sync-locks` — `std::sync::Mutex` / `RwLock` in the lock-free
//!   modules (`lint.toml [determinism] lock-free-modules`: the hot
//!   datapath plus the parallel engine). A blocking lock there is either
//!   a per-event serialization point or a deadlock risk at the engine's
//!   window barriers; cross-domain state moves over channels and
//!   barriers only.
//! * `raw-header-size` — the numeric literals `78`, `84` and `1538`
//!   (any spelling: `1_538`, `1538u64`, `1538.0`) outside the unit homes.
//!   Unlike every other rule this one applies to `#[cfg(test)]` code too,
//!   and also sweeps the simulation crates' `tests/` directories. `1460`
//!   (`MTU_PAYLOAD`) is *not* flagged: payload sizes appear legitimately
//!   in workload tables.
//! * `alloc-in-datapath` — allocation-shaped expressions (constructions,
//!   `vec!`/`format!`, copying conversions, non-`Copy` clones) in the hot
//!   per-event modules, outside constructors. The committed
//!   `lint-baseline.json` carries the known inventory; *new* sites fail.
//!   `xtask lint --report alloc` dumps the full inventory including
//!   ungated growth sites.
//! * `unordered-iteration` — iteration over a type outside the
//!   ordered-collections allowlist, where resolvable from declared types.
//! * `trace-exhaustiveness` — cross-file: every variant of the trace
//!   enums wired in `lint.toml [[trace]]` must be mentioned in each of its
//!   emit fns (hand-maintained name/roster/adapter lists the compiler
//!   cannot check).
//! * `panic-reachable` / `alloc-reachable` — interprocedural: a BFS over
//!   the workspace call graph (`crate::callgraph`) from the hot-module
//!   entry points must reach no panic or allocation leaf *outside* the hot
//!   modules (inside them the file-local rules already apply); violations
//!   report shortest witness chains. Config: `lint.toml [callgraph]`
//!   (`entry-points`, `known-infallible`).
//!
//! Escape hatch: a `lint:allow(<rule>)` comment on the offending line,
//! directly above it (comment runs count as one block), or directly above
//! the statement containing it suppresses that rule. Configuration
//! (per-rule toggles, hot modules, ordered types, trace wiring) comes from
//! `lint.toml`; known findings live in `lint-baseline.json` and are
//! subtracted by [`lint_workspace`] — they are visible in
//! [`lint_workspace_full`]'s outcome, and stale entries (matching nothing)
//! are reported so the baseline only ever shrinks.
//!
//! Beyond the simulation crates, the pass also covers the files in
//! [`LINTED_EXTRA_FILES`] — currently the experiment orchestrator, whose
//! wall-clock heartbeat and worker threads are *intentional* and carry
//! scoped `lint:allow` rationales.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::{Baseline, Entry};
use crate::config::LintConfig;
use crate::rules::{self, alloc::AllocSite};
use crate::tokenize::{scan, Comment, Kind};

/// Crate directories (relative to the workspace root) the pass covers.
const LINTED_CRATES: &[&str] = &[
    "crates/simcore",
    "crates/simnet",
    "crates/transport",
    "crates/core",
];

/// Individual files outside [`LINTED_CRATES`] the pass also covers. The
/// orchestrator legitimately uses threads and wall-clock time — each use
/// carries a scoped `lint:allow` rationale — while every other rule stays
/// fully enforced for it.
pub const LINTED_EXTRA_FILES: &[&str] = &["crates/experiments/src/orchestrate.rs"];

/// Crates outside the simulation core swept for the `wall-clock` rule
/// *only*. These layers (workloads, metrics, experiment drivers, benches)
/// are allowed hash maps, casts and panics — but real time must not leak
/// into anything that feeds the simulation: `std::time::Instant` stays
/// confined to the bench runner ([`WALL_CLOCK_HOMES`]) and the experiment
/// orchestrator (scoped `lint:allow` rationales).
const WALL_CLOCK_SWEEP_CRATES: &[&str] = &[
    "crates/simaudit",
    "crates/workload",
    "crates/metrics",
    "crates/experiments",
    "crates/bench",
];

/// Files whose entire purpose is wall-clock measurement: the standalone
/// bench runner times real executions to report events/sec.
const WALL_CLOCK_HOMES: &[&str] = &["crates/bench/src/bin/substrate_bench.rs"];

/// `(name, rationale)` for every rule, for `--help`-style listings.
pub const RULES: &[(&str, &str)] = &[
    ("hash-collections", rules::WHY_HASH),
    ("wall-clock", rules::WHY_CLOCK),
    ("ambient-rng", rules::WHY_RNG),
    ("float-time", rules::WHY_FLOAT_TIME),
    ("raw-cast", rules::WHY_RAW_CAST),
    ("panic-path", rules::WHY_PANIC),
    ("unit-mixing", rules::WHY_MIXING),
    ("thread-spawn", rules::WHY_THREAD),
    ("sync-locks", rules::WHY_LOCKS),
    ("raw-header-size", rules::WHY_HEADER_SIZE),
    ("alloc-in-datapath", rules::WHY_ALLOC),
    ("unordered-iteration", rules::WHY_ITER),
    ("trace-exhaustiveness", rules::WHY_TRACE),
    ("panic-reachable", rules::WHY_PANIC_REACH),
    ("alloc-reachable", rules::WHY_ALLOC_REACH),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (workspace-relative).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (chars).
    pub col: usize,
    /// Rule name (e.g. `hash-collections`).
    pub rule: &'static str,
    /// The offending source line, trimmed (or a synthesized description
    /// for cross-file findings).
    pub text: String,
    /// Why the construct is banned.
    pub why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {} ({})",
            self.file, self.line, self.col, self.rule, self.text, self.why
        )
    }
}

/// Full result of a workspace sweep, before and after the baseline.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings not in the baseline — these fail the build.
    pub new: Vec<Finding>,
    /// Known findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing (remove via
    /// `--update-baseline`).
    pub stale: Vec<Entry>,
    /// The allocation inventory of the hot modules (gated + growth sites).
    pub alloc_report: Vec<AllocSite>,
    /// The call-graph summary and witness inventory (pre-baseline).
    pub callgraph: rules::reachable::CallgraphReport,
}

/// Lints the workspace and returns the findings **not** covered by the
/// committed baseline. This is the pass/fail surface: an empty result
/// means clean.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_full(root)?.new)
}

/// Lints every `src/**/*.rs` file of the covered crates under `root`, plus
/// the individually covered [`LINTED_EXTRA_FILES`], the cross-file trace
/// check, and the restricted sweeps (header sizes in `tests/`, wall-clock
/// in the outer layers); then applies the baseline and builds the hot-
/// module allocation report.
pub fn lint_workspace_full(root: &Path) -> io::Result<Outcome> {
    let cfg = LintConfig::load(root).map_err(io::Error::other)?;
    let mut findings = Vec::new();
    // The fully linted sources double as the call-graph universe.
    let mut cg_sources: Vec<(String, String)> = Vec::new();
    for krate in LINTED_CRATES {
        let src_dir = root.join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            let src = fs::read_to_string(&path)?;
            findings.extend(lint_source_with(&rel, &src, &cfg));
            cg_sources.push((rel, src));
        }
    }
    for rel in LINTED_EXTRA_FILES {
        let src = fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source_with(rel, &src, &cfg));
        cg_sources.push((rel.to_string(), src));
    }
    // Header-size-literal sweep over the simulation crates' integration
    // tests. In-file `#[cfg(test)]` modules are already covered (the rule
    // ignores the test exemption); this extends it to `tests/`, where the
    // packet-building helpers live. Only `raw-header-size` applies there —
    // integration tests may unwrap, cast and panic freely.
    for krate in LINTED_CRATES {
        let dir = root.join(krate).join("tests");
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            let src = fs::read_to_string(&path)?;
            findings.extend(
                lint_source_with(&rel, &src, &cfg)
                    .into_iter()
                    .filter(|f| f.rule == "raw-header-size"),
            );
        }
    }
    // Wall-clock-only sweep over the non-simulation layers (src/, bins and
    // benches — these crates keep measurement code outside src/ too).
    for krate in WALL_CLOCK_SWEEP_CRATES {
        for sub in ["src", "benches"] {
            let dir = root.join(krate).join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files)?;
            files.sort();
            for path in files {
                let rel = rel_path(root, &path);
                if WALL_CLOCK_HOMES.contains(&rel.as_str())
                    || LINTED_EXTRA_FILES.contains(&rel.as_str())
                {
                    continue;
                }
                let src = fs::read_to_string(&path)?;
                findings.extend(
                    lint_source_with(&rel, &src, &cfg)
                        .into_iter()
                        .filter(|f| f.rule == "wall-clock"),
                );
            }
        }
    }
    // Cross-file trace-exhaustiveness: read exactly the files the wiring
    // names (they may live outside the linted crates, e.g. simtrace).
    if cfg.rule_enabled("trace-exhaustiveness") {
        let mut sources: Vec<(String, String)> = Vec::new();
        for t in &cfg.trace_enums {
            for rel in [&t.defined_in, &t.emit_file] {
                if sources.iter().any(|(p, _)| p == rel.as_str()) {
                    continue;
                }
                if let Ok(src) = fs::read_to_string(root.join(rel)) {
                    sources.push((rel.clone(), src));
                }
                // Unreadable files are left out: check_sources reports the
                // missing file as a finding.
            }
        }
        findings.extend(rules::trace_ex::check_sources(&sources, &cfg));
    }
    // Interprocedural pass: call graph over all linted sources, witness
    // chains from the hot-module entry points.
    let mut callgraph = rules::reachable::CallgraphReport::default();
    if cfg.rule_enabled("panic-reachable") || cfg.rule_enabled("alloc-reachable") {
        let (cg_findings, report) = rules::reachable::analyze(&cg_sources, &cfg);
        findings.extend(cg_findings);
        callgraph = report;
    }
    // Several witnesses can anchor at the same entry token; the text
    // tie-break keeps the order (and every downstream report) byte-stable.
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.text).cmp(&(&b.file, b.line, b.col, b.rule, &b.text))
    });

    // Allocation inventory over the configured hot modules.
    let mut alloc_report = Vec::new();
    for rel in &cfg.hot_modules {
        let Ok(src) = fs::read_to_string(root.join(rel)) else {
            continue; // hot list is config; a renamed file just drops out
        };
        let scanned = scan(&src);
        let ast = crate::parse::parse(&scanned.tokens);
        let ctx = rules::FileCtx::new(rel, &scanned.tokens, &ast, &cfg);
        let lines: Vec<&str> = src.lines().collect();
        alloc_report.extend(rules::alloc::report(&ctx, &lines));
    }
    alloc_report
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.kind).cmp(&(&b.file, b.line, b.col, &b.kind)));

    let baseline = Baseline::load(&root.join(&cfg.baseline_path)).map_err(io::Error::other)?;
    let applied = baseline.apply(findings);
    Ok(Outcome {
        new: applied.new,
        baselined: applied.baselined,
        stale: applied.stale,
        alloc_report,
        callgraph,
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A `lint:allow(...)` directive extracted from one comment.
struct Allow {
    rules: Vec<String>,
    start_line: usize,
    end_line: usize,
}

/// Shared `lint:allow` suppression machinery: a directive suppresses a rule
/// at a token when it trails the token's line, sits in the comment block
/// directly above that line, or directly above the statement containing it.
/// Built once per file; used by the file-local driver and by the call-graph
/// rules' leaf filter so both honor the exact same adjacency.
pub struct Suppressor {
    allows: Vec<Allow>,
    /// Lines containing (part of) a code token; everything else is blank or
    /// comment-only, which adjacency may skip over.
    code_line: Vec<bool>,
    /// For each token, the 1-based line its statement started on.
    stmt_start: Vec<usize>,
}

impl Suppressor {
    pub fn new(scanned: &crate::tokenize::Scan) -> Self {
        let toks = &scanned.tokens;
        let max_line = toks
            .iter()
            .map(|t| t.line + t.text.matches('\n').count())
            .max()
            .unwrap_or(0);
        let mut code_line = vec![false; max_line + 2];
        for t in toks {
            let span = t.text.matches('\n').count();
            for line in code_line.iter_mut().skip(t.line).take(span + 1) {
                *line = true;
            }
        }
        Suppressor {
            allows: collect_allows(&scanned.comments),
            code_line,
            stmt_start: stmt_starts(toks),
        }
    }

    /// Whether any rule in `rules` is allowed at token `tok`.
    pub fn suppressed(&self, toks: &[crate::tokenize::Tok], tok: usize, rules: &[&str]) -> bool {
        let t = &toks[tok];
        let stmt = self.stmt_start[tok];
        let comment_only = |l: usize| !self.code_line.get(l).copied().unwrap_or(false);
        self.allows.iter().any(|a| {
            a.rules.iter().any(|r| rules.contains(&r.as_str()))
                && (
                    // Trailing comment on the token's own line.
                    (a.start_line <= t.line && a.end_line >= t.line)
                    // Comment block directly above the token's line
                    // (intervening blank / comment-only lines are fine).
                    || (a.end_line < t.line && (a.end_line + 1..t.line).all(comment_only))
                    // Comment block directly above the statement the token
                    // sits in (covers multi-line statements).
                    || (a.end_line < stmt && (a.end_line + 1..stmt).all(comment_only))
                )
        })
    }
}

/// Lints one file's source text with the built-in default configuration
/// (no baseline). `file` is the workspace-relative path, used for
/// reporting and the per-file home exemptions.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    lint_source_with(file, src, &LintConfig::default())
}

/// Lints one file's source text under an explicit configuration.
pub fn lint_source_with(file: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let scanned = scan(src);
    let toks = &scanned.tokens;
    let ast = crate::parse::parse(toks);
    let ctx = rules::FileCtx::new(file, toks, &ast, cfg);
    let cands = rules::run_file_rules(&ctx);

    let lines: Vec<&str> = src.lines().collect();
    let suppressor = Suppressor::new(&scanned);

    let mut findings = Vec::new();
    for c in cands {
        let t = &toks[c.tok];
        if suppressor.suppressed(toks, c.tok, &[c.rule]) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: t.line,
            col: t.col,
            rule: c.rule,
            text: lines
                .get(t.line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            why: c.why,
        });
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// For each token, the 1-based line on which its statement started.
/// Statements are delimited by `;`, `{` and `}`.
fn stmt_starts(toks: &[crate::tokenize::Tok]) -> Vec<usize> {
    let mut out = Vec::with_capacity(toks.len());
    let mut cur: Option<usize> = None;
    for t in toks {
        let s = *cur.get_or_insert(t.line);
        out.push(s);
        if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            cur = None;
        }
    }
    out
}

/// Extracts `lint:allow(...)` directives from comments.
fn collect_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let mut rules = Vec::new();
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                rules.extend(rest[..end].split(',').map(|s| s.trim().to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
        if !rules.is_empty() {
            out.push(Allow {
                rules,
                start_line: c.start_line,
                end_line: c.end_line,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        lint_source(file, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f() {
                let m: BTreeMap<u32, u32> = BTreeMap::new();
                for (k, v) in &m { let _ = (k, v); }
            }
        "#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_with_position() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let found = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "hash-collections"));
        assert_eq!((found[0].line, found[0].col), (1, 23));
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn thread_rng_flagged() {
        let src = "fn f() { let mut r = rand::thread_rng(); }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), ["ambient-rng"]);
    }

    #[test]
    fn wall_clock_flagged() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["wall-clock"]);
    }

    #[test]
    fn thread_use_flagged() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["thread-spawn"]);
        let src = "use std::thread;\nfn f() { thread::spawn(|| {}); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["thread-spawn"]);
    }

    #[test]
    fn grouped_use_import_is_caught() {
        // The token pass could not see the `std::` prefix of grouped
        // imports; the use-tree expansion can.
        let src = "use std::{thread, time::Instant};\nfn f() {}";
        let mut hits = rules_hit("crates/simnet/src/x.rs", src);
        hits.sort_unstable();
        assert_eq!(hits, ["thread-spawn", "wall-clock"]);
    }

    #[test]
    fn thread_use_suppressed_by_scoped_allow() {
        let src = "// lint:allow(thread-spawn): worker pool, not sim logic\n\
                   fn f() { std::thread::yield_now(); }";
        assert!(lint_source("crates/simcore/src/x.rs", src).is_empty());
    }

    #[test]
    fn extra_files_cover_the_orchestrator() {
        assert!(LINTED_EXTRA_FILES.contains(&"crates/experiments/src/orchestrate.rs"));
    }

    #[test]
    fn float_time_flagged_outside_time_rs() {
        let src = "fn f(d: TimeDelta) -> f64 { d.as_secs_f64() * 2.0 }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["float-time"]);
    }

    #[test]
    fn float_time_allowed_in_time_rs() {
        let src = "pub fn as_secs_f64(self) -> f64 { self.0 as f64 / 1e9 }";
        assert!(lint_source("crates/simcore/src/time.rs", src).is_empty());
    }

    #[test]
    fn float_time_definition_outside_home_is_not_a_use() {
        // FP fix over the token pass: defining a helper named like the
        // conversion (e.g. a trait impl forwarding to simcore::time) is
        // not itself float math.
        let src = "fn as_secs_f64(x: Seconds) -> f64 { x.to_f64() }";
        assert!(lint_source("crates/transport/src/x.rs", src).is_empty());
    }

    // --- literals and comments can no longer yield findings ---

    #[test]
    fn string_literal_not_flagged() {
        let src = r#"fn f() -> &'static str { "uses a HashMap and Instant::now()" }"#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_string_not_flagged() {
        let src = r###"fn f() -> &'static str { r#"panic!("HashMap")"# }"###;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn block_comment_not_flagged() {
        let src = "/* HashMap inside /* a nested */ block comment */ fn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_prose_not_flagged() {
        let src = "/// Unlike a HashMap, iteration order here is stable.\nfn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- lint:allow spans ---

    #[test]
    fn allow_comment_suppresses_same_line() {
        let src = "fn f(d: TimeDelta) -> f64 { d.as_secs_f64() } // lint:allow(float-time)";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src = "// lint:allow(wall-clock): profiling aid\nfn f() { let _ = std::time::Instant::now(); }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_past_one_statement() {
        let src =
            "// lint:allow(wall-clock)\nfn ok() {}\nfn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["wall-clock"]);
    }

    #[test]
    fn allow_above_multi_line_statement() {
        let src = "fn f(x: SomeStruct) -> u64 {\n    // lint:allow(raw-cast): reporting only\n    let v = x\n        .wire_bytes() as u64;\n    v\n}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_through_comment_run() {
        // The directive sits in the first line of a two-line comment block.
        let src = "fn f() {\n    // lint:allow(panic-path): progress bound proven above; a trip\n    // here is a scheduler bug that must abort the run.\n    unreachable!(\"no progress\");\n}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- cfg(test) exemption ---

    #[test]
    fn test_tail_module_exempt() {
        let src = r#"
fn prod() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let _ = std::time::Instant::now(); let _: HashMap<u8, u8> = HashMap::new(); }
}
"#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_tail_test_module_exempt_but_code_after_still_linted() {
        let src = r#"
fn prod() {}

#[cfg(test)]
mod early_tests {
    use std::collections::HashMap;
    fn t() { let _: HashMap<u8, u8> = HashMap::new(); }
}

fn late_prod() { let _ = std::time::Instant::now(); }
"#;
        let found = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "wall-clock");
        assert_eq!(found[0].line, 10);
    }

    #[test]
    fn cfg_test_attribute_with_derive_between() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { m: HashMap<u8, u8> }\nfn f(m: HashMap<u8, u8>) {}";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["hash-collections"]
        );
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["wall-clock"]);
    }

    // --- raw-cast ---

    #[test]
    fn raw_cast_on_byte_quantity_flagged() {
        let src = "fn f(wire_bytes: u64) -> f64 { wire_bytes as f64 }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["raw-cast"]);
    }

    #[test]
    fn raw_cast_on_method_chain_flagged() {
        let src =
            "fn f(t: Time, bin: TimeDelta) -> usize { (t.as_nanos() / bin.as_nanos()) as usize }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["raw-cast"]);
    }

    #[test]
    fn raw_cast_on_size_flagged() {
        let src = "fn f(size: u64) -> u32 { size as u32 }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["raw-cast"]);
    }

    #[test]
    fn dimensionless_cast_not_flagged() {
        let src = "fn f(seq: u32, n: u32) -> usize { seq as usize + n as usize }";
        assert!(lint_source("crates/transport/src/x.rs", src).is_empty());
    }

    #[test]
    fn index_expression_is_not_the_cast_source() {
        // FP fix over the token pass: the subscript names a byte quantity,
        // but the value being cast is the (dimensionless) element.
        let src = "fn f(slots: &[u32], byte_pos: usize, n: u32) -> u64 { slots[byte_pos % 4] as u64 + u64::from(n) }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn cast_in_units_home_not_flagged() {
        let src = "pub fn as_f64(self) -> f64 { self.0 as f64 }";
        // (no byte-ish ident here anyway, but the home exemption must hold
        // even for e.g. `payload_bytes as f64`)
        let src2 = "fn f(payload_bytes: u64) -> f64 { payload_bytes as f64 }";
        assert!(lint_source("crates/simcore/src/units.rs", src).is_empty());
        assert!(lint_source("crates/simcore/src/units.rs", src2).is_empty());
        assert!(lint_source("crates/simnet/src/consts.rs", src2).is_empty());
    }

    // --- panic-path ---

    #[test]
    fn panic_and_unreachable_flagged() {
        let src = "fn f(x: u8) { if x > 3 { panic!(\"bad\"); } else { unreachable!() } }";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["panic-path", "panic-path"]
        );
    }

    #[test]
    fn unwrap_flagged_but_expect_and_unwrap_or_allowed() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), ["panic-path"]);
        let ok = "fn f(o: Option<u8>) -> u8 { o.expect(\"set by caller\") }";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
        let ok2 = "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0).min(o.unwrap_or_default()) }";
        assert!(lint_source("crates/core/src/x.rs", ok2).is_empty());
    }

    #[test]
    fn fn_named_unwrap_is_a_definition_not_a_use() {
        // FP fix over the token pass, which flagged `fn unwrap(` itself.
        let src = "impl Slot { fn unwrap(self) -> Packet { self.p } }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- unit-mixing ---

    #[test]
    fn unit_mixing_flagged() {
        let src = "fn f(payload: u64) -> u64 { DATA_WIRE.get() + payload }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["unit-mixing"]);
    }

    #[test]
    fn unit_mixing_allowed_in_consts_home() {
        let src = "pub fn data_wire_bytes(payload: Bytes) -> WireBytes { (DATA_HEADER_WIRE + WireBytes::new(payload.get())).max(CTRL_WIRE) }";
        assert!(lint_source("crates/simnet/src/consts.rs", src).is_empty());
    }

    #[test]
    fn unit_families_without_arithmetic_not_flagged() {
        let src = "fn f(w: WireBytes, p: Bytes) -> (WireBytes, Bytes) { (w, p) }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn use_list_naming_both_families_not_flagged() {
        let src = "use flexpass_simcore::units::{Bytes, WireBytes};\nfn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn trait_bound_plus_does_not_mix_units() {
        // FP fix over the token pass: `+` in a bound is not arithmetic.
        let src = "fn f<T: Into<WireBytes> + From<Bytes>>(x: T) -> T { x }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- raw-header-size ---

    #[test]
    fn header_size_literals_flagged_in_any_spelling() {
        for src in [
            "fn f() -> u64 { 1538 }",
            "fn f() -> u64 { 1_538 }",
            "fn f() -> u64 { 1538u64 }",
            "fn f() -> f64 { 1538.0 }",
            "fn f(w: u64) -> u64 { w - 78 }",
            "fn f() -> u64 { 84 }",
        ] {
            assert_eq!(
                rules_hit("crates/simnet/src/x.rs", src),
                ["raw-header-size"],
                "{src}"
            );
        }
    }

    #[test]
    fn header_size_rule_applies_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper(wire: u64) -> u64 { wire - 78 }\n}";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["raw-header-size"]
        );
    }

    #[test]
    fn non_header_numbers_not_flagged() {
        for src in [
            "fn f() -> u64 { 1460 }", // MTU_PAYLOAD: legit in size tables
            "fn f() -> u64 { 1537 }",
            "fn f() -> u64 { 0x84 }", // bit pattern, not a byte count
            "fn f() -> f64 { 1538.5 }",
            "fn f() -> u64 { 840 }",
        ] {
            assert!(
                lint_source("crates/simnet/src/x.rs", src).is_empty(),
                "{src}"
            );
        }
    }

    #[test]
    fn header_size_allowed_in_unit_homes_and_via_allow() {
        let src = "pub const DATA_WIRE: WireBytes = WireBytes::new(1_538);";
        assert!(lint_source("crates/simnet/src/consts.rs", src).is_empty());
        assert!(lint_source("crates/simcore/src/units.rs", src).is_empty());
        let allowed =
            "fn f() -> u64 { 1538 } // lint:allow(raw-header-size): byte-identical fixture";
        assert!(lint_source("crates/simnet/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn header_size_in_attribute_not_flagged() {
        // FP fix over the token pass: attribute token trees are not code.
        let src = "#[repr(align(84))]\nstruct Aligned(u8);";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- alloc-in-datapath ---

    #[test]
    fn alloc_flagged_only_in_hot_modules() {
        let src = "fn on_event(&mut self) { let v = Vec::new(); self.q.push(v); }";
        assert_eq!(
            rules_hit("crates/simnet/src/queue.rs", src),
            ["alloc-in-datapath"]
        );
        // Same code in a non-hot module: quiet.
        assert!(lint_source("crates/simnet/src/topology.rs", src).is_empty());
    }

    #[test]
    fn constructors_are_exempt_from_alloc() {
        let src = "impl Queue {\n\
                       pub fn new(cap: usize) -> Self { Queue { q: Vec::with_capacity(cap) } }\n\
                       pub fn with_limit(cap: usize) -> Queue { Queue { q: Vec::with_capacity(cap) } }\n\
                   }\nstruct Queue { q: Vec<u8> }";
        assert!(lint_source("crates/simnet/src/queue.rs", src).is_empty());
    }

    #[test]
    fn copy_clone_not_flagged_but_non_copy_clone_is() {
        let src = "#[derive(Clone, Copy)]\nstruct Stamp(u64);\n\
                   struct Spec { name: String }\n\
                   struct Q { t: Stamp, spec: Spec }\n\
                   impl Q {\n\
                       fn tick(&mut self) { let _ = self.t.clone(); }\n\
                       fn bad(&mut self) -> Spec { self.spec.clone() }\n\
                   }";
        let found = lint_source("crates/simnet/src/port.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "alloc-in-datapath");
        assert!(found[0].text.contains("spec.clone"));
    }

    #[test]
    fn alloc_macros_and_conversions_flagged() {
        let src = "fn drain(&mut self) { let label = format!(\"q{}\", 1); let v = vec![0u8; 4]; let s = label.to_owned(); let _ = (v, s); }";
        let hits = rules_hit("crates/simcore/src/wheel.rs", src);
        assert_eq!(
            hits,
            [
                "alloc-in-datapath",
                "alloc-in-datapath",
                "alloc-in-datapath"
            ]
        );
    }

    // --- unordered-iteration ---

    #[test]
    fn unordered_iteration_flagged_on_resolvable_types() {
        let src = "struct S { slots: FxHashMap<u32, u32> }\n\
                   impl S { fn go(&self) { for x in &self.slots { drop(x); } } }";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["unordered-iteration"]
        );
        let meth = "fn f(m: IndexlessMap) { for k in m.keys() { drop(k); } }";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", meth),
            ["unordered-iteration"]
        );
    }

    #[test]
    fn ordered_and_unresolvable_iteration_not_flagged() {
        let src = "fn f(v: Vec<u32>, n: usize) {\n\
                       for x in &v { drop(x); }\n\
                       for i in 0..n { drop(i); }\n\
                       for y in helper() { drop(y); }\n\
                   }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- the workspace itself ---

    #[test]
    fn repo_is_currently_clean() {
        // The workspace itself must pass its own lint (modulo the
        // committed baseline); run it from the xtask test binary so
        // `cargo test` catches regressions without a separate CI step.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root")
            .to_path_buf();
        let outcome = lint_workspace_full(&root).expect("walk workspace");
        assert!(
            outcome.new.is_empty(),
            "determinism/units lint found:\n{}",
            outcome
                .new
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            outcome.stale.is_empty(),
            "stale baseline entries (run `cargo xtask lint --update-baseline`):\n{:?}",
            outcome.stale
        );
    }
}
