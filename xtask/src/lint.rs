//! Determinism & units static-analysis pass (v2, token-based).
//!
//! The simulation must be bit-for-bit reproducible under a fixed seed, and
//! its byte accounting must keep the payload and wire domains apart (see
//! `simcore::units`). A small set of constructs is therefore banned from the
//! simulation crates (`simcore`, `simnet`, `transport`, `core`) outside
//! their test code:
//!
//! * `hash-collections` — `HashMap` / `HashSet`. Their iteration order is
//!   randomized per process, so any simulation state kept in one can change
//!   event order between runs. Use `BTreeMap` / `BTreeSet`.
//! * `wall-clock` — `std::time::Instant` / `SystemTime`. Real time must
//!   never leak into simulation logic; all time flows from the virtual
//!   calendar (`simcore::time::Time`).
//! * `ambient-rng` — `rand::thread_rng` / `rand::random`. All randomness
//!   must come from an explicitly seeded `simcore::rng::SimRng`.
//! * `float-time` — float↔time conversions (`as_secs_f64`,
//!   `as_micros_f64`, `as_millis_f64`, `from_secs_f64`) outside
//!   `simcore/src/time.rs`. Time arithmetic must stay in integer
//!   nanoseconds.
//! * `raw-cast` — a bare numeric `as` cast whose source expression names a
//!   byte or time quantity (`*bytes*`, `*wire*`, `*payload*`, `*mtu*`,
//!   `size`, `*nanos*`, `*micros*`, `*millis*`, `*secs*`). Byte quantities
//!   convert through `simcore::units` (`.get()`, `as_f64()`, `from_f64`),
//!   time through `simcore::time`.
//! * `panic-path` — `panic!` / `unreachable!` / `.unwrap(...)` in
//!   simulation code. Hot paths must either handle the case or document the
//!   impossibility with a `lint:allow(panic-path)` rationale; `.expect` with
//!   a message is allowed.
//! * `unit-mixing` — arithmetic that combines wire-byte names
//!   (`DATA_WIRE`, `DATA_HEADER_WIRE`, `CTRL_WIRE`, `WireBytes`) with
//!   payload-byte names (`MTU_PAYLOAD`, `Bytes`, `payload`) in one
//!   expression. The only blessed domain crossing is `simnet::consts`.
//! * `thread-spawn` — `std::thread` (spawn/scope/sleep/…). A simulation
//!   is a single-threaded event loop; parallelism belongs to the
//!   experiment orchestrator, which runs whole simulations on worker
//!   threads but never threads *inside* one.
//! * `raw-header-size` — the numeric literals `78`, `84` and `1538`
//!   (any spelling: `1_538`, `1538u64`, `1538.0`) outside the unit homes.
//!   These are the wire header / frame sizes blessed once in
//!   `simnet::consts` (`DATA_HEADER_WIRE`, `CTRL_WIRE`, `DATA_WIRE`);
//!   re-deriving them by hand is how a stale header size sneaks into a
//!   helper. Unlike every other rule this one applies to `#[cfg(test)]`
//!   code too — test helpers building packets are exactly where the
//!   hardcoded copies have crept in — and it also sweeps the simulation
//!   crates' `tests/` directories. `1460` (`MTU_PAYLOAD`) is *not*
//!   flagged: payload sizes appear legitimately in workload tables.
//!
//! Escape hatch: a `lint:allow(<rule>)` comment on the offending line,
//! directly above it (comment runs count as one block), or directly above
//! the statement containing it suppresses that rule.
//!
//! Beyond the simulation crates, the pass also covers the files in
//! [`LINTED_EXTRA_FILES`] — currently the experiment orchestrator, whose
//! wall-clock heartbeat and worker threads are *intentional* and carry
//! scoped `lint:allow` rationales. Linting it keeps every other rule
//! (ambient RNG, hash collections, raw casts, …) enforced there, and
//! keeps each exemption an explicit, per-line decision instead of a
//! blanket skip of the file.
//!
//! Unlike the v1 pass, which substring-matched comment-stripped lines and
//! only exempted a *trailing* `#[cfg(test)]` module, this version drives a
//! small hand-rolled tokenizer (`crate::tokenize`): string/char literals and
//! (nested) comments can never yield findings, `#[cfg(test)]` items are
//! exempt wherever they appear in a file, and every finding carries an
//! exact line *and column*.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::tokenize::{scan, Comment, Kind, Tok};

/// Crate directories (relative to the workspace root) the pass covers.
const LINTED_CRATES: &[&str] = &[
    "crates/simcore",
    "crates/simnet",
    "crates/transport",
    "crates/core",
];

/// Individual files outside [`LINTED_CRATES`] the pass also covers. The
/// orchestrator legitimately uses threads and wall-clock time — each use
/// carries a scoped `lint:allow` rationale — while every other rule stays
/// fully enforced for it.
pub const LINTED_EXTRA_FILES: &[&str] = &["crates/experiments/src/orchestrate.rs"];

/// Crates outside the simulation core swept for the `wall-clock` rule
/// *only*. These layers (workloads, metrics, experiment drivers, benches)
/// are allowed hash maps, casts and panics — but real time must not leak
/// into anything that feeds the simulation: `std::time::Instant` stays
/// confined to the bench runner ([`WALL_CLOCK_HOMES`]) and the experiment
/// orchestrator (scoped `lint:allow` rationales).
const WALL_CLOCK_SWEEP_CRATES: &[&str] = &[
    "crates/simaudit",
    "crates/workload",
    "crates/metrics",
    "crates/experiments",
    "crates/bench",
];

/// Files whose entire purpose is wall-clock measurement: the standalone
/// bench runner times real executions to report events/sec.
const WALL_CLOCK_HOMES: &[&str] = &["crates/bench/src/bin/substrate_bench.rs"];

/// The only file allowed to define/use the float↔time conversions.
const FLOAT_TIME_HOME: &str = "crates/simcore/src/time.rs";

/// Files whose whole point is unit conversion: the typed-units layer, the
/// time layer, and the blessed payload↔wire crossing. `raw-cast` and
/// `unit-mixing` do not apply there.
const UNIT_HOMES: &[&str] = &[
    "crates/simcore/src/units.rs",
    "crates/simcore/src/time.rs",
    "crates/simnet/src/consts.rs",
];

const WHY_HASH: &str = "randomized iteration order; use BTreeMap/BTreeSet";
const WHY_CLOCK: &str = "wall-clock time in simulation logic; use simcore::time";
const WHY_RNG: &str = "unseeded randomness; use an explicitly seeded SimRng";
const WHY_FLOAT_TIME: &str = "float time arithmetic outside simcore::time; keep time in integer ns";
const WHY_RAW_CAST: &str =
    "bare numeric cast on a byte/time quantity; convert through simcore::units / simcore::time";
const WHY_PANIC: &str =
    "panic in simulation code; handle the case or justify with lint:allow(panic-path)";
const WHY_MIXING: &str =
    "arithmetic mixing wire bytes and payload bytes; cross domains in simnet::consts only";
const WHY_THREAD: &str =
    "threads in simulation logic; only the experiment orchestrator may spawn/sleep threads";
const WHY_HEADER_SIZE: &str =
    "raw header/frame-size literal; use simnet::consts (DATA_HEADER_WIRE / CTRL_WIRE / DATA_WIRE)";

/// `(name, rationale)` for every rule, for `--help`-style listings.
pub const RULES: &[(&str, &str)] = &[
    ("hash-collections", WHY_HASH),
    ("wall-clock", WHY_CLOCK),
    ("ambient-rng", WHY_RNG),
    ("float-time", WHY_FLOAT_TIME),
    ("raw-cast", WHY_RAW_CAST),
    ("panic-path", WHY_PANIC),
    ("unit-mixing", WHY_MIXING),
    ("thread-spawn", WHY_THREAD),
    ("raw-header-size", WHY_HEADER_SIZE),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (workspace-relative).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (chars).
    pub col: usize,
    /// Rule name (e.g. `hash-collections`).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
    /// Why the construct is banned.
    pub why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {} ({})",
            self.file, self.line, self.col, self.rule, self.text, self.why
        )
    }
}

/// Lints every `src/**/*.rs` file of the covered crates under `root`,
/// plus the individually covered [`LINTED_EXTRA_FILES`].
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in LINTED_CRATES {
        let src_dir = root.join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            findings.extend(lint_source(&rel, &src));
        }
    }
    for rel in LINTED_EXTRA_FILES {
        let src = fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &src));
    }
    // Header-size-literal sweep over the simulation crates' integration
    // tests. In-file `#[cfg(test)]` modules are already covered (the rule
    // ignores the test exemption); this extends it to `tests/`, where the
    // packet-building helpers live. Only `raw-header-size` applies there —
    // integration tests may unwrap, cast and panic freely.
    for krate in LINTED_CRATES {
        let dir = root.join(krate).join("tests");
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            findings.extend(
                lint_source(&rel, &src)
                    .into_iter()
                    .filter(|f| f.rule == "raw-header-size"),
            );
        }
    }
    // Wall-clock-only sweep over the non-simulation layers (src/, bins and
    // benches — these crates keep measurement code outside src/ too).
    for krate in WALL_CLOCK_SWEEP_CRATES {
        for sub in ["src", "benches"] {
            let dir = root.join(krate).join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files)?;
            files.sort();
            for path in files {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if WALL_CLOCK_HOMES.contains(&rel.as_str())
                    || LINTED_EXTRA_FILES.contains(&rel.as_str())
                {
                    continue;
                }
                let src = fs::read_to_string(&path)?;
                findings.extend(
                    lint_source(&rel, &src)
                        .into_iter()
                        .filter(|f| f.rule == "wall-clock"),
                );
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A `lint:allow(...)` directive extracted from one comment.
struct Allow {
    rules: Vec<String>,
    start_line: usize,
    end_line: usize,
}

/// Lints one file's source text. `file` is the workspace-relative path,
/// used for reporting and the per-file home exemptions.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let scanned = scan(src);
    let toks = &scanned.tokens;
    let lines: Vec<&str> = src.lines().collect();

    // Lines that contain (part of) a code token; everything else is blank
    // or comment-only, which `lint:allow` adjacency may skip over.
    let mut code_line = vec![false; lines.len() + 2];
    for t in toks {
        let span = t.text.matches('\n').count();
        for l in t.line..=t.line + span {
            if l < code_line.len() {
                code_line[l] = true;
            }
        }
    }

    let exempt = exempt_flags(toks);
    let allows = collect_allows(&scanned.comments);
    let stmt_start = stmt_starts(toks);

    let float_home = file.ends_with(FLOAT_TIME_HOME);
    let unit_home = UNIT_HOMES.iter().any(|h| file.ends_with(h));

    // (token index, rule, why) candidates before suppression.
    let mut cands: Vec<(usize, &'static str, &'static str)> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        // Header-size literals are checked before the test exemption:
        // hardcoded 78/84/1538 copies live mostly in test helpers.
        if t.kind == Kind::Num {
            if !unit_home && is_header_size_literal(&t.text) {
                cands.push((i, "raw-header-size", WHY_HEADER_SIZE));
            }
            continue;
        }
        if exempt[i] || t.kind != Kind::Ident {
            continue;
        }
        let next = toks.get(i + 1);
        let next_is = |p: &str| next.is_some_and(|n| n.kind == Kind::Punct && n.text == p);
        match t.text.as_str() {
            "HashMap" | "HashSet" => cands.push((i, "hash-collections", WHY_HASH)),
            "Instant" | "SystemTime" => cands.push((i, "wall-clock", WHY_CLOCK)),
            "thread_rng" => cands.push((i, "ambient-rng", WHY_RNG)),
            "random" if i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "rand" => {
                cands.push((i, "ambient-rng", WHY_RNG));
            }
            "as_secs_f64" | "as_micros_f64" | "as_millis_f64" | "from_secs_f64"
                if next_is("(") && !float_home =>
            {
                cands.push((i, "float-time", WHY_FLOAT_TIME));
            }
            "panic" | "unreachable" if next_is("!") => {
                cands.push((i, "panic-path", WHY_PANIC));
            }
            "unwrap" if next_is("(") => cands.push((i, "panic-path", WHY_PANIC)),
            "thread" if i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std" => {
                cands.push((i, "thread-spawn", WHY_THREAD));
            }
            "as" if !unit_home
                && next.is_some_and(|n| n.kind == Kind::Ident && is_numeric_type(&n.text))
                && cast_source_is_quantity(toks, i) =>
            {
                cands.push((i, "raw-cast", WHY_RAW_CAST));
            }
            _ => {}
        }
    }

    if !unit_home {
        unit_mixing_candidates(toks, &exempt, &mut cands);
    }

    let mut findings = Vec::new();
    for (i, rule, why) in cands {
        let t = &toks[i];
        let suppressed = allows.iter().any(|a| {
            a.rules.iter().any(|r| r == rule)
                && (
                    // Trailing comment on the finding's own line.
                    (a.start_line <= t.line && a.end_line >= t.line)
                    // Comment block directly above the finding line
                    // (intervening blank / comment-only lines are fine).
                    || (a.end_line < t.line
                        && (a.end_line + 1..t.line).all(|l| !code_line[l]))
                    // Comment block directly above the statement the
                    // finding sits in (covers multi-line statements).
                    || (a.end_line < stmt_start[i]
                        && (a.end_line + 1..stmt_start[i]).all(|l| !code_line[l]))
                )
        });
        if suppressed {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: t.line,
            col: t.col,
            rule,
            text: lines
                .get(t.line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            why,
        });
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// True for any spelling of the blessed wire sizes 78 / 84 / 1538:
/// digit-separated (`1_538`), suffixed (`1538u64`), or float (`1538.0`).
/// Radix-prefixed literals (`0x84`) are bit patterns, not byte counts,
/// and are left alone; so is `1460` (`MTU_PAYLOAD`), which legitimately
/// appears in workload size tables.
fn is_header_size_literal(text: &str) -> bool {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    let digits_end = t
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(t.len());
    let num = t[..digits_end]
        .strip_suffix(".0")
        .unwrap_or(&t[..digits_end]);
    matches!(num, "78" | "84" | "1538")
}

fn is_numeric_type(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

/// Byte-ish or time-ish identifier: the cast's source carries a unit.
fn is_quantity_ident(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    l == "size"
        || ["byte", "wire", "payload", "mtu"]
            .iter()
            .any(|n| l.contains(n))
        || ["nanos", "micros", "millis", "secs"]
            .iter()
            .any(|n| l.contains(n))
}

/// Walks backwards from the `as` keyword over the cast's source expression
/// (a primary expression: idents, field/method chains, call/index groups)
/// and reports whether any identifier in it names a byte/time quantity.
fn cast_source_is_quantity(toks: &[Tok], as_idx: usize) -> bool {
    let mut depth = 0u32;
    let mut j = as_idx;
    for _ in 0..64 {
        if j == 0 {
            return false;
        }
        j -= 1;
        let t = &toks[j];
        match t.kind {
            Kind::Punct => match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                "." | "::" => {}
                // Operators and delimiters end the operand — but only at
                // depth 0; inside a parenthesized group they are part of it.
                _ if depth > 0 => {}
                _ => return false,
            },
            Kind::Ident => {
                let name = t.text.as_str();
                if depth == 0
                    && matches!(
                        name,
                        "as" | "return" | "let" | "if" | "else" | "match" | "in"
                    )
                {
                    return false;
                }
                if is_quantity_ident(name) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

const WIRE_FAMILY: &[&str] = &["DATA_WIRE", "DATA_HEADER_WIRE", "CTRL_WIRE", "WireBytes"];
const PAYLOAD_FAMILY: &[&str] = &["MTU_PAYLOAD", "Bytes", "payload"];

/// Flags comma/semicolon/brace-delimited expression segments that name both
/// byte families *and* apply arithmetic — the signature of an unchecked
/// domain crossing.
fn unit_mixing_candidates(
    toks: &[Tok],
    exempt: &[bool],
    cands: &mut Vec<(usize, &'static str, &'static str)>,
) {
    let mut seg_start = 0usize;
    for i in 0..=toks.len() {
        let boundary = i == toks.len()
            || (toks[i].kind == Kind::Punct
                && matches!(toks[i].text.as_str(), ";" | "{" | "}" | ","));
        if !boundary {
            continue;
        }
        let seg = seg_start..i;
        seg_start = i + 1;
        if seg.is_empty() || seg.clone().any(|k| exempt[k]) {
            continue;
        }
        // `use`/`pub use` lists legitimately name both families.
        if seg.clone().any(|k| toks[k].text == "use") {
            continue;
        }
        let has = |fam: &[&str]| {
            seg.clone()
                .any(|k| toks[k].kind == Kind::Ident && fam.contains(&toks[k].text.as_str()))
        };
        let arith = seg.clone().find(|&k| {
            toks[k].kind == Kind::Punct
                && matches!(
                    toks[k].text.as_str(),
                    "+" | "-" | "*" | "/" | "+=" | "-=" | "*=" | "/="
                )
        });
        if let Some(op) = arith {
            if has(WIRE_FAMILY) && has(PAYLOAD_FAMILY) {
                cands.push((op, "unit-mixing", WHY_MIXING));
            }
        }
    }
}

/// Marks tokens covered by a `#[cfg(test)]`-gated item (attribute included).
/// Works for items anywhere in the file, not just a trailing module.
/// `#[cfg(not(test))]` and similar negations stay linted.
fn exempt_flags(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Parse the attribute to its matching `]`, collecting identifiers.
        let mut j = i + 2;
        let mut depth = 1u32;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    if toks[j].kind == Kind::Ident {
                        idents.push(toks[j].text.as_str());
                    }
                }
            }
            j += 1;
        }
        let is_cfg_test =
            idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not");
        if !is_cfg_test {
            i = j;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut k = j;
        while k < toks.len()
            && toks[k].text == "#"
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[")
        {
            let mut d = 1u32;
            k += 2;
            while k < toks.len() && d > 0 {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // The item ends at the matching `}` of its body, or at a `;` at
        // delimiter depth 0 (e.g. `#[cfg(test)] use ...;`).
        let mut d = 0i64;
        let mut saw_brace = false;
        let mut end = toks.len() - 1;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" | "(" | "[" => {
                    if toks[k].text == "{" {
                        saw_brace = true;
                    }
                    d += 1;
                }
                "}" | ")" | "]" => {
                    d -= 1;
                    if d == 0 && saw_brace && toks[k].text == "}" {
                        end = k;
                        break;
                    }
                }
                ";" if d == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for f in flags.iter_mut().take(end + 1).skip(i) {
            *f = true;
        }
        i = end + 1;
    }
    flags
}

/// For each token, the 1-based line on which its statement started.
/// Statements are delimited by `;`, `{` and `}`.
fn stmt_starts(toks: &[Tok]) -> Vec<usize> {
    let mut out = Vec::with_capacity(toks.len());
    let mut cur: Option<usize> = None;
    for t in toks {
        let s = *cur.get_or_insert(t.line);
        out.push(s);
        if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            cur = None;
        }
    }
    out
}

/// Extracts `lint:allow(...)` directives from comments.
fn collect_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let mut rules = Vec::new();
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                rules.extend(rest[..end].split(',').map(|s| s.trim().to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
        if !rules.is_empty() {
            out.push(Allow {
                rules,
                start_line: c.start_line,
                end_line: c.end_line,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        lint_source(file, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f() {
                let m: BTreeMap<u32, u32> = BTreeMap::new();
                for (k, v) in &m { let _ = (k, v); }
            }
        "#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_with_position() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let found = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "hash-collections"));
        assert_eq!((found[0].line, found[0].col), (1, 23));
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn thread_rng_flagged() {
        let src = "fn f() { let mut r = rand::thread_rng(); }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), ["ambient-rng"]);
    }

    #[test]
    fn wall_clock_flagged() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["wall-clock"]);
    }

    #[test]
    fn thread_use_flagged() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["thread-spawn"]);
        let src = "use std::thread;\nfn f() { thread::spawn(|| {}); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["thread-spawn"]);
    }

    #[test]
    fn thread_use_suppressed_by_scoped_allow() {
        let src = "// lint:allow(thread-spawn): worker pool, not sim logic\n\
                   fn f() { std::thread::yield_now(); }";
        assert!(lint_source("crates/simcore/src/x.rs", src).is_empty());
    }

    #[test]
    fn extra_files_cover_the_orchestrator() {
        assert!(LINTED_EXTRA_FILES.contains(&"crates/experiments/src/orchestrate.rs"));
    }

    #[test]
    fn float_time_flagged_outside_time_rs() {
        let src = "fn f(d: TimeDelta) -> f64 { d.as_secs_f64() * 2.0 }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["float-time"]);
    }

    #[test]
    fn float_time_allowed_in_time_rs() {
        let src = "pub fn as_secs_f64(self) -> f64 { self.0 as f64 / 1e9 }";
        assert!(lint_source("crates/simcore/src/time.rs", src).is_empty());
    }

    // --- literals and comments can no longer yield findings ---

    #[test]
    fn string_literal_not_flagged() {
        let src = r#"fn f() -> &'static str { "uses a HashMap and Instant::now()" }"#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_string_not_flagged() {
        let src = r###"fn f() -> &'static str { r#"panic!("HashMap")"# }"###;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn block_comment_not_flagged() {
        let src = "/* HashMap inside /* a nested */ block comment */ fn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_prose_not_flagged() {
        let src = "/// Unlike a HashMap, iteration order here is stable.\nfn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- lint:allow spans ---

    #[test]
    fn allow_comment_suppresses_same_line() {
        let src = "fn f(d: TimeDelta) -> f64 { d.as_secs_f64() } // lint:allow(float-time)";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src = "// lint:allow(wall-clock): profiling aid\nfn f() { let _ = std::time::Instant::now(); }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_past_one_statement() {
        let src =
            "// lint:allow(wall-clock)\nfn ok() {}\nfn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["wall-clock"]);
    }

    #[test]
    fn allow_above_multi_line_statement() {
        let src = "fn f(x: SomeStruct) -> u64 {\n    // lint:allow(raw-cast): reporting only\n    let v = x\n        .wire_bytes() as u64;\n    v\n}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_through_comment_run() {
        // The directive sits in the first line of a two-line comment block.
        let src = "fn f() {\n    // lint:allow(panic-path): progress bound proven above; a trip\n    // here is a scheduler bug that must abort the run.\n    unreachable!(\"no progress\");\n}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- cfg(test) exemption ---

    #[test]
    fn test_tail_module_exempt() {
        let src = r#"
fn prod() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let _ = std::time::Instant::now(); let _: HashMap<u8, u8> = HashMap::new(); }
}
"#;
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_tail_test_module_exempt_but_code_after_still_linted() {
        let src = r#"
fn prod() {}

#[cfg(test)]
mod early_tests {
    use std::collections::HashMap;
    fn t() { let _: HashMap<u8, u8> = HashMap::new(); }
}

fn late_prod() { let _ = std::time::Instant::now(); }
"#;
        let found = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "wall-clock");
        assert_eq!(found[0].line, 10);
    }

    #[test]
    fn cfg_test_attribute_with_derive_between() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { m: HashMap<u8, u8> }\nfn f(m: HashMap<u8, u8>) {}";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["hash-collections"]
        );
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["wall-clock"]);
    }

    // --- raw-cast ---

    #[test]
    fn raw_cast_on_byte_quantity_flagged() {
        let src = "fn f(wire_bytes: u64) -> f64 { wire_bytes as f64 }";
        assert_eq!(rules_hit("crates/simnet/src/x.rs", src), ["raw-cast"]);
    }

    #[test]
    fn raw_cast_on_method_chain_flagged() {
        let src =
            "fn f(t: Time, bin: TimeDelta) -> usize { (t.as_nanos() / bin.as_nanos()) as usize }";
        assert_eq!(rules_hit("crates/simcore/src/x.rs", src), ["raw-cast"]);
    }

    #[test]
    fn raw_cast_on_size_flagged() {
        let src = "fn f(size: u64) -> u32 { size as u32 }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["raw-cast"]);
    }

    #[test]
    fn dimensionless_cast_not_flagged() {
        let src = "fn f(seq: u32, n: u32) -> usize { seq as usize + n as usize }";
        assert!(lint_source("crates/transport/src/x.rs", src).is_empty());
    }

    #[test]
    fn cast_in_units_home_not_flagged() {
        let src = "pub fn as_f64(self) -> f64 { self.0 as f64 }";
        // (no byte-ish ident here anyway, but the home exemption must hold
        // even for e.g. `payload_bytes as f64`)
        let src2 = "fn f(payload_bytes: u64) -> f64 { payload_bytes as f64 }";
        assert!(lint_source("crates/simcore/src/units.rs", src).is_empty());
        assert!(lint_source("crates/simcore/src/units.rs", src2).is_empty());
        assert!(lint_source("crates/simnet/src/consts.rs", src2).is_empty());
    }

    // --- panic-path ---

    #[test]
    fn panic_and_unreachable_flagged() {
        let src = "fn f(x: u8) { if x > 3 { panic!(\"bad\"); } else { unreachable!() } }";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["panic-path", "panic-path"]
        );
    }

    #[test]
    fn unwrap_flagged_but_expect_and_unwrap_or_allowed() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), ["panic-path"]);
        let ok = "fn f(o: Option<u8>) -> u8 { o.expect(\"set by caller\") }";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
        let ok2 = "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0).min(o.unwrap_or_default()) }";
        assert!(lint_source("crates/core/src/x.rs", ok2).is_empty());
    }

    // --- unit-mixing ---

    #[test]
    fn unit_mixing_flagged() {
        let src = "fn f(payload: u64) -> u64 { DATA_WIRE.get() + payload }";
        assert_eq!(rules_hit("crates/transport/src/x.rs", src), ["unit-mixing"]);
    }

    #[test]
    fn unit_mixing_allowed_in_consts_home() {
        let src = "pub fn data_wire_bytes(payload: Bytes) -> WireBytes { (DATA_HEADER_WIRE + WireBytes::new(payload.get())).max(CTRL_WIRE) }";
        assert!(lint_source("crates/simnet/src/consts.rs", src).is_empty());
    }

    #[test]
    fn unit_families_without_arithmetic_not_flagged() {
        let src = "fn f(w: WireBytes, p: Bytes) -> (WireBytes, Bytes) { (w, p) }";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn use_list_naming_both_families_not_flagged() {
        let src = "use flexpass_simcore::units::{Bytes, WireBytes};\nfn f() {}";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    // --- raw-header-size ---

    #[test]
    fn header_size_literals_flagged_in_any_spelling() {
        for src in [
            "fn f() -> u64 { 1538 }",
            "fn f() -> u64 { 1_538 }",
            "fn f() -> u64 { 1538u64 }",
            "fn f() -> f64 { 1538.0 }",
            "fn f(w: u64) -> u64 { w - 78 }",
            "fn f() -> u64 { 84 }",
        ] {
            assert_eq!(
                rules_hit("crates/simnet/src/x.rs", src),
                ["raw-header-size"],
                "{src}"
            );
        }
    }

    #[test]
    fn header_size_rule_applies_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper(wire: u64) -> u64 { wire - 78 }\n}";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            ["raw-header-size"]
        );
    }

    #[test]
    fn non_header_numbers_not_flagged() {
        for src in [
            "fn f() -> u64 { 1460 }", // MTU_PAYLOAD: legit in size tables
            "fn f() -> u64 { 1537 }",
            "fn f() -> u64 { 0x84 }", // bit pattern, not a byte count
            "fn f() -> f64 { 1538.5 }",
            "fn f() -> u64 { 840 }",
        ] {
            assert!(
                lint_source("crates/simnet/src/x.rs", src).is_empty(),
                "{src}"
            );
        }
    }

    #[test]
    fn header_size_allowed_in_unit_homes_and_via_allow() {
        let src = "pub const DATA_WIRE: WireBytes = WireBytes::new(1_538);";
        assert!(lint_source("crates/simnet/src/consts.rs", src).is_empty());
        assert!(lint_source("crates/simcore/src/units.rs", src).is_empty());
        let allowed =
            "fn f() -> u64 { 1538 } // lint:allow(raw-header-size): byte-identical fixture";
        assert!(lint_source("crates/simnet/src/x.rs", allowed).is_empty());
    }

    // --- the workspace itself ---

    #[test]
    fn repo_is_currently_clean() {
        // The workspace itself must pass its own lint; run it from the
        // xtask test binary so `cargo test` catches regressions without a
        // separate CI step.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root")
            .to_path_buf();
        let findings = lint_workspace(&root).expect("walk workspace");
        assert!(
            findings.is_empty(),
            "determinism/units lint found:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
