//! A lightweight recursive-descent parser over the token stream.
//!
//! This is the structural layer between `tokenize` and the lint rules: it
//! groups the flat token stream into *items* (functions, structs, enums,
//! impls, modules, uses, consts, …) with their attributes, bodies, fields
//! and variants, and provides expression-level extraction helpers (path
//! references, method calls, `for` loops, `let` type ascriptions) that
//! rules run over item ranges.
//!
//! It is intentionally not a full Rust parser. Error handling is
//! *recovery, not rejection*: anything the parser cannot classify becomes
//! an [`ItemKind::Other`] item whose span still covers its tokens, so
//! rules scanning item ranges never silently lose coverage. Spans are
//! half-open token-index ranges into the `Scan` the AST was built from,
//! which keeps every diagnostic anchored to an exact line and column.

use crate::tokenize::{Kind, Tok};

/// Classification of a parsed item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl method, or trait method; `body` is `None` for
    /// bodyless trait declarations).
    Fn,
    /// `struct` / `union` (fields captured for named structs).
    Struct,
    /// `enum` (variants captured).
    Enum,
    /// `trait` (children are its method declarations).
    Trait,
    /// `impl` block (`name` is the last segment of the `Self` type path;
    /// children are the contained items).
    Impl,
    /// `mod` (inline modules carry children).
    Mod,
    /// `use` declaration (`use_paths` is the expanded tree).
    Use,
    /// `const` item (`body` is the initializer expression).
    Const,
    /// `static` item (`body` is the initializer expression).
    Static,
    /// `type` alias.
    TypeAlias,
    /// `macro_rules!` definition.
    MacroDef,
    /// Anything else (item-level macro invocations, foreign blocks,
    /// `extern crate`, or unparsable constructs).
    Other,
}

/// One attribute (`#[…]` or `#![…]`) with its identifier soup.
#[derive(Debug)]
pub struct Attr {
    /// Token range `[start, end)` including `#`, brackets, and contents.
    pub start: usize,
    /// Exclusive end.
    pub end: usize,
    /// All identifier tokens inside, in order (`cfg`, `test`, `derive`, …).
    pub idents: Vec<String>,
}

/// A named struct field with the root of its type path.
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Last path segment of the field's type, stripped of references and
    /// generics (`std::collections::BTreeMap<K, V>` → `BTreeMap`); `array`
    /// for `[…]`, `tuple` for `(…)`.
    pub ty_root: String,
}

/// One expanded leaf of a `use` tree: `use std::{thread, time::Instant}`
/// yields `[std, thread]` and `[std, time, Instant]`.
#[derive(Debug)]
pub struct UsePath {
    /// Full path segments from the tree root (globs end in `*`).
    pub segs: Vec<String>,
    /// Token index of the last named segment, for anchoring findings.
    pub anchor: usize,
}

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// Item name; for impls the `Self` type's last path segment; empty
    /// when anonymous or unnamed.
    pub name: String,
    /// Token index of the name, when present. Rules use this to avoid
    /// flagging an item's own definition as a use of the flagged name.
    pub name_tok: Option<usize>,
    /// Directly carries a `#[cfg(test)]`-equivalent attribute. (Negations
    /// like `cfg(not(test))` do not count.)
    pub cfg_test: bool,
    /// Carries `#[derive(.., Copy, ..)]`.
    pub derives_copy: bool,
    /// Attributes, outer and inner.
    pub attrs: Vec<Attr>,
    /// Token range `[start, end)` including attributes.
    pub start: usize,
    /// Exclusive token end.
    pub end: usize,
    /// First token after the attributes.
    pub sig_start: usize,
    /// For `Fn`: the brace-enclosed body, `[open+1, close)`. For
    /// `Const`/`Static`: the initializer, `[after =, ;)`. For
    /// `Struct`/`Enum`: the field/variant braces.
    pub body: Option<(usize, usize)>,
    /// Nested items of `Mod` / `Impl` / `Trait` bodies.
    pub children: Vec<Item>,
    /// For `Enum`: `(name token index, name)` per variant.
    pub variants: Vec<(usize, String)>,
    /// For `Struct`: named fields.
    pub fields: Vec<Field>,
    /// For `Use`: the expanded use-tree.
    pub use_paths: Vec<UsePath>,
}

impl Item {
    /// End of the item's signature: the token before the body braces, or
    /// the item end when there is no body.
    pub fn sig_end(&self) -> usize {
        match self.body {
            Some((open, _)) => open.saturating_sub(1),
            None => self.end,
        }
    }
}

/// A parsed file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Ast {
    /// Depth-first walk over all items. `in_test` is true when the item or
    /// any ancestor carries `#[cfg(test)]`.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Item, bool)) {
        fn go<'a>(items: &'a [Item], in_test: bool, f: &mut impl FnMut(&'a Item, bool)) {
            for it in items {
                let t = in_test || it.cfg_test;
                f(it, t);
                go(&it.children, t, f);
            }
        }
        go(&self.items, false, f);
    }

    /// Finds the first item of `kind` named `name`, anywhere in the tree.
    pub fn find_named(&self, kind: ItemKind, name: &str) -> Option<&Item> {
        fn go<'a>(items: &'a [Item], kind: ItemKind, name: &str) -> Option<&'a Item> {
            for it in items {
                if it.kind == kind && it.name == name {
                    return Some(it);
                }
                if let Some(found) = go(&it.children, kind, name) {
                    return Some(found);
                }
            }
            None
        }
        go(&self.items, kind, name)
    }
}

/// Parses a token stream into an [`Ast`].
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser { toks, i: 0 };
    Ast {
        items: p.items_until(toks.len()),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind_at(&self, i: usize) -> Option<Kind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == Kind::Punct && t.text == s)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == Kind::Ident && t.text == s)
    }

    fn items_until(&mut self, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while self.i < end {
            let before = self.i;
            out.push(self.item(end));
            if self.i <= before {
                // Defensive: the parser must always make progress.
                self.i = before + 1;
            }
        }
        out
    }

    /// Parses attributes, returning them and whether they contain
    /// `#[cfg(test)]` / `#[derive(Copy)]`.
    fn attributes(&mut self, end: usize) -> (Vec<Attr>, bool, bool) {
        let mut attrs = Vec::new();
        let (mut cfg_test, mut derives_copy) = (false, false);
        while self.i < end && self.is_punct(self.i, "#") {
            let astart = self.i;
            let mut j = self.i + 1;
            if self.is_punct(j, "!") {
                j += 1;
            }
            if !self.is_punct(j, "[") {
                break;
            }
            let mut depth = 0usize;
            let mut idents = Vec::new();
            while j < end {
                match self.text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {
                        if self.kind_at(j) == Some(Kind::Ident) {
                            idents.push(self.toks[j].text.clone());
                        }
                    }
                }
                j += 1;
            }
            let first = idents.first().map(String::as_str);
            if first == Some("cfg")
                && idents.iter().any(|s| s == "test")
                && !idents.iter().any(|s| s == "not")
            {
                cfg_test = true;
            }
            if first == Some("derive") && idents.iter().any(|s| s == "Copy") {
                derives_copy = true;
            }
            attrs.push(Attr {
                start: astart,
                end: j,
                idents,
            });
            self.i = j;
        }
        (attrs, cfg_test, derives_copy)
    }

    fn item(&mut self, end: usize) -> Item {
        let start = self.i;
        let (attrs, cfg_test, derives_copy) = self.attributes(end);
        let sig_start = self.i;
        let mut item = Item {
            kind: ItemKind::Other,
            name: String::new(),
            name_tok: None,
            cfg_test,
            derives_copy,
            attrs,
            start,
            end: sig_start, // fixed up below
            sig_start,
            body: None,
            children: Vec::new(),
            variants: Vec::new(),
            fields: Vec::new(),
            use_paths: Vec::new(),
        };
        if self.i >= end {
            item.end = self.i;
            return item;
        }

        // Visibility and qualifiers before the defining keyword.
        loop {
            match self.text(self.i) {
                "pub" => {
                    self.i += 1;
                    if self.is_punct(self.i, "(") {
                        self.skip_group("(", ")", end);
                    }
                }
                "default" | "unsafe" | "async" => self.i += 1,
                // `const fn` / `const unsafe fn` — qualifier, not item.
                "const"
                    if self.is_ident(self.i + 1, "fn")
                        || self.is_ident(self.i + 1, "unsafe")
                        || self.is_ident(self.i + 1, "extern")
                        || self.is_ident(self.i + 1, "async") =>
                {
                    self.i += 1
                }
                "extern"
                    if !self.is_ident(self.i + 1, "crate")
                        && self.kind_at(self.i + 1) == Some(Kind::Str) =>
                {
                    // `extern "C" fn` qualifier (foreign *blocks* fall to
                    // Other below because no `fn` follows the ABI string).
                    if self.is_ident(self.i + 2, "fn") {
                        self.i += 2;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }

        match self.text(self.i) {
            "fn" => self.fn_item(&mut item, end),
            "struct" | "union" => self.struct_item(&mut item, end),
            "enum" => self.enum_item(&mut item, end),
            "trait" => self.block_item(&mut item, ItemKind::Trait, end),
            "impl" => self.impl_item(&mut item, end),
            "mod" => self.block_item(&mut item, ItemKind::Mod, end),
            "use" => self.use_item(&mut item, end),
            "const" | "static" => self.const_item(&mut item, end),
            "type" => {
                item.kind = ItemKind::TypeAlias;
                self.i += 1;
                self.take_name(&mut item);
                self.skip_to_semi(end);
            }
            "macro_rules" => {
                item.kind = ItemKind::MacroDef;
                self.i += 1; // macro_rules
                if self.is_punct(self.i, "!") {
                    self.i += 1;
                }
                self.take_name(&mut item);
                self.other_tail(end);
            }
            _ => self.other_tail(end),
        }
        item.end = self.i;
        item
    }

    fn take_name(&mut self, item: &mut Item) {
        if self.kind_at(self.i) == Some(Kind::Ident) {
            item.name = self.toks[self.i].text.clone();
            item.name_tok = Some(self.i);
            self.i += 1;
        }
    }

    /// Consumes a balanced `open … close` group; assumes `open` at `i` (or
    /// scans forward to the first one).
    fn skip_group(&mut self, open: &str, close: &str, end: usize) {
        let mut depth = 0usize;
        while self.i < end {
            let t = self.text(self.i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Consumes a generic parameter list; assumes `<` at `i`. Handles the
    /// shift-token spellings (`>>` closes two levels) and nested groups.
    fn skip_angles(&mut self, end: usize) {
        let mut depth = 0i32;
        while self.i < end {
            match self.text(self.i) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ">=" => depth -= 1,
                ">>=" => depth -= 2,
                "(" => {
                    self.skip_group("(", ")", end);
                    continue;
                }
                "[" => {
                    self.skip_group("[", "]", end);
                    continue;
                }
                "{" => {
                    self.skip_group("{", "}", end);
                    continue;
                }
                ";" => return, // runaway safety: generics never contain `;`
                _ => {}
            }
            self.i += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Consumes a `{ … }` body; assumes `{` at `i`. Returns the inner
    /// half-open range.
    fn brace_body(&mut self, end: usize) -> (usize, usize) {
        let open = self.i;
        let mut depth = 0usize;
        while self.i < end {
            match self.text(self.i) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.i += 1;
                        return (open + 1, self.i - 1);
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        (open + 1, end)
    }

    /// Consumes to the first `;` at delimiter depth 0.
    fn skip_to_semi(&mut self, end: usize) {
        let mut depth = 0i64;
        while self.i < end {
            match self.text(self.i) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                ";" if depth <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Fallback item tail: consume to a top-level `;` or through one
    /// balanced brace group (mirrors how `#[cfg(test)]` item extents were
    /// computed in the token-based linter).
    fn other_tail(&mut self, end: usize) {
        let mut depth = 0i64;
        let mut saw_brace = false;
        while self.i < end {
            match self.text(self.i) {
                "{" | "(" | "[" => {
                    if self.text(self.i) == "{" {
                        saw_brace = true;
                    }
                    depth += 1;
                }
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 && saw_brace && self.text(self.i) == "}" {
                        self.i += 1;
                        return;
                    }
                }
                ";" if depth <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn fn_item(&mut self, item: &mut Item, end: usize) {
        item.kind = ItemKind::Fn;
        self.i += 1; // fn
        self.take_name(item);
        if self.is_punct(self.i, "<") {
            self.skip_angles(end);
        }
        if self.is_punct(self.i, "(") {
            self.skip_group("(", ")", end);
        }
        // Return type and where clause: scan for `{` or `;` outside
        // generics and nested groups.
        let mut angle = 0i32;
        while self.i < end {
            match self.text(self.i) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "(" => {
                    self.skip_group("(", ")", end);
                    continue;
                }
                "[" => {
                    self.skip_group("[", "]", end);
                    continue;
                }
                ";" if angle == 0 => {
                    self.i += 1;
                    return; // bodyless trait method
                }
                "{" if angle == 0 => {
                    item.body = Some(self.brace_body(end));
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn struct_item(&mut self, item: &mut Item, end: usize) {
        item.kind = ItemKind::Struct;
        self.i += 1; // struct / union
        self.take_name(item);
        if self.is_punct(self.i, "<") {
            self.skip_angles(end);
        }
        while self.i < end {
            match self.text(self.i) {
                ";" => {
                    self.i += 1; // unit struct or tuple-struct terminator
                    return;
                }
                "(" => {
                    self.skip_group("(", ")", end);
                    continue;
                }
                "<" => {
                    self.skip_angles(end);
                    continue;
                }
                "{" => {
                    let body = self.brace_body(end);
                    item.body = Some(body);
                    item.fields = self.parse_fields(body.0, body.1);
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Parses named fields inside a struct body range.
    fn parse_fields(&self, bs: usize, be: usize) -> Vec<Field> {
        let mut out = Vec::new();
        let mut j = bs;
        while j < be {
            // Skip attributes on the field.
            while j < be && self.is_punct(j, "#") && self.is_punct(j + 1, "[") {
                let mut d = 0usize;
                j += 1;
                while j < be {
                    if self.is_punct(j, "[") {
                        d += 1;
                    } else if self.is_punct(j, "]") {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if j < be && self.is_ident(j, "pub") {
                j += 1;
                if self.is_punct(j, "(") {
                    let mut d = 0usize;
                    while j < be {
                        if self.is_punct(j, "(") {
                            d += 1;
                        } else if self.is_punct(j, ")") {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
            if j < be && self.kind_at(j) == Some(Kind::Ident) && self.is_punct(j + 1, ":") {
                let name = self.toks[j].text.clone();
                j += 2;
                let tstart = j;
                let (mut angle, mut paren, mut bracket) = (0i32, 0i32, 0i32);
                while j < be {
                    match self.text(j) {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "," if angle <= 0 && paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                out.push(Field {
                    name,
                    ty_root: type_root(&self.toks[tstart..j]),
                });
                if j < be {
                    j += 1; // the comma
                }
            } else {
                j += 1;
            }
        }
        out
    }

    fn enum_item(&mut self, item: &mut Item, end: usize) {
        item.kind = ItemKind::Enum;
        self.i += 1; // enum
        self.take_name(item);
        if self.is_punct(self.i, "<") {
            self.skip_angles(end);
        }
        while self.i < end {
            match self.text(self.i) {
                ";" => {
                    self.i += 1;
                    return;
                }
                "<" => {
                    self.skip_angles(end);
                    continue;
                }
                "{" => {
                    let (bs, be) = self.brace_body(end);
                    item.body = Some((bs, be));
                    item.variants = self.parse_variants(bs, be);
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Parses variant names inside an enum body range.
    fn parse_variants(&self, bs: usize, be: usize) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        let mut j = bs;
        loop {
            // Skip attributes before the variant.
            while j < be && self.is_punct(j, "#") && self.is_punct(j + 1, "[") {
                let mut d = 0usize;
                j += 1;
                while j < be {
                    if self.is_punct(j, "[") {
                        d += 1;
                    } else if self.is_punct(j, "]") {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if j >= be {
                return out;
            }
            if self.kind_at(j) == Some(Kind::Ident) {
                out.push((j, self.toks[j].text.clone()));
            }
            // Skip to the variant-separating comma at depth 0.
            let mut depth = 0i64;
            while j < be {
                match self.text(j) {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= be {
                return out;
            }
        }
    }

    /// `trait Name … { children }` and `mod name { children }` / `mod name;`.
    fn block_item(&mut self, item: &mut Item, kind: ItemKind, end: usize) {
        item.kind = kind;
        self.i += 1; // trait / mod
        self.take_name(item);
        while self.i < end {
            match self.text(self.i) {
                ";" => {
                    self.i += 1; // `mod name;`
                    return;
                }
                "<" => {
                    self.skip_angles(end);
                    continue;
                }
                "(" => {
                    self.skip_group("(", ")", end);
                    continue;
                }
                "[" => {
                    self.skip_group("[", "]", end);
                    continue;
                }
                "{" => {
                    let (bs, be) = self.brace_body(end);
                    item.body = Some((bs, be));
                    let save = self.i;
                    self.i = bs;
                    item.children = self.items_until(be);
                    self.i = save;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    fn impl_item(&mut self, item: &mut Item, end: usize) {
        item.kind = ItemKind::Impl;
        self.i += 1; // impl
        if self.is_punct(self.i, "<") {
            self.skip_angles(end);
        }
        // `impl Trait for Type` / `impl Type`: the last identifier seen
        // before the body at depth 0 is the Self type's path root.
        let mut last_ident: Option<usize> = None;
        while self.i < end {
            match self.text(self.i) {
                "{" => break,
                ";" => {
                    self.i += 1;
                    return;
                }
                "<" => {
                    self.skip_angles(end);
                    continue;
                }
                "(" => {
                    self.skip_group("(", ")", end);
                    continue;
                }
                "where" => {
                    // Bounds may mention more types; the Self type is fixed.
                    while self.i < end && !self.is_punct(self.i, "{") {
                        if self.is_punct(self.i, "<") {
                            self.skip_angles(end);
                        } else {
                            self.i += 1;
                        }
                    }
                    break;
                }
                _ => {
                    if self.kind_at(self.i) == Some(Kind::Ident) {
                        last_ident = Some(self.i);
                    }
                    self.i += 1;
                }
            }
        }
        if let Some(n) = last_ident {
            item.name = self.toks[n].text.clone();
            item.name_tok = Some(n);
        }
        if self.is_punct(self.i, "{") {
            let (bs, be) = self.brace_body(end);
            item.body = Some((bs, be));
            let save = self.i;
            self.i = bs;
            item.children = self.items_until(be);
            self.i = save;
        }
    }

    fn use_item(&mut self, item: &mut Item, end: usize) {
        item.kind = ItemKind::Use;
        self.i += 1; // use
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, &mut item.use_paths, end);
        if self.is_punct(self.i, ";") {
            self.i += 1;
        }
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UsePath>, end: usize) {
        let entry_len = prefix.len();
        loop {
            if self.i >= end || self.is_punct(self.i, ";") {
                break;
            }
            if self.is_punct(self.i, "::") && prefix.len() == entry_len {
                self.i += 1; // leading `::`
                continue;
            }
            if self.is_punct(self.i, "{") {
                self.i += 1;
                loop {
                    if self.i >= end || self.is_punct(self.i, ";") {
                        break;
                    }
                    if self.is_punct(self.i, "}") {
                        self.i += 1;
                        break;
                    }
                    if self.is_punct(self.i, ",") {
                        self.i += 1;
                        continue;
                    }
                    self.use_tree(prefix, out, end);
                }
                break;
            }
            if self.is_punct(self.i, "*") {
                prefix.push("*".to_string());
                out.push(UsePath {
                    segs: prefix.clone(),
                    anchor: self.i,
                });
                prefix.pop();
                self.i += 1;
                break;
            }
            if self.kind_at(self.i) == Some(Kind::Ident) && !self.is_ident(self.i, "as") {
                let anchor = self.i;
                prefix.push(self.toks[self.i].text.clone());
                self.i += 1;
                if self.is_punct(self.i, "::") {
                    self.i += 1;
                    continue; // next segment / group / glob
                }
                if self.is_ident(self.i, "as") {
                    self.i += 1;
                    if self.kind_at(self.i) == Some(Kind::Ident) || self.is_ident(self.i, "_") {
                        self.i += 1;
                    }
                }
                out.push(UsePath {
                    segs: prefix.clone(),
                    anchor,
                });
                break;
            }
            break; // anything else ends the tree
        }
        prefix.truncate(entry_len);
    }

    fn const_item(&mut self, item: &mut Item, end: usize) {
        item.kind = if self.text(self.i) == "static" {
            ItemKind::Static
        } else {
            ItemKind::Const
        };
        self.i += 1; // const / static
        if self.is_ident(self.i, "mut") {
            self.i += 1;
        }
        self.take_name(item);
        // Type, then `= init ;`.
        let mut depth = 0i64;
        while self.i < end {
            match self.text(self.i) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "<" if depth == 0 => {
                    self.skip_angles(end);
                    continue;
                }
                ";" if depth <= 0 => {
                    self.i += 1;
                    return; // bodyless (trait const decl)
                }
                "=" if depth == 0 => {
                    self.i += 1;
                    let init_start = self.i;
                    self.skip_to_semi(end);
                    let semi = self.i.saturating_sub(1);
                    item.body = Some((init_start, semi.max(init_start)));
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }
}

/// Root of a type: last path segment of the first path, stripped of
/// references, lifetimes and qualifiers; `array` / `tuple` for the
/// structural types.
pub fn type_root(toks: &[Tok]) -> String {
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            Kind::Lifetime => k += 1,
            Kind::Punct if matches!(t.text.as_str(), "&" | "&&" | "*") => k += 1,
            Kind::Punct if t.text == "[" => return "array".to_string(),
            Kind::Punct if t.text == "(" => return "tuple".to_string(),
            Kind::Ident if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "const") => k += 1,
            Kind::Ident => {
                let mut last = t.text.clone();
                let mut j = k + 1;
                while j + 1 < toks.len()
                    && toks[j].kind == Kind::Punct
                    && toks[j].text == "::"
                    && toks[j + 1].kind == Kind::Ident
                {
                    last = toks[j + 1].text.clone();
                    j += 2;
                }
                return last;
            }
            _ => return String::new(),
        }
    }
    String::new()
}

// ---------------------------------------------------------------------------
// Expression-level extraction helpers.
// ---------------------------------------------------------------------------

/// Calls `f(i)` for every token index in `[range.0, range.1)` that is not
/// inside an attribute (`#[…]` / `#![…]`). Rules use this so numbers and
/// names inside attribute token-trees can never yield findings.
pub fn each_code_tok(toks: &[Tok], range: (usize, usize), mut f: impl FnMut(usize)) {
    let mut i = range.0;
    while i < range.1.min(toks.len()) {
        if toks[i].kind == Kind::Punct && toks[i].text == "#" {
            let mut j = i + 1;
            if j < range.1 && toks[j].text == "!" {
                j += 1;
            }
            if j < range.1 && toks[j].text == "[" {
                let mut d = 0usize;
                while j < range.1 {
                    if toks[j].text == "[" {
                        d += 1;
                    } else if toks[j].text == "]" {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        f(i);
        i += 1;
    }
}

/// Collects the non-attribute token indices of a range.
pub fn code_indices(toks: &[Tok], range: (usize, usize)) -> Vec<usize> {
    let mut out = Vec::new();
    each_code_tok(toks, range, |i| out.push(i));
    out
}

/// One path expression reference: `std::time::Instant::now`, `HashMap`,
/// `vec` (of `vec![…]`), …
#[derive(Debug)]
pub struct PathRef {
    /// `(token index, text)` per segment.
    pub segs: Vec<(usize, String)>,
    /// Followed by `(` — a call.
    pub is_call: bool,
    /// Followed by `!` — a macro invocation.
    pub is_macro: bool,
}

impl PathRef {
    /// Last segment's text.
    pub fn last(&self) -> &str {
        self.segs.last().map(|(_, s)| s.as_str()).unwrap_or("")
    }

    /// Last segment's token index.
    pub fn last_tok(&self) -> usize {
        self.segs.last().map(|(i, _)| *i).unwrap_or(0)
    }

    /// Index of the first segment equal to `name`, if any.
    pub fn seg_named(&self, name: &str) -> Option<usize> {
        self.segs.iter().position(|(_, s)| s == name)
    }

    /// True when segments `a::b` appear consecutively in the path.
    pub fn has_pair(&self, a: &str, b: &str) -> Option<usize> {
        self.segs
            .windows(2)
            .find(|w| w[0].1 == a && w[1].1 == b)
            .map(|w| w[1].0)
    }
}

/// Extracts path references from a token range, skipping attribute
/// contents. Identifiers preceded by `.` (method/field names) are not path
/// starts; turbofish segments are traversed.
pub fn paths_in(toks: &[Tok], range: (usize, usize)) -> Vec<PathRef> {
    let idx = code_indices(toks, range);
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < idx.len() {
        let k = idx[p];
        let prev_dot =
            p > 0 && toks[idx[p - 1]].kind == Kind::Punct && toks[idx[p - 1]].text == ".";
        if toks[k].kind == Kind::Ident && !prev_dot {
            let mut segs = vec![(k, toks[k].text.clone())];
            let mut q = p + 1;
            loop {
                if q + 1 < idx.len()
                    && toks[idx[q]].text == "::"
                    && toks[idx[q + 1]].kind == Kind::Ident
                {
                    segs.push((idx[q + 1], toks[idx[q + 1]].text.clone()));
                    q += 2;
                } else if q + 1 < idx.len()
                    && toks[idx[q]].text == "::"
                    && matches!(toks[idx[q + 1]].text.as_str(), "<" | "<<")
                {
                    // Turbofish: skip the angle group, keep following the path.
                    let mut d = 0i32;
                    let mut r = q + 1;
                    while r < idx.len() {
                        match toks[idx[r]].text.as_str() {
                            "<" => d += 1,
                            "<<" => d += 2,
                            ">" => d -= 1,
                            ">>" => d -= 2,
                            ">=" => d -= 1,
                            _ => {}
                        }
                        r += 1;
                        if d <= 0 {
                            break;
                        }
                    }
                    q = r;
                } else {
                    break;
                }
            }
            let is_call = q < idx.len() && toks[idx[q]].text == "(";
            let is_macro = q < idx.len() && toks[idx[q]].text == "!";
            out.push(PathRef {
                segs,
                is_call,
                is_macro,
            });
            p = q;
        } else {
            p += 1;
        }
    }
    out
}

/// One `.name(…)` method call with a best-effort receiver analysis.
#[derive(Debug)]
pub struct MethodCall {
    /// Token index of the method name.
    pub tok: usize,
    /// Method name.
    pub name: String,
    /// Leftmost identifier of a simple receiver chain (`self.spec.clone()`
    /// → `self`); `None` when the receiver is a call result or complex
    /// expression.
    pub recv_root: Option<String>,
    /// Field nearest the method on a `root.field.method()` chain.
    pub recv_field: Option<String>,
}

/// Extracts method calls from a token range.
pub fn method_calls_in(toks: &[Tok], range: (usize, usize)) -> Vec<MethodCall> {
    let idx = code_indices(toks, range);
    let mut out = Vec::new();
    for p in 0..idx.len() {
        if toks[idx[p]].text != "." || toks[idx[p]].kind != Kind::Punct {
            continue;
        }
        let Some(&name_k) = idx.get(p + 1) else {
            continue;
        };
        if toks[name_k].kind != Kind::Ident {
            continue;
        }
        // `(` directly or after a turbofish.
        let mut after = p + 2;
        if idx.get(after).is_some_and(|&k| toks[k].text == "::")
            && idx
                .get(after + 1)
                .is_some_and(|&k| matches!(toks[k].text.as_str(), "<" | "<<"))
        {
            let mut d = 0i32;
            let mut r = after + 1;
            while r < idx.len() {
                match toks[idx[r]].text.as_str() {
                    "<" => d += 1,
                    "<<" => d += 2,
                    ">" => d -= 1,
                    ">>" => d -= 2,
                    _ => {}
                }
                r += 1;
                if d <= 0 {
                    break;
                }
            }
            after = r;
        }
        if idx.get(after).is_none_or(|&k| toks[k].text != "(") {
            continue;
        }
        let (recv_root, recv_field) = receiver_chain(toks, &idx, p);
        out.push(MethodCall {
            tok: name_k,
            name: toks[name_k].text.clone(),
            recv_root,
            recv_field,
        });
    }
    out
}

/// Walks left from the `.` at `idx[p]` over a simple `root(.field)*` chain.
/// Returns `(root, nearest field)`; `(None, None)` for complex receivers.
fn receiver_chain(toks: &[Tok], idx: &[usize], p: usize) -> (Option<String>, Option<String>) {
    let mut names: Vec<String> = Vec::new();
    let mut q = p;
    loop {
        if q == 0 {
            break;
        }
        let t = &toks[idx[q - 1]];
        if t.kind == Kind::Ident {
            names.push(t.text.clone());
            if q >= 2 && toks[idx[q - 2]].kind == Kind::Punct && toks[idx[q - 2]].text == "." {
                q -= 2;
                continue;
            }
            // A `)`/`]`/`::` before the chain start means the root is a call
            // result, index, or path expression — not a simple chain.
            if q >= 2 && matches!(toks[idx[q - 2]].text.as_str(), ")" | "]" | "::") {
                return (None, None);
            }
            break;
        }
        return (None, None);
    }
    if names.is_empty() {
        return (None, None);
    }
    let root = names.last().cloned();
    let field = if names.len() >= 2 {
        Some(names[0].clone())
    } else {
        None
    };
    (root, field)
}

/// One `for pat in expr { … }` loop.
#[derive(Debug)]
pub struct ForLoop {
    /// Token index of the `for` keyword.
    pub tok: usize,
    /// Half-open token range of the iterated expression.
    pub iter: (usize, usize),
}

/// Extracts `for` loops from a token range. `for<'a>` higher-ranked bounds
/// and `impl … for …` are not loops and are skipped.
pub fn for_loops_in(toks: &[Tok], range: (usize, usize)) -> Vec<ForLoop> {
    let idx = code_indices(toks, range);
    let mut out = Vec::new();
    for p in 0..idx.len() {
        let k = idx[p];
        if toks[k].kind != Kind::Ident || toks[k].text != "for" {
            continue;
        }
        if idx
            .get(p + 1)
            .is_some_and(|&n| matches!(toks[n].text.as_str(), "<" | "<<"))
        {
            continue; // `for<'a>` bound
        }
        // Find `in` at depth 0 before any depth-0 `{`.
        let mut depth = 0i64;
        let mut q = p + 1;
        let mut in_pos = None;
        while q < idx.len() {
            let t = &toks[idx[q]];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "in" if depth == 0 && t.kind == Kind::Ident => {
                    in_pos = Some(q);
                    break;
                }
                _ => {}
            }
            if depth < 0 {
                break;
            }
            q += 1;
        }
        let Some(inq) = in_pos else { continue };
        // Iterated expression: from after `in` to the loop's `{` at depth 0
        // (struct literals are illegal there, so the first depth-0 `{` is
        // the loop body).
        let mut depth = 0i64;
        let mut r = inq + 1;
        let mut body_open = None;
        while r < idx.len() {
            match toks[idx[r]].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_open = Some(r);
                    break;
                }
                _ => {}
            }
            if depth < 0 {
                break;
            }
            r += 1;
        }
        let Some(open) = body_open else { continue };
        if inq + 1 < open {
            out.push(ForLoop {
                tok: k,
                iter: (idx[inq + 1], idx[open - 1] + 1),
            });
        }
    }
    out
}

/// `let` type ascriptions in a range: `(name, type root)` pairs from
/// `let name: Type = …` / `let mut name: Type;`.
pub fn let_types_in(toks: &[Tok], range: (usize, usize)) -> Vec<(String, String)> {
    let idx = code_indices(toks, range);
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < idx.len() {
        if toks[idx[p]].kind == Kind::Ident && toks[idx[p]].text == "let" {
            let mut q = p + 1;
            if idx.get(q).is_some_and(|&k| toks[k].text == "mut") {
                q += 1;
            }
            if idx.get(q).is_some_and(|&k| toks[k].kind == Kind::Ident)
                && idx.get(q + 1).is_some_and(|&k| toks[k].text == ":")
            {
                let name = toks[idx[q]].text.clone();
                let tstart = q + 2;
                let (mut angle, mut depth) = (0i32, 0i64);
                let mut r = tstart;
                while r < idx.len() {
                    match toks[idx[r]].text.as_str() {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "=" | ";" if angle <= 0 && depth == 0 => break,
                        _ => {}
                    }
                    if depth < 0 {
                        break;
                    }
                    r += 1;
                }
                let ty_toks: Vec<Tok> = idx[tstart..r.min(idx.len())]
                    .iter()
                    .map(|&k| toks[k].clone())
                    .collect();
                out.push((name, type_root(&ty_toks)));
                p = r;
                continue;
            }
        }
        p += 1;
    }
    out
}

/// Typed parameters of a fn signature range: `(name, type root)` pairs.
pub fn param_types_in(toks: &[Tok], sig: (usize, usize)) -> Vec<(String, String)> {
    // Find the parameter parens: first `(` in the signature range.
    let idx = code_indices(toks, sig);
    let Some(open) = idx.iter().position(|&k| toks[k].text == "(") else {
        return Vec::new();
    };
    let mut depth = 0i64;
    let mut close = idx.len();
    for (pos, &k) in idx.iter().enumerate().skip(open) {
        match toks[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    close = pos;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    let mut p = open + 1;
    while p < close {
        // `name: Type` at paren depth 1 — scan each comma-separated param.
        if toks[idx[p]].kind == Kind::Ident && idx.get(p + 1).is_some_and(|&k| toks[k].text == ":")
        {
            let name = toks[idx[p]].text.clone();
            let tstart = p + 2;
            let (mut angle, mut depth) = (0i32, 0i64);
            let mut r = tstart;
            while r < close {
                match toks[idx[r]].text.as_str() {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "," if angle <= 0 && depth == 0 => break,
                    _ => {}
                }
                r += 1;
            }
            let ty_toks: Vec<Tok> = idx[tstart..r].iter().map(|&k| toks[k].clone()).collect();
            out.push((name, type_root(&ty_toks)));
            p = r + 1;
        } else {
            // Skip over pattern params (`&self`, `(a, b): …`, `mut x: …`).
            if toks[idx[p]].text == "mut" {
                p += 1;
                continue;
            }
            let mut depth = 0i64;
            while p < close {
                match toks[idx[p]].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "," if depth == 0 => {
                        p += 1;
                        break;
                    }
                    ":" if depth == 0 => break, // pattern done, type follows
                    _ => {}
                }
                p += 1;
            }
            if p < close && toks[idx[p]].text == ":" {
                // Untracked pattern binding; skip its type to the comma.
                let mut depth = 0i64;
                let mut angle = 0i32;
                p += 1;
                while p < close {
                    match toks[idx[p]].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "," if angle <= 0 && depth == 0 => {
                            p += 1;
                            break;
                        }
                        _ => {}
                    }
                    p += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::scan;

    fn ast_of(src: &str) -> (Vec<Tok>, Ast) {
        let s = scan(src);
        let ast = parse(&s.tokens);
        (s.tokens, ast)
    }

    #[test]
    fn items_are_classified_and_named() {
        let (_, ast) = ast_of(
            "use std::collections::BTreeMap;\n\
             const N: usize = 4;\n\
             struct Foo { a: u32 }\n\
             enum E { A, B(u8), C { x: u8 } }\n\
             trait T { fn m(&self); }\n\
             impl T for Foo { fn m(&self) {} }\n\
             mod inner { pub fn f() {} }\n\
             fn main() { let x = 1; }\n",
        );
        let kinds: Vec<(ItemKind, &str)> = ast
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_str()))
            .collect();
        assert_eq!(
            kinds,
            [
                (ItemKind::Use, ""),
                (ItemKind::Const, "N"),
                (ItemKind::Struct, "Foo"),
                (ItemKind::Enum, "E"),
                (ItemKind::Trait, "T"),
                (ItemKind::Impl, "Foo"),
                (ItemKind::Mod, "inner"),
                (ItemKind::Fn, "main"),
            ]
        );
        assert_eq!(ast.items[3].variants.len(), 3);
        assert_eq!(ast.items[3].variants[1].1, "B");
        assert_eq!(ast.items[5].children.len(), 1);
        assert_eq!(ast.items[5].children[0].kind, ItemKind::Fn);
        assert_eq!(ast.items[6].children[0].name, "f");
    }

    #[test]
    fn use_tree_expansion() {
        let (toks, ast) = ast_of("use std::{thread, time::Instant, io::*};");
        let paths: Vec<Vec<String>> = ast.items[0]
            .use_paths
            .iter()
            .map(|p| p.segs.clone())
            .collect();
        assert_eq!(
            paths,
            [
                vec!["std".to_string(), "thread".to_string()],
                vec!["std".to_string(), "time".to_string(), "Instant".to_string()],
                vec!["std".to_string(), "io".to_string(), "*".to_string()],
            ]
        );
        // Anchors point at the leaf segments.
        assert_eq!(toks[ast.items[0].use_paths[0].anchor].text, "thread");
        assert_eq!(toks[ast.items[0].use_paths[1].anchor].text, "Instant");
    }

    #[test]
    fn use_alias_and_glob() {
        let (_, ast) = ast_of("use std::collections::HashMap as Map;\nuse foo::bar::*;");
        assert_eq!(
            ast.items[0].use_paths[0].segs,
            ["std", "collections", "HashMap"]
        );
        assert_eq!(ast.items[1].use_paths[0].segs, ["foo", "bar", "*"]);
    }

    #[test]
    fn cfg_test_and_derive_copy_attrs() {
        let (_, ast) = ast_of(
            "#[cfg(test)]\nmod tests { fn t() {} }\n\
             #[derive(Clone, Copy, Debug)]\nstruct P { a: u64 }\n\
             #[cfg(not(test))]\nfn prod() {}",
        );
        assert!(ast.items[0].cfg_test);
        assert!(ast.items[1].derives_copy);
        assert!(!ast.items[2].cfg_test);
    }

    #[test]
    fn struct_fields_with_type_roots() {
        let (_, ast) = ast_of(
            "pub struct S<'a, T> {\n\
                 pub a: std::collections::BTreeMap<u32, Vec<T>>,\n\
                 b: &'a mut Vec<u8>,\n\
                 #[allow(dead_code)]\n\
                 c: [u8; 4],\n\
                 d: (u8, u8),\n\
             }",
        );
        let f: Vec<(&str, &str)> = ast.items[0]
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty_root.as_str()))
            .collect();
        assert_eq!(
            f,
            [
                ("a", "BTreeMap"),
                ("b", "Vec"),
                ("c", "array"),
                ("d", "tuple")
            ]
        );
    }

    #[test]
    fn fn_bodies_and_trait_decls() {
        let (toks, ast) = ast_of(
            "fn f(x: u32) -> Vec<u8> { let y = x; Vec::new() }\n\
             trait T { fn decl(&self) -> u32; fn with_body(&self) -> u32 { 1 } }",
        );
        let body = ast.items[0].body.expect("fn body");
        assert_eq!(toks[body.0].text, "let");
        assert!(ast.items[1].children[0].body.is_none());
        assert!(ast.items[1].children[1].body.is_some());
    }

    #[test]
    fn impl_self_type_name_with_generics() {
        let (_, ast) = ast_of(
            "impl<O: NetObserver> Sim<O> { fn f(&self) {} }\n\
             impl fmt::Display for Finding { fn fmt(&self) {} }\n\
             impl Default for Port { fn default() -> Self { todo_stub() } }",
        );
        assert_eq!(ast.items[0].name, "Sim");
        assert_eq!(ast.items[1].name, "Finding");
        assert_eq!(ast.items[2].name, "Port");
    }

    #[test]
    fn const_initializer_range() {
        let (toks, ast) = ast_of("const X: [u8; 2] = [1, 2];\nstatic S: &str = \"x\";");
        let init = ast.items[0].body.expect("const init");
        assert_eq!(toks[init.0].text, "[");
        assert_eq!(ast.items[1].kind, ItemKind::Static);
    }

    #[test]
    fn paths_and_calls_extracted() {
        let (toks, ast) = ast_of("fn f() { let t = std::time::Instant::now(); vec![1]; }");
        let body = ast.items[0].body.expect("body");
        let paths = paths_in(&toks, body);
        let inst = paths
            .iter()
            .find(|p| p.seg_named("Instant").is_some())
            .expect("Instant path");
        assert_eq!(
            inst.segs
                .iter()
                .map(|(_, s)| s.as_str())
                .collect::<Vec<_>>(),
            ["std", "time", "Instant", "now"]
        );
        assert!(inst.is_call);
        let v = paths.iter().find(|p| p.last() == "vec").expect("vec!");
        assert!(v.is_macro);
    }

    #[test]
    fn turbofish_paths_are_followed() {
        let (toks, ast) = ast_of("fn f() { let v = Vec::<u8>::with_capacity(4); }");
        let body = ast.items[0].body.expect("body");
        let paths = paths_in(&toks, body);
        let v = paths
            .iter()
            .find(|p| p.seg_named("Vec").is_some())
            .expect("Vec path");
        assert_eq!(v.last(), "with_capacity");
        assert!(v.is_call);
    }

    #[test]
    fn method_calls_with_receiver_chains() {
        let (toks, ast) =
            ast_of("fn f(&self) { self.spec.clone(); x.clone(); foo().clone(); arr[0].clone(); }");
        let body = ast.items[0].body.expect("body");
        let calls = method_calls_in(&toks, body);
        assert_eq!(calls.len(), 4);
        assert_eq!(calls[0].recv_root.as_deref(), Some("self"));
        assert_eq!(calls[0].recv_field.as_deref(), Some("spec"));
        assert_eq!(calls[1].recv_root.as_deref(), Some("x"));
        assert_eq!(calls[1].recv_field, None);
        assert_eq!(calls[2].recv_root, None);
        assert_eq!(calls[3].recv_root, None);
    }

    #[test]
    fn for_loops_and_ranges() {
        let (toks, ast) =
            ast_of("fn f(&self) { for (k, v) in &self.map { g(k, v); } for i in 0..4 { g(i); } }");
        let body = ast.items[0].body.expect("body");
        let loops = for_loops_in(&toks, body);
        assert_eq!(loops.len(), 2);
        let expr0: Vec<&str> = (loops[0].iter.0..loops[0].iter.1)
            .map(|i| toks[i].text.as_str())
            .collect();
        assert_eq!(expr0, ["&", "self", ".", "map"]);
    }

    #[test]
    fn let_and_param_types() {
        let (toks, ast) = ast_of(
            "fn f(m: &HashMap<u32, u32>, n: usize) { let x: BTreeMap<u8, u8> = BTreeMap::new(); }",
        );
        let item = &ast.items[0];
        let params = param_types_in(&toks, (item.sig_start, item.sig_end()));
        assert_eq!(
            params,
            [
                ("m".to_string(), "HashMap".to_string()),
                ("n".to_string(), "usize".to_string())
            ]
        );
        let lets = let_types_in(&toks, item.body.expect("body"));
        assert_eq!(lets, [("x".to_string(), "BTreeMap".to_string())]);
    }

    #[test]
    fn attrs_inside_bodies_are_skipped_by_each_code_tok() {
        let (toks, ast) = ast_of("fn f() { #[allow(clippy::all)] let x = 84; }");
        let body = ast.items[0].body.expect("body");
        let mut texts = Vec::new();
        each_code_tok(&toks, body, |i| texts.push(toks[i].text.clone()));
        assert!(!texts.iter().any(|t| t == "clippy"));
        assert!(texts.iter().any(|t| t == "84"));
    }

    #[test]
    fn shebang_file_parses() {
        let (_, ast) = ast_of("#!/usr/bin/env x\nfn main() {}");
        assert_eq!(ast.items[0].kind, ItemKind::Fn);
        assert_eq!(ast.items[0].name, "main");
    }

    #[test]
    fn nested_mod_walk_inherits_test_flag() {
        let (_, ast) =
            ast_of("#[cfg(test)]\nmod tests { mod inner { fn helper() {} } }\nfn prod() {}");
        let mut seen = Vec::new();
        ast.walk(&mut |it, in_test| {
            if it.kind == ItemKind::Fn {
                seen.push((it.name.clone(), in_test));
            }
        });
        assert_eq!(
            seen,
            [("helper".to_string(), true), ("prod".to_string(), false)]
        );
    }

    #[test]
    fn where_clause_and_return_generics_do_not_confuse_fn_body() {
        let (toks, ast) = ast_of(
            "fn f<T>(x: T) -> BTreeMap<T, Vec<u8>> where T: Ord + Into<Vec<u8>> { BTreeMap::new() }",
        );
        let body = ast.items[0].body.expect("body");
        assert_eq!(toks[body.0].text, "BTreeMap");
    }

    #[test]
    fn unparsable_items_still_cover_their_tokens() {
        let (_, ast) = ast_of("extern \"C\" { fn ffi(); }\nmy_macro!{ stuff }\nfn f() {}");
        // Every token is covered by some item span.
        let last = ast.items.last().expect("items");
        assert_eq!(last.kind, ItemKind::Fn);
        let mut covered_to = 0usize;
        for it in &ast.items {
            assert!(it.start <= covered_to, "gap before item {it:?}");
            covered_to = covered_to.max(it.end);
        }
    }
}
