//! The lint baseline (`lint-baseline.json`).
//!
//! The baseline is the committed inventory of *known* findings — today,
//! the allocation sites awaiting the ROADMAP-1 arena refactor. `xtask lint`
//! subtracts it from the sweep: baselined findings are reported but do not
//! fail the build, new findings do, and entries that no longer match
//! anything are flagged as stale so the file shrinks as the debt burns
//! down (`--update-baseline` rewrites it).
//!
//! Entries are keyed by `(file, rule, trimmed source text)` with an
//! occurrence count rather than by line number, so unrelated edits that
//! shift lines don't invalidate the baseline, while any change to the
//! flagged expression itself surfaces as a new finding.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::{self, Json};
use crate::lint::Finding;

/// One baseline entry: `count` occurrences of `text` flagged by `rule` in
/// `file`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub file: String,
    pub rule: String,
    pub text: String,
    pub count: usize,
}

/// A loaded baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

/// Result of subtracting a baseline from a finding sweep.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not covered by the baseline — these fail the build.
    pub new: Vec<Finding>,
    /// Findings matched by a baseline entry — known debt.
    pub baselined: Vec<Finding>,
    /// Baseline entries (with residual counts) that matched nothing —
    /// candidates for removal via `--update-baseline`.
    pub stale: Vec<Entry>,
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Baseline::from_json(&src).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the JSON document: `[{"file","rule","text","count"}, …]`.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let doc = json::parse(src)?;
        let arr = doc
            .as_arr()
            .ok_or_else(|| "baseline must be a JSON array".to_string())?;
        let mut entries = Vec::new();
        for (i, e) in arr.iter().enumerate() {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i}: missing string field `{k}`"))
            };
            entries.push(Entry {
                file: field("file")?,
                rule: field("rule")?,
                text: field("text")?,
                count: e.get("count").and_then(Json::as_u64).unwrap_or(1) as usize,
            });
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline from a finding sweep (the `--update-baseline`
    /// path). Entries are sorted and counted for a deterministic file.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((
                    f.file.clone(),
                    f.rule.to_string(),
                    f.text.trim().to_string(),
                ))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule, text), count)| Entry {
                    file,
                    rule,
                    text,
                    count,
                })
                .collect(),
        }
    }

    /// Renders the baseline as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"file\": {}, \"rule\": {}, \"text\": {}, \"count\": {}}}",
                json::escape(&e.file),
                json::escape(&e.rule),
                json::escape(&e.text),
                e.count
            ));
        }
        if !self.entries.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Subtracts this baseline from a sweep. Each entry absorbs up to
    /// `count` matching findings; the rest are new.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.file.clone(), e.rule.clone(), e.text.clone()))
                .or_insert(0) += e.count;
        }
        let mut applied = Applied::default();
        for f in findings {
            let key = (
                f.file.clone(),
                f.rule.to_string(),
                f.text.trim().to_string(),
            );
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    applied.baselined.push(f);
                }
                _ => applied.new.push(f),
            }
        }
        for e in &self.entries {
            // Residual budget under this entry's key means the entry (or a
            // duplicate sharing the key) over-counts; report once per key.
            let k = (e.file.clone(), e.rule.clone(), e.text.clone());
            if let Some(n) = budget.get_mut(&k) {
                if *n > 0 {
                    applied.stale.push(Entry {
                        file: e.file.clone(),
                        rule: e.rule.clone(),
                        text: e.text.clone(),
                        count: *n,
                    });
                    *n = 0;
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str, text: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule,
            text: text.to_string(),
            why: "",
        }
    }

    #[test]
    fn apply_splits_new_baselined_and_stale() {
        let b = Baseline {
            entries: vec![
                Entry {
                    file: "a.rs".into(),
                    rule: "alloc-in-datapath".into(),
                    text: "Vec::new()".into(),
                    count: 2,
                },
                Entry {
                    file: "gone.rs".into(),
                    rule: "alloc-in-datapath".into(),
                    text: "format!(\"x\")".into(),
                    count: 1,
                },
            ],
        };
        let sweep = vec![
            finding("a.rs", "alloc-in-datapath", "Vec::new()"),
            finding("a.rs", "alloc-in-datapath", "Vec::new()"),
            finding("a.rs", "alloc-in-datapath", "Vec::new()"), // third: new
            finding("b.rs", "wall-clock", "Instant::now()"),
        ];
        let applied = b.apply(sweep);
        assert_eq!(applied.baselined.len(), 2);
        assert_eq!(applied.new.len(), 2);
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].file, "gone.rs");
    }

    #[test]
    fn line_churn_does_not_invalidate_the_baseline() {
        let b = Baseline::from_findings(&[finding("a.rs", "alloc-in-datapath", "  x.clone()")]);
        let mut moved = finding("a.rs", "alloc-in-datapath", "x.clone()");
        moved.line = 999; // same text, different line
        let applied = b.apply(vec![moved]);
        assert_eq!(applied.new.len(), 0);
        assert_eq!(applied.baselined.len(), 1);
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn json_round_trip_is_stable() {
        let b = Baseline::from_findings(&[
            finding("b.rs", "panic-path", "x.unwrap()"),
            finding("a.rs", "alloc-in-datapath", "Vec::new()"),
            finding("a.rs", "alloc-in-datapath", "Vec::new()"),
        ]);
        let j = b.to_json();
        let back = Baseline::from_json(&j).expect("parse");
        assert_eq!(back.entries, b.entries);
        // Sorted: a.rs before b.rs.
        assert_eq!(back.entries[0].file, "a.rs");
        assert_eq!(back.entries[0].count, 2);
    }

    #[test]
    fn missing_count_defaults_to_one() {
        let b = Baseline::from_json(
            r#"[{"file": "a.rs", "rule": "panic-path", "text": "x.unwrap()"}]"#,
        )
        .expect("parse");
        assert_eq!(b.entries[0].count, 1);
    }
}
