//! Workspace-wide call graph over the linted sources.
//!
//! Built on the same tokenizer/parser as the per-file rules: every non-test
//! fn in the linted files becomes a node, and call expressions inside its
//! body become edges, resolved with the declared-type heuristics below. The
//! graph feeds the interprocedural rules in `crate::rules::reachable`
//! (`panic-reachable` / `alloc-reachable`), which BFS from the datapath
//! entry points and report shortest witness chains.
//!
//! Call resolution (best-effort, deterministic — see DESIGN.md §12 for the
//! known imprecision):
//!
//! * `self.m(..)` → method `m` on the enclosing impl type;
//! * `Type::f(..)` / `Self::f(..)` → the method on that type (the impl's
//!   Self path root), wherever its impl lives;
//! * `x.m(..)` → method on `x`'s declared type, when a param or `let`
//!   ascription names it;
//! * `self.field.m(..)` / `x.field.m(..)` → method on the field's type
//!   root, via a workspace-wide struct-field registry;
//! * `free_fn(..)` → the same-file free fn, else the unique workspace free
//!   fn of that name;
//! * `module::f(..)` (lowercase qualifier) → the free fn `f` in the file
//!   named `module.rs`, else the unique workspace free fn;
//! * any other method receiver → the unique workspace method of that name,
//!   if exactly one exists (std methods with no workspace definition
//!   simply resolve to nothing).
//!
//! Unresolvable calls (trait-object dispatch, fn pointers, closures,
//! macro-generated code) produce no edge: the rules are deliberately
//! under-approximate and rely on the file-local rules plus the dynamic
//! alloc-count gate to cover the remainder.

use std::collections::BTreeMap;

use crate::config::LintConfig;
use crate::lint::Suppressor;
use crate::parse;
use crate::rules::{self, FileCtx};
use crate::tokenize::scan;

/// Leaf family: which interprocedural rule the leaf feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Panic,
    Alloc,
}

/// One panic/alloc site inside a fn body, post-`lint:allow` filtering.
#[derive(Debug, Clone)]
pub struct Leaf {
    pub family: Family,
    /// Site classification (`unwrap`, `index`, `int-div`, `Vec::new`, …).
    pub kind: String,
    pub line: usize,
    pub col: usize,
    /// Trimmed source line.
    pub text: String,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file the fn is defined in.
    pub file: String,
    /// `Owner::name` for methods, plain `name` for free fns.
    pub qname: String,
    /// Position of the fn's name token (witness anchors).
    pub line: usize,
    pub col: usize,
    /// Defined in a hot-module file (candidate entry point).
    pub hot: bool,
    /// Constructor by the alloc rule's definition (never an entry point).
    pub is_ctor: bool,
    /// Named in `lint.toml [callgraph] known-infallible`: the BFS does not
    /// traverse into it and its leaves are trusted to be unreachable.
    pub infallible: bool,
    /// Resolved callees (node indices), sorted by callee qname.
    pub callees: Vec<usize>,
    pub leaves: Vec<Leaf>,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub fns: Vec<FnNode>,
    pub edge_count: usize,
}

/// Raw (unresolved) call shapes collected per fn in the first pass.
enum RawCall {
    /// `f(..)` — a bare path call.
    Free(String),
    /// `module::f(..)` — lowercase qualifier.
    Mod(String, String),
    /// `Type::f(..)` — uppercase qualifier (Self already substituted).
    Assoc(String, String),
    /// `recv.m(..)` with the receiver chain root/field, if simple.
    Method {
        name: String,
        recv_root: Option<String>,
        recv_field: Option<String>,
    },
}

/// Per-fn facts gathered in the first pass (before cross-file resolution).
struct FnDecl {
    node: FnNode,
    owner: Option<String>,
    name: String,
    file_idx: usize,
    is_free: bool,
    /// Declared types in scope: params and `let` ascriptions.
    env: BTreeMap<String, String>,
    calls: Vec<RawCall>,
}

/// Builds the call graph from `(workspace-relative path, source)` pairs.
/// Deterministic: node order follows the given file order, edges are
/// sorted by callee qname.
pub fn build(sources: &[(String, String)], cfg: &LintConfig) -> Graph {
    let mut decls: Vec<FnDecl> = Vec::new();
    // struct name -> field name -> type root, across all files.
    let mut fields: BTreeMap<(String, String), String> = BTreeMap::new();
    // file basename (module name) -> file indices.
    let mut basenames: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for (file_idx, (rel, src)) in sources.iter().enumerate() {
        if let Some(stem) = rel.rsplit('/').next().and_then(|f| f.strip_suffix(".rs")) {
            basenames
                .entry(stem.to_string())
                .or_default()
                .push(file_idx);
        }
        let scanned = scan(src);
        let ast = parse::parse(&scanned.tokens);
        let ctx = FileCtx::new(rel, &scanned.tokens, &ast, cfg);
        let suppressor = Suppressor::new(&scanned);
        let lines: Vec<&str> = src.lines().collect();

        ctx.ast.walk(&mut |item, _| {
            if item.kind == parse::ItemKind::Struct {
                for f in &item.fields {
                    fields.insert((item.name.clone(), f.name.clone()), f.ty_root.clone());
                }
            }
        });

        let panic_sites = rules::panics::sites(&ctx);
        for scope in &ctx.fns {
            if scope.in_test {
                continue;
            }
            let (bs, be) = scope.body;
            let name = scope.item.name.clone();
            let qname = match scope.owner {
                Some(o) => format!("{o}::{name}"),
                None => name.clone(),
            };
            let name_tok = scope.item.name_tok.unwrap_or(scope.item.start);
            let t = &ctx.toks[name_tok];

            let mut leaves = Vec::new();
            for s in &panic_sites {
                if s.tok < bs || s.tok >= be {
                    continue;
                }
                if suppressor.suppressed(ctx.toks, s.tok, &["panic-path", "panic-reachable"]) {
                    continue;
                }
                leaves.push(leaf(&ctx, &lines, s.tok, Family::Panic, s.kind.to_string()));
            }
            for (tok, kind, gated) in rules::alloc::classify_scope(&ctx, scope) {
                if !gated
                    || suppressor.suppressed(
                        ctx.toks,
                        tok,
                        &["alloc-in-datapath", "alloc-reachable"],
                    )
                {
                    continue;
                }
                leaves.push(leaf(&ctx, &lines, tok, Family::Alloc, kind));
            }
            leaves.sort_by(|a, b| (a.line, a.col, &a.kind).cmp(&(b.line, b.col, &b.kind)));

            let mut calls = Vec::new();
            for p in &ctx.paths {
                let first = p.segs[0].0;
                if first < bs || first >= be || p.is_macro || !p.is_call {
                    continue;
                }
                if p.segs.len() == 1 {
                    calls.push(RawCall::Free(p.last().to_string()));
                } else {
                    let qual = &p.segs[p.segs.len() - 2].1;
                    let f = p.last().to_string();
                    let qual = if qual == "Self" {
                        scope.owner.map(str::to_string)
                    } else {
                        Some(qual.clone())
                    };
                    match qual {
                        Some(q) if q.starts_with(char::is_uppercase) => {
                            calls.push(RawCall::Assoc(q, f));
                        }
                        Some(q) => calls.push(RawCall::Mod(q, f)),
                        None => calls.push(RawCall::Free(f)),
                    }
                }
            }
            for m in &ctx.methods {
                if m.tok < bs || m.tok >= be {
                    continue;
                }
                calls.push(RawCall::Method {
                    name: m.name.clone(),
                    recv_root: m.recv_root.clone(),
                    recv_field: m.recv_field.clone(),
                });
            }

            decls.push(FnDecl {
                node: FnNode {
                    file: rel.clone(),
                    qname: qname.clone(),
                    line: t.line,
                    col: t.col,
                    hot: ctx.hot_module,
                    is_ctor: rules::alloc::is_constructor(&ctx, scope),
                    infallible: cfg
                        .known_infallible
                        .iter()
                        .any(|n| n == &qname || n == &name),
                    callees: Vec::new(),
                    leaves,
                },
                owner: scope.owner.map(str::to_string),
                name,
                file_idx,
                is_free: scope.owner.is_none(),
                env: rules::alloc::fn_env(&ctx, scope),
                calls,
            });
        }
    }

    // Resolution indices.
    let mut free_local: BTreeMap<(usize, &str), usize> = BTreeMap::new();
    let mut free_global: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods_global: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, d) in decls.iter().enumerate() {
        if d.is_free {
            free_local.insert((d.file_idx, d.name.as_str()), id);
            free_global.entry(d.name.as_str()).or_default().push(id);
        } else {
            let owner = d.owner.as_deref().unwrap_or_default();
            methods
                .entry((owner, d.name.as_str()))
                .or_default()
                .push(id);
            methods_global.entry(d.name.as_str()).or_default().push(id);
        }
    }
    let unique = |v: Option<&Vec<usize>>| match v {
        Some(v) if v.len() == 1 => v.first().copied(),
        _ => None,
    };

    let mut edge_count = 0usize;
    let mut all_callees: Vec<Vec<usize>> = Vec::with_capacity(decls.len());
    for d in &decls {
        let mut callees = Vec::new();
        for call in &d.calls {
            let target = match call {
                RawCall::Free(f) => free_local
                    .get(&(d.file_idx, f.as_str()))
                    .copied()
                    .or_else(|| unique(free_global.get(f.as_str()))),
                RawCall::Mod(module, f) => basenames
                    .get(module.as_str())
                    .and_then(|files| {
                        let hits: Vec<usize> = files
                            .iter()
                            .filter_map(|&fi| free_local.get(&(fi, f.as_str())).copied())
                            .collect();
                        unique(Some(&hits))
                    })
                    .or_else(|| unique(free_global.get(f.as_str()))),
                RawCall::Assoc(ty, f) => unique(methods.get(&(ty.as_str(), f.as_str()))),
                RawCall::Method {
                    name,
                    recv_root,
                    recv_field,
                } => {
                    let ty = match (recv_root.as_deref(), recv_field.as_deref()) {
                        (Some("self"), None) => d.owner.clone(),
                        (Some("self"), Some(field)) => d
                            .owner
                            .as_ref()
                            .and_then(|o| fields.get(&(o.clone(), field.to_string())).cloned()),
                        (Some(root), None) => d.env.get(root).cloned(),
                        (Some(root), Some(field)) => d
                            .env
                            .get(root)
                            .and_then(|ty| fields.get(&(ty.clone(), field.to_string())).cloned()),
                        _ => None,
                    };
                    ty.and_then(|ty| unique(methods.get(&(ty.as_str(), name.as_str()))))
                        .or_else(|| unique(methods_global.get(name.as_str())))
                }
            };
            if let Some(id) = target {
                callees.push(id);
            }
        }
        callees.sort_by(|&a, &b| {
            (&decls[a].node.qname, &decls[a].node.file)
                .cmp(&(&decls[b].node.qname, &decls[b].node.file))
        });
        callees.dedup();
        edge_count += callees.len();
        all_callees.push(callees);
    }

    let mut fns: Vec<FnNode> = decls.into_iter().map(|d| d.node).collect();
    for (node, callees) in fns.iter_mut().zip(all_callees) {
        node.callees = callees;
    }
    Graph { fns, edge_count }
}

fn leaf(ctx: &FileCtx, lines: &[&str], tok: usize, family: Family, kind: String) -> Leaf {
    let t = &ctx.toks[tok];
    Leaf {
        family,
        kind,
        line: t.line,
        col: t.col,
        text: lines
            .get(t.line - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
    }
}
