//! Library surface of the workspace automation crate.
//!
//! The binary (`cargo xtask …`) is a thin CLI over these modules; they are
//! also exported as a library so the integration tests (notably the lint
//! fixture corpus under `tests/`) can drive the analyzer directly.
//!
//! Layering, bottom to top:
//!
//! * [`tokenize`] — hand-rolled lexer producing spanned tokens + comments.
//! * [`parse`] — recursive-descent parser grouping tokens into items with
//!   bodies, fields, variants and use-trees, plus expression extractors.
//! * [`config`] — `lint.toml` (rule toggles, hot modules, ordered-type
//!   allowlist, trace-enum wiring) with built-in defaults.
//! * [`baseline`] — `lint-baseline.json` load/apply/update: known findings
//!   are suppressed, *new* findings fail the build.
//! * [`callgraph`] — workspace-wide call graph (nodes, resolved edges,
//!   panic/alloc leaves) over the parsed sources.
//! * [`rules`] — the rule implementations over the AST, including the
//!   interprocedural `reachable` pair on top of the call graph.
//! * [`lint`] — the driver: file sweep, suppression comments, baseline
//!   application, and the allocation/callgraph reports.
//! * [`json`] — dependency-free mini JSON reader/writer helpers.
//! * [`trace_report`] — post-mortem summary of `--trace` JSONL logs.

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod json;
pub mod lint;
pub mod parse;
pub mod rules;
pub mod tokenize;
pub mod trace_report;
