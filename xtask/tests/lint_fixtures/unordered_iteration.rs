//@ file: crates/simnet/src/fixture.rs
struct S { slots: FxHashMap<u32, u32> }
impl S {
    fn go(&self) {
        for x in &self.slots {
            drop(x);
        }
    }
}
fn f(m: IndexlessMap, v: Vec<u32>, n: usize) {
    for k in m.keys() {
        drop(k);
    }
    for y in &v {
        drop(y);
    }
    for i in 0..n {
        drop(i);
    }
    for z in helper() {
        drop(z);
    }
}
