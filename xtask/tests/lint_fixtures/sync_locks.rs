//@ file: crates/simnet/src/parsim.rs
// The parallel engine is a lock-free module AND a blessed thread home:
// Mutex/RwLock are banned (sync-locks), while std::thread and the
// channel/barrier toolkit are allowed.
use std::sync::mpsc::channel;
use std::sync::{Barrier, Mutex, OnceLock};

static CACHED: Mutex<u64> = Mutex::new(0);

fn run(k: usize) {
    let lock: std::sync::RwLock<u64> = std::sync::RwLock::new(0);
    let _ = lock.read();
    let barrier = Barrier::new(k);
    let once: OnceLock<u64> = OnceLock::new();
    let (tx, rx) = channel::<u64>();
    std::thread::scope(|s| {
        s.spawn(|| {
            tx.send(1).ok();
            barrier.wait();
        });
        let _ = rx.recv();
        once.set(2).ok();
        barrier.wait();
    });
}
