//@ file: crates/simnet/src/fixture.rs
// FP regression (hash-collections, wall-clock): prose in comments and
// string literals must never produce findings.
/// Unlike a HashMap, iteration order here is stable.
fn f() -> &'static str {
    "uses a HashMap and Instant::now()"
}
/* HashMap inside /* a nested */ block comment */
fn g() -> &'static str {
    r#"panic!("HashMap")"#
}
