//@ file: crates/transport/src/fixture.rs
fn f(payload: u64) -> u64 {
    DATA_WIRE.get() + payload
}
// FP regression: `+` in a trait bound is not arithmetic, even with both
// unit families named in the same signature.
fn g<T: Into<WireBytes> + From<Bytes>>(x: T) -> T {
    x
}
