//@ file: fixtures/trace.rs
fn dropped(r: DropReason) -> Cause {
    match r {
        DropReason::Cap => Cause::A,
        _ => Cause::B,
    }
}
