//@ file: crates/simnet/src/topology.rs
// FP regression: the same allocation-heavy code outside a hot module is
// not a datapath finding (topology construction runs once at setup).
fn build(n: usize) -> Vec<Vec<u32>> {
    let mut adj = Vec::with_capacity(n);
    for _ in 0..n {
        adj.push(Vec::new());
    }
    adj
}
