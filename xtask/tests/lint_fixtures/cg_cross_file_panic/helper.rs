//@ file: crates/simnet/src/helper.rs
// Cold module: the subscript is not flagged by the file-local panic-path
// rule, but it is a leaf for the interprocedural BFS.
pub fn pick(xs: &[u64]) -> u64 {
    xs[0]
}
