//@ file: crates/simnet/src/sim.rs
// Hot-module entry calling into a cold helper that can panic: the
// panic-reachable witness anchors here, at the entry fn.
pub struct Sim;

impl Sim {
    pub fn dispatch(&mut self, xs: &[u64]) -> u64 {
        helper::pick(xs)
    }
}
