//@ file: crates/core/src/fixture.rs
fn f() -> u32 {
    let mut r = rand::thread_rng();
    rand::random()
}
// FP regression: a local fn named `random` is neither a definition-site
// finding nor a call-site one (only `rand::random` is ambient).
fn random() -> u32 { 4 }
fn g() -> u32 { random() }
