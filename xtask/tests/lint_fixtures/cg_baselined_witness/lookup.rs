//@ file: crates/simnet/src/lookup.rs
pub fn fetch(xs: &[u64]) -> u64 {
    xs.first().unwrap().wrapping_add(1)
}
