//@ file: crates/simnet/src/sim.rs
// The unwrap in the helper IS reachable; the directory's baseline.json
// carries the witness chain, so the applied finding set is empty.
pub struct Sim;

impl Sim {
    pub fn port_ready(&mut self, xs: &[u64]) -> u64 {
        lookup::fetch(xs)
    }
}
