//@ file: crates/simnet/src/packet.rs
// Hot-module tightening: subscripts, bare integer `/`, and empty
// `.expect("")` are flagged; `% <nonzero literal>`, `unwrap_or`, and
// float division are pinned as non-findings.
pub fn pick(xs: &[u64], i: usize, n: u64) -> u64 {
    let a = xs[i];
    let b = a / n;
    let c = a % 3;
    let d = xs.first().expect("");
    a + b + c + d
}

pub fn clean(xs: &[u64], ratio: f64) -> f64 {
    let floor = xs.first().copied().unwrap_or(0);
    ratio / 2.0 + floor
}
