//@ file: crates/simnet/src/fixture.rs
fn f(wire_bytes: u64) -> f64 {
    wire_bytes as f64
}
// FP regression: the subscript names a byte quantity but the value being
// cast is the (dimensionless) element — `[...]` is skipped uninspected.
fn g(slots: &[u32], byte_pos: usize) -> u64 {
    slots[byte_pos % 4] as u64
}
