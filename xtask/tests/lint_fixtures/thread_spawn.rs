//@ file: crates/simcore/src/fixture.rs
use std::{thread, time::Instant};
fn f() {
    thread::spawn(|| {});
    mymod::thread::helper();
}
