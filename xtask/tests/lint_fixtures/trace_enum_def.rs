//@ file: fixtures/queue.rs
//@ trace: DropReason fixtures/queue.rs fixtures/trace.rs dropped
pub enum DropReason {
    Cap,
    Red,
}
