//@ file: crates/simnet/src/fixture.rs
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> HashSet<u8> {
    HashSet::new()
}
