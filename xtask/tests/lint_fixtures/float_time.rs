//@ file: crates/transport/src/fixture.rs
fn f(d: TimeDelta) -> f64 {
    d.as_secs_f64() * 2.0
}
// FP regression: *defining* a conversion helper is not a use of float
// time (the token pass flagged the fn's own name).
fn as_secs_f64(x: Seconds) -> f64 {
    x.to_f64()
}
