//@ file: crates/simnet/src/fixture.rs
fn f(x: u8, o: Option<u8>) -> u8 {
    if x > 3 {
        panic!("bad");
    }
    o.unwrap()
}
// FP regression: a *definition* of a fn named `unwrap` (an infallible
// accessor) is not a panicking call.
impl Slot {
    fn unwrap(self) -> Packet {
        self.p
    }
}
