//@ file: crates/simnet/src/fixture.rs
fn f(d: TimeDelta) -> f64 { d.as_secs_f64() } // lint:allow(float-time)
// lint:allow(wall-clock): profiling aid
fn g() { let _ = std::time::Instant::now(); }
fn h() { let _ = std::time::Instant::now(); }
