//@ file: crates/simcore/src/fixture.rs
fn f() -> Instant {
    std::time::Instant::now()
}
#[cfg(test)]
mod tests {
    fn t() -> std::time::Instant { std::time::Instant::now() }
}
