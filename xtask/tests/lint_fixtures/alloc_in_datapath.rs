//@ file: crates/simnet/src/queue.rs
struct Spec { name: String }
#[derive(Clone, Copy)]
struct Stamp(u64);
struct Q { t: Stamp, spec: Spec, buf: Vec<u8> }
impl Q {
    fn new() -> Self { Q { t: Stamp(0), spec: Spec { name: String::new() }, buf: Vec::with_capacity(64) } }
    fn tick(&mut self) {
        let v = Vec::new();
        let label = format!("q{}", 1);
        self.buf = vec![0u8; 4];
        let _ = self.spec.clone();
        let _ = self.t.clone();
        let _ = (v, label);
    }
}
