//@ file: crates/simnet/src/sim.rs
//@ infallible: mask
// The helper subscript would be a witness, but `mask` is declared
// known-infallible, so the BFS never traverses into it: clean.
pub struct Sim;

impl Sim {
    pub fn dispatch(&mut self, xs: &[u64]) -> u64 {
        mix::mask(xs)
    }
}
