//@ file: crates/simnet/src/mix.rs
pub fn mask(xs: &[u64]) -> u64 {
    xs[0]
}
