//@ file: crates/simnet/src/fixture.rs
fn f() -> u64 { 1_538 }
fn g(w: u64) -> u64 { w - 78 }
#[cfg(test)]
mod tests {
    fn helper(wire: u64) -> u64 { wire - 84 }
}
// FP regressions: attribute literals are not code; hex is a bit pattern;
// 1460 (MTU_PAYLOAD) appears legitimately in workload size tables.
#[repr(align(84))]
struct Aligned(u8);
fn h() -> u64 { 0x84 }
fn k() -> u64 { 1460 }
