//@ file: crates/simnet/src/sim.rs
// Hot-module entry reaching an allocation in a cold helper.
pub struct Sim;

impl Sim {
    pub fn arrive(&mut self, n: usize) -> u64 {
        scratch::build(n)
    }
}
