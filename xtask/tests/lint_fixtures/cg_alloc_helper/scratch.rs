//@ file: crates/simnet/src/scratch.rs
// Cold module: the Vec::with_capacity is an alloc leaf for the BFS.
pub fn build(n: usize) -> u64 {
    let v: Vec<u64> = Vec::with_capacity(n);
    v.len() as u64
}
