//! UI-test harness for the lint rules.
//!
//! Each `tests/lint_fixtures/<name>.rs` file is linted as if it lived at
//! the path declared by its `//@ file:` directive (default: a simnet
//! source file, so all rules apply), and the findings are compared
//! against the `<name>.expected` sidecar: one `line:col rule` per line,
//! sorted. An empty sidecar asserts the fixture is clean — that's how the
//! false-positive regressions are pinned.
//!
//! Fixtures with a `//@ trace:` directive instead exercise the cross-file
//! trace-exhaustiveness check: the directive names the enum, its defining
//! fixture path, the emitting fixture path, and the emit fns; *all*
//! fixture files are offered as sources under their declared paths.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use xtask::config::{LintConfig, TraceEnumCfg};
use xtask::lint;
use xtask::rules::trace_ex;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

struct Fixture {
    name: String,
    src: String,
    /// Path the fixture pretends to live at.
    file: String,
    /// `(enum, defined-in, emit-file, emit-fns)` for trace fixtures.
    trace: Option<(String, String, String, Vec<String>)>,
    expected: Vec<String>,
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = fixture_dir();
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_stem()
            .expect("stem")
            .to_string_lossy()
            .into_owned();
        let src = fs::read_to_string(&path).expect("read fixture");
        let mut file = "crates/simnet/src/fixture.rs".to_string();
        let mut trace = None;
        for line in src.lines() {
            let Some(d) = line.strip_prefix("//@ ") else {
                continue;
            };
            if let Some(v) = d.strip_prefix("file:") {
                file = v.trim().to_string();
            } else if let Some(v) = d.strip_prefix("trace:") {
                let parts: Vec<&str> = v.split_whitespace().collect();
                assert_eq!(parts.len(), 4, "{name}: //@ trace: ENUM DEF EMIT FN[,FN]");
                trace = Some((
                    parts[0].to_string(),
                    parts[1].to_string(),
                    parts[2].to_string(),
                    parts[3].split(',').map(str::to_string).collect(),
                ));
            } else {
                panic!("{name}: unknown directive `{line}`");
            }
        }
        let sidecar = path.with_extension("expected");
        let expected = fs::read_to_string(&sidecar)
            .unwrap_or_else(|_| panic!("{name}: missing sidecar {}", sidecar.display()))
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        out.push(Fixture {
            name,
            src,
            file,
            trace,
            expected,
        });
    }
    out
}

fn format_findings(findings: &[lint::Finding]) -> Vec<String> {
    let mut got: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} {}", f.line, f.col, f.rule))
        .collect();
    got.sort();
    got
}

#[test]
fn fixtures_cover_every_rule() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.len() >= 12,
        "expected a corpus, found {}",
        fixtures.len()
    );
    // Every rule must be exercised by at least one expected finding.
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &fixtures {
        for line in &f.expected {
            let rule = line.split_whitespace().nth(1).expect("line:col rule");
            if let Some((name, _)) = lint::RULES.iter().find(|(n, _)| *n == rule) {
                *by_rule.entry(name).or_insert(0) += 1;
            } else {
                panic!("{}: unknown rule `{rule}` in sidecar", f.name);
            }
        }
    }
    let missing: Vec<&str> = lint::RULES
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| !by_rule.contains_key(n))
        .collect();
    assert!(missing.is_empty(), "rules without fixtures: {missing:?}");
    // And at least one clean fixture per corpus (the FP regressions).
    assert!(
        fixtures.iter().any(|f| f.expected.is_empty()),
        "no false-positive regression fixtures"
    );
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let fixtures = load_fixtures();
    let sources: Vec<(String, String)> = fixtures
        .iter()
        .map(|f| (f.file.clone(), f.src.clone()))
        .collect();
    let mut failures = Vec::new();
    for f in &fixtures {
        let got = if let Some((en, def, emit, fns)) = &f.trace {
            let mut cfg = LintConfig {
                trace_enums: vec![TraceEnumCfg {
                    enum_name: en.clone(),
                    defined_in: def.clone(),
                    emit_file: emit.clone(),
                    emit_fns: fns.clone(),
                }],
                ..LintConfig::default()
            };
            cfg.rule_enabled.clear();
            format_findings(&trace_ex::check_sources(&sources, &cfg))
        } else {
            format_findings(&lint::lint_source(&f.file, &f.src))
        };
        let mut want = f.expected.clone();
        want.sort();
        if got != want {
            failures.push(format!(
                "{}: expected\n  {}\ngot\n  {}",
                f.name,
                want.join("\n  "),
                got.join("\n  ")
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}
