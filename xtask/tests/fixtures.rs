//! UI-test harness for the lint rules.
//!
//! Each `tests/lint_fixtures/<name>.rs` file is linted as if it lived at
//! the path declared by its `//@ file:` directive (default: a simnet
//! source file, so all rules apply), and the findings are compared
//! against the `<name>.expected` sidecar: one `line:col rule` per line,
//! sorted. An empty sidecar asserts the fixture is clean — that's how the
//! false-positive regressions are pinned.
//!
//! Fixtures with a `//@ trace:` directive instead exercise the cross-file
//! trace-exhaustiveness check: the directive names the enum, its defining
//! fixture path, the emitting fixture path, and the emit fns; *all*
//! fixture files are offered as sources under their declared paths.
//!
//! A *directory* `tests/lint_fixtures/<name>/` is a multi-file fixture for
//! the interprocedural call-graph rules: every member `.rs` file declares
//! its pretended path with `//@ file:` (so one member can live in a hot
//! module and another outside it), `//@ infallible:` lines extend the
//! `[callgraph] known-infallible` allowlist, and an optional
//! `baseline.json` in the directory is applied before comparison. The
//! sidecar `<name>.expected` sits next to the directory and uses
//! `file:line:col rule` lines (the file disambiguates multi-file anchors).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use xtask::baseline::Baseline;
use xtask::config::{LintConfig, TraceEnumCfg};
use xtask::lint;
use xtask::rules::{reachable, trace_ex};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

struct Fixture {
    name: String,
    src: String,
    /// Path the fixture pretends to live at.
    file: String,
    /// `(enum, defined-in, emit-file, emit-fns)` for trace fixtures.
    trace: Option<(String, String, String, Vec<String>)>,
    expected: Vec<String>,
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = fixture_dir();
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_stem()
            .expect("stem")
            .to_string_lossy()
            .into_owned();
        let src = fs::read_to_string(&path).expect("read fixture");
        let mut file = "crates/simnet/src/fixture.rs".to_string();
        let mut trace = None;
        for line in src.lines() {
            let Some(d) = line.strip_prefix("//@ ") else {
                continue;
            };
            if let Some(v) = d.strip_prefix("file:") {
                file = v.trim().to_string();
            } else if let Some(v) = d.strip_prefix("trace:") {
                let parts: Vec<&str> = v.split_whitespace().collect();
                assert_eq!(parts.len(), 4, "{name}: //@ trace: ENUM DEF EMIT FN[,FN]");
                trace = Some((
                    parts[0].to_string(),
                    parts[1].to_string(),
                    parts[2].to_string(),
                    parts[3].split(',').map(str::to_string).collect(),
                ));
            } else {
                panic!("{name}: unknown directive `{line}`");
            }
        }
        let sidecar = path.with_extension("expected");
        let expected = fs::read_to_string(&sidecar)
            .unwrap_or_else(|_| panic!("{name}: missing sidecar {}", sidecar.display()))
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        out.push(Fixture {
            name,
            src,
            file,
            trace,
            expected,
        });
    }
    out
}

/// One multi-file (directory) fixture for the call-graph rules.
struct DirFixture {
    name: String,
    /// `(declared path, source)` per member, in filename order.
    members: Vec<(String, String)>,
    /// Extra `known-infallible` names from `//@ infallible:` directives.
    infallible: Vec<String>,
    /// Contents of `baseline.json`, if the directory has one.
    baseline: Option<String>,
    expected: Vec<String>,
}

fn load_dir_fixtures() -> Vec<DirFixture> {
    let dir = fixture_dir();
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .expect("dir name")
            .to_string_lossy()
            .into_owned();
        let mut files: Vec<_> = fs::read_dir(&path)
            .expect("fixture subdir")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        files.sort();
        assert!(!files.is_empty(), "{name}: no .rs members");
        let mut members = Vec::new();
        let mut infallible = Vec::new();
        for f in files {
            let src = fs::read_to_string(&f).expect("read member");
            let mut file = None;
            for line in src.lines() {
                let Some(d) = line.strip_prefix("//@ ") else {
                    continue;
                };
                if let Some(v) = d.strip_prefix("file:") {
                    file = Some(v.trim().to_string());
                } else if let Some(v) = d.strip_prefix("infallible:") {
                    infallible.push(v.trim().to_string());
                } else {
                    panic!("{name}: unknown directive `{line}`");
                }
            }
            let file = file.unwrap_or_else(|| {
                panic!("{name}: member {} needs a //@ file: directive", f.display())
            });
            members.push((file, src));
        }
        let baseline = fs::read_to_string(path.join("baseline.json")).ok();
        let sidecar = path.with_extension("expected");
        let expected = fs::read_to_string(&sidecar)
            .unwrap_or_else(|_| panic!("{name}: missing sidecar {}", sidecar.display()))
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        out.push(DirFixture {
            name,
            members,
            infallible,
            baseline,
            expected,
        });
    }
    out
}

fn format_findings(findings: &[lint::Finding]) -> Vec<String> {
    let mut got: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} {}", f.line, f.col, f.rule))
        .collect();
    got.sort();
    got
}

#[test]
fn fixtures_cover_every_rule() {
    let fixtures = load_fixtures();
    let dir_fixtures = load_dir_fixtures();
    assert!(
        fixtures.len() >= 12,
        "expected a corpus, found {}",
        fixtures.len()
    );
    assert!(
        dir_fixtures.len() >= 4,
        "expected a call-graph corpus, found {}",
        dir_fixtures.len()
    );
    // Every rule must be exercised by at least one expected finding; both
    // sidecar formats put the rule in the second whitespace field.
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    let expected_lines = fixtures
        .iter()
        .map(|f| (&f.name, &f.expected))
        .chain(dir_fixtures.iter().map(|f| (&f.name, &f.expected)));
    for (name, expected) in expected_lines {
        for line in expected {
            let rule = line.split_whitespace().nth(1).expect("line:col rule");
            if let Some((rule_name, _)) = lint::RULES.iter().find(|(n, _)| *n == rule) {
                *by_rule.entry(rule_name).or_insert(0) += 1;
            } else {
                panic!("{name}: unknown rule `{rule}` in sidecar");
            }
        }
    }
    let missing: Vec<&str> = lint::RULES
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| !by_rule.contains_key(n))
        .collect();
    assert!(missing.is_empty(), "rules without fixtures: {missing:?}");
    // And at least one clean fixture per corpus (the FP regressions).
    assert!(
        fixtures.iter().any(|f| f.expected.is_empty()),
        "no false-positive regression fixtures"
    );
    assert!(
        dir_fixtures.iter().any(|f| f.expected.is_empty()),
        "no clean call-graph fixture"
    );
}

#[test]
fn dir_fixtures_match_expected_witnesses() {
    let mut failures = Vec::new();
    for f in load_dir_fixtures() {
        let mut cfg = LintConfig::default();
        cfg.known_infallible.extend(f.infallible.iter().cloned());
        let findings = reachable::check_sources(&f.members, &cfg);
        let findings = match &f.baseline {
            Some(src) => {
                Baseline::from_json(src)
                    .unwrap_or_else(|e| panic!("{}: bad baseline.json: {e}", f.name))
                    .apply(findings)
                    .new
            }
            None => findings,
        };
        let mut got: Vec<String> = findings
            .iter()
            .map(|fi| format!("{}:{}:{} {}", fi.file, fi.line, fi.col, fi.rule))
            .collect();
        got.sort();
        let mut want = f.expected.clone();
        want.sort();
        if got != want {
            failures.push(format!(
                "{}: expected\n  {}\ngot\n  {}",
                f.name,
                want.join("\n  "),
                got.join("\n  ")
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let fixtures = load_fixtures();
    let sources: Vec<(String, String)> = fixtures
        .iter()
        .map(|f| (f.file.clone(), f.src.clone()))
        .collect();
    let mut failures = Vec::new();
    for f in &fixtures {
        let got = if let Some((en, def, emit, fns)) = &f.trace {
            let mut cfg = LintConfig {
                trace_enums: vec![TraceEnumCfg {
                    enum_name: en.clone(),
                    defined_in: def.clone(),
                    emit_file: emit.clone(),
                    emit_fns: fns.clone(),
                }],
                ..LintConfig::default()
            };
            cfg.rule_enabled.clear();
            format_findings(&trace_ex::check_sources(&sources, &cfg))
        } else {
            format_findings(&lint::lint_source(&f.file, &f.src))
        };
        let mut want = f.expected.clone();
        want.sort();
        if got != want {
            failures.push(format!(
                "{}: expected\n  {}\ngot\n  {}",
                f.name,
                want.join("\n  "),
                got.join("\n  ")
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}
