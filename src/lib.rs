//! Integration-suite umbrella crate; see the workspace crates for all functionality.
pub use flexpass_simcore as simcore;
