//! Flow generators: Poisson background traffic and incast foreground.

use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::packet::FlowSpec;

use crate::cdf::FlowSizeCdf;

/// Parameters for Poisson background traffic (§6.2: random host pairs,
/// Poisson arrivals, load defined on the core links).
#[derive(Clone, Copy, Debug)]
pub struct BackgroundParams {
    /// Number of hosts.
    pub n_hosts: usize,
    /// Host access link rate.
    pub host_rate: Rate,
    /// Core oversubscription ratio (paper: 3.0 at the ToR level).
    pub oversub: f64,
    /// Target utilization of the core (ToR uplinks), 0..1.
    pub load: f64,
    /// Number of flows to generate.
    pub n_flows: usize,
    /// RNG seed (arrivals, pairs, sizes).
    pub seed: u64,
    /// First flow id to assign.
    pub first_id: u64,
}

impl BackgroundParams {
    /// Mean flow inter-arrival time for this load and workload.
    pub fn mean_interarrival(&self, cdf: &FlowSizeCdf) -> TimeDelta {
        // Aggregate core capacity is host capacity / oversubscription; with
        // uniformly random pairs nearly all traffic crosses the ToR uplinks,
        // so we aim the total offered rate at `load * core_capacity`.
        let core_capacity_bps = self.n_hosts as f64 * self.host_rate.as_bps() as f64 / self.oversub;
        let offered_bps = self.load * core_capacity_bps;
        let mean_flow_bits = cdf.mean() * 8.0;
        let flows_per_sec = offered_bps / mean_flow_bits;
        TimeDelta::from_secs_f64(1.0 / flows_per_sec)
    }
}

/// Generates Poisson background flows over random distinct host pairs.
/// Flow `tag`s are left 0; the experiment layer re-tags them by deployment
/// status.
pub fn background(cdf: &FlowSizeCdf, p: &BackgroundParams) -> Vec<FlowSpec> {
    assert!(p.n_hosts >= 2);
    assert!(p.load > 0.0 && p.load < 1.0, "load must be in (0, 1)");
    let mut rng = SimRng::new(p.seed);
    let mean_ia = p.mean_interarrival(cdf).as_secs_f64();
    let mut t = 0.0f64;
    let mut flows = Vec::with_capacity(p.n_flows);
    for i in 0..p.n_flows {
        t += rng.exponential(mean_ia);
        let src = rng.index(p.n_hosts);
        let mut dst = rng.index(p.n_hosts - 1);
        if dst >= src {
            dst += 1;
        }
        flows.push(FlowSpec {
            id: p.first_id + i as u64,
            src,
            dst,
            size: Bytes::new(cdf.sample(&mut rng)),
            start: Time::ZERO + TimeDelta::from_secs_f64(t),
            tag: 0,
            fg: false,
        });
    }
    flows
}

/// One synchronized incast: `senders` each send `resp_bytes` to `receiver`
/// at `at` (§6.1 incast microbenchmark, Figure 8).
pub fn incast(
    senders: &[usize],
    receiver: usize,
    resp_bytes: u64,
    at: Time,
    first_id: u64,
) -> Vec<FlowSpec> {
    senders
        .iter()
        .enumerate()
        .map(|(i, &src)| {
            assert_ne!(src, receiver);
            FlowSpec {
                id: first_id + i as u64,
                src,
                dst: receiver,
                size: Bytes::new(resp_bytes),
                start: at,
                tag: 0,
                fg: true,
            }
        })
        .collect()
}

/// Parameters for the mixed-traffic foreground generator (§6.2): Poisson
/// incast events; per event a random receiver is chosen and each of
/// `fanout` random other hosts sends `flows_per_sender` flows of
/// `resp_bytes`.
#[derive(Clone, Copy, Debug)]
pub struct ForegroundParams {
    /// Number of hosts.
    pub n_hosts: usize,
    /// Hosts sending per event. The paper uses *all* other hosts; reduced
    /// scales shrink this with the rest of the workload.
    pub fanout: usize,
    /// Flows per sender per event (paper: 4).
    pub flows_per_sender: usize,
    /// Bytes per flow (paper: 8 kB).
    pub resp_bytes: u64,
    /// Target foreground volume as bytes per second.
    pub volume_bps: f64,
    /// Number of events.
    pub n_events: usize,
    /// RNG seed.
    pub seed: u64,
    /// First flow id.
    pub first_id: u64,
}

/// Generates Poisson-arriving incast events totalling roughly
/// `volume_bps` of offered foreground load.
pub fn foreground_incast(p: &ForegroundParams) -> Vec<FlowSpec> {
    assert!(p.fanout < p.n_hosts);
    let mut rng = SimRng::new(p.seed);
    let event_bytes = (p.fanout * p.flows_per_sender) as f64 * p.resp_bytes as f64;
    let events_per_sec = p.volume_bps / 8.0 / event_bytes;
    let mean_ia = 1.0 / events_per_sec;
    let mut t = 0.0f64;
    let mut flows = Vec::new();
    let mut id = p.first_id;
    for _ in 0..p.n_events {
        t += rng.exponential(mean_ia);
        let receiver = rng.index(p.n_hosts);
        let mut chosen = 0;
        let mut tried = std::collections::HashSet::new();
        while chosen < p.fanout {
            let s = rng.index(p.n_hosts);
            if s == receiver || !tried.insert(s) {
                continue;
            }
            chosen += 1;
            for _ in 0..p.flows_per_sender {
                flows.push(FlowSpec {
                    id,
                    src: s,
                    dst: receiver,
                    size: Bytes::new(p.resp_bytes),
                    start: Time::ZERO + TimeDelta::from_secs_f64(t),
                    tag: 0,
                    fg: true,
                });
                id += 1;
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n_flows: usize, load: f64) -> BackgroundParams {
        BackgroundParams {
            n_hosts: 192,
            host_rate: Rate::from_gbps(40),
            oversub: 3.0,
            load,
            n_flows,
            seed: 42,
            first_id: 0,
        }
    }

    #[test]
    fn background_offered_load_matches_target() {
        let cdf = FlowSizeCdf::web_search();
        let p = params(20_000, 0.5);
        let flows = background(&cdf, &p);
        assert_eq!(flows.len(), 20_000);
        let span = flows.last().unwrap().start.as_secs_f64();
        let bytes: u64 = flows.iter().map(|f| f.size.get()).sum();
        let offered_bps = bytes as f64 * 8.0 / span;
        let core_cap = 192.0 * 40e9 / 3.0;
        let load = offered_bps / core_cap;
        assert!((load - 0.5).abs() < 0.05, "offered core load {load}");
    }

    #[test]
    fn background_pairs_are_distinct_and_in_range() {
        let cdf = FlowSizeCdf::hadoop();
        let flows = background(&cdf, &params(5_000, 0.3));
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src < 192 && f.dst < 192);
            assert!(f.size.get() >= 1);
        }
        // Arrivals are sorted by construction.
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn background_deterministic_by_seed() {
        let cdf = FlowSizeCdf::web_search();
        let a = background(&cdf, &params(100, 0.5));
        let b = background(&cdf, &params(100, 0.5));
        assert_eq!(a, b);
        let mut p2 = params(100, 0.5);
        p2.seed = 43;
        let c = background(&cdf, &p2);
        assert_ne!(a, c);
    }

    #[test]
    fn incast_builds_fanin() {
        let senders: Vec<usize> = (0..8).collect();
        let flows = incast(&senders, 8, 64_000, Time::from_millis(1), 100);
        assert_eq!(flows.len(), 8);
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.dst, 8);
            assert_eq!(f.size.get(), 64_000);
            assert_eq!(f.id, 100 + i as u64);
            assert!(f.fg);
            assert_eq!(f.start, Time::from_millis(1));
        }
    }

    #[test]
    fn foreground_volume_close_to_target() {
        let p = ForegroundParams {
            n_hosts: 48,
            fanout: 47,
            flows_per_sender: 4,
            resp_bytes: 8_000,
            volume_bps: 10e9,
            n_events: 200,
            seed: 9,
            first_id: 0,
        };
        let flows = foreground_incast(&p);
        assert_eq!(flows.len(), 200 * 47 * 4);
        let span = flows.last().unwrap().start.as_secs_f64();
        let bytes: u64 = flows.iter().map(|f| f.size.get()).sum();
        let rate = bytes as f64 * 8.0 / span;
        assert!((rate - 10e9).abs() / 10e9 < 0.25, "foreground rate {rate}");
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.fg);
        }
    }
}
