//! Workload generation: empirical flow-size distributions, Poisson
//! background traffic, and incast foreground traffic (§6 benchmarks).

pub mod cdf;
pub mod generate;
pub mod trace;

pub use cdf::FlowSizeCdf;
pub use generate::{background, foreground_incast, incast, BackgroundParams, ForegroundParams};
pub use trace::{parse_trace, render_trace, TraceError};
