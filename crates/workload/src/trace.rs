//! Trace-driven workloads: load flows from a CSV file so users can replay
//! their own traffic against any scheme.
//!
//! Format (header optional, `#` comments ignored):
//!
//! ```csv
//! src,dst,size_bytes,start_us
//! 0,5,14600,0
//! 3,7,1000000,125.5
//! ```

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::packet::FlowSpec;

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Line number in the input.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

/// Parses a flow trace. Each data row is `src,dst,size_bytes,start_us`;
/// flow ids are assigned sequentially from `first_id`; tags are 0 (the
/// scheme layer re-tags by deployment).
///
/// # Examples
///
/// ```
/// use flexpass_workload::trace::parse_trace;
///
/// let flows = parse_trace("src,dst,size_bytes,start_us\n0,1,1460,0\n1,0,2920,10\n", 0).unwrap();
/// assert_eq!(flows.len(), 2);
/// assert_eq!(flows[1].size.get(), 2920);
/// assert_eq!(flows[1].start.as_micros_f64(), 10.0);
/// ```
pub fn parse_trace(text: &str, first_id: u64) -> Result<Vec<FlowSpec>, TraceError> {
    let mut flows = Vec::new();
    let mut id = first_id;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if i == 0 && line.starts_with("src") {
            continue; // Header.
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != 4 {
            return Err(TraceError {
                line: lineno,
                reason: format!("expected 4 columns, found {}", cells.len()),
            });
        }
        let field = |idx: usize, name: &str| -> Result<f64, TraceError> {
            cells[idx].parse::<f64>().map_err(|_| TraceError {
                line: lineno,
                reason: format!("bad {name}: {:?}", cells[idx]),
            })
        };
        let src = field(0, "src")? as usize;
        let dst = field(1, "dst")? as usize;
        let size = field(2, "size_bytes")?;
        let start_us = field(3, "start_us")?;
        if src == dst {
            return Err(TraceError {
                line: lineno,
                reason: "src == dst".into(),
            });
        }
        if size < 1.0 {
            return Err(TraceError {
                line: lineno,
                reason: format!("size must be >= 1, found {size}"),
            });
        }
        if start_us < 0.0 || !start_us.is_finite() {
            return Err(TraceError {
                line: lineno,
                reason: format!("bad start time {start_us}"),
            });
        }
        flows.push(FlowSpec {
            id,
            src,
            dst,
            size: Bytes::from_f64(size),
            start: Time::ZERO + TimeDelta::from_secs_f64(start_us * 1e-6),
            tag: 0,
            fg: false,
        });
        id += 1;
    }
    Ok(flows)
}

/// Renders flows back to the trace format (inverse of [`parse_trace`]).
pub fn render_trace(flows: &[FlowSpec]) -> String {
    let mut out = String::from("src,dst,size_bytes,start_us\n");
    for f in flows {
        out.push_str(&format!(
            "{},{},{},{}\n",
            f.src,
            f.dst,
            f.size.get(),
            f.start.as_micros_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_trace() {
        let t = "src,dst,size_bytes,start_us\n0,1,1460,0\n2,3,5000,12.5\n";
        let flows = parse_trace(t, 100).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].id, 100);
        assert_eq!(flows[1].id, 101);
        assert_eq!(flows[1].src, 2);
        assert_eq!(flows[1].start.as_nanos(), 12_500);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let t = "# my trace\n\n0,1,100,0\n# tail comment\n1,0,200,5\n";
        let flows = parse_trace(t, 0).unwrap();
        assert_eq!(flows.len(), 2);
    }

    #[test]
    fn rejects_self_flows() {
        let err = parse_trace("3,3,100,0\n", 0).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("src == dst"));
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_trace("1,2,3\n", 0).is_err());
        assert!(parse_trace("a,2,3,4\n", 0).is_err());
        assert!(parse_trace("1,2,0,4\n", 0).is_err());
        assert!(parse_trace("1,2,100,-5\n", 0).is_err());
    }

    #[test]
    fn round_trips() {
        let t = "src,dst,size_bytes,start_us\n0,1,1460,0\n2,3,5000,12.5\n";
        let flows = parse_trace(t, 0).unwrap();
        let rendered = render_trace(&flows);
        let again = parse_trace(&rendered, 0).unwrap();
        assert_eq!(flows, again);
    }

    #[test]
    fn error_displays_line() {
        let err = parse_trace("0,1,100,0\nbad row\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        let msg = err.to_string();
        assert!(msg.contains("line 2"));
    }
}
