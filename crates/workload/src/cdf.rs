//! Empirical flow-size distributions.
//!
//! Piecewise-linear approximations of the published CDFs the paper
//! evaluates on: web search [Alizadeh 2010], data mining [Greenberg 2009],
//! and the Facebook cache-follower and Hadoop workloads [Roy 2015]. Exact
//! point values are reconstructions of the published curves (the originals
//! ship only as plots or ns-2 inputs); the shapes — small-flow mass and
//! heavy tails — are what the reproduction depends on.

use flexpass_simcore::rng::SimRng;

/// A flow-size distribution given as CDF points `(bytes, probability)`.
#[derive(Clone, Debug)]
pub struct FlowSizeCdf {
    name: &'static str,
    points: Vec<(f64, f64)>,
}

impl FlowSizeCdf {
    /// Builds a distribution from CDF points. Points must be strictly
    /// increasing in bytes, non-decreasing in probability, and end at 1.0.
    ///
    /// # Panics
    ///
    /// Panics if the points are malformed.
    pub fn new(name: &'static str, points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert!(points[0].1 >= 0.0);
        assert!(
            (points.last().expect("non-empty").1 - 1.0).abs() < 1e-9,
            "CDF must end at 1"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "bytes must increase: {w:?}");
            assert!(w[0].1 <= w[1].1, "cdf must not decrease: {w:?}");
        }
        FlowSizeCdf { name, points }
    }

    /// The distribution's name (used in output labels).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Samples one flow size in bytes (inverse-transform with linear
    /// interpolation between points).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        self.quantile(u)
    }

    /// The `u`-quantile of the distribution.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        if u <= self.points[0].1 {
            return self.points[0].0.max(1.0) as u64;
        }
        for w in self.points.windows(2) {
            let (x0, c0) = w[0];
            let (x1, c1) = w[1];
            if u <= c1 {
                if c1 <= c0 {
                    return x1 as u64;
                }
                let f = (u - c0) / (c1 - c0);
                return (x0 + f * (x1 - x0)).max(1.0) as u64;
            }
        }
        self.points.last().expect("non-empty").0 as u64
    }

    /// Analytic mean of the piecewise-linear distribution, in bytes.
    pub fn mean(&self) -> f64 {
        let mut m = self.points[0].0 * self.points[0].1;
        for w in self.points.windows(2) {
            let (x0, c0) = w[0];
            let (x1, c1) = w[1];
            m += (c1 - c0) * (x0 + x1) / 2.0;
        }
        m
    }

    /// Returns a copy truncated at `max_bytes` (tail mass collapses onto
    /// the cap). Used to keep the heavy-tailed data-mining workload
    /// simulable at reduced scale; documented in DESIGN.md.
    pub fn truncate(&self, max_bytes: f64) -> FlowSizeCdf {
        let mut pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .copied()
            .filter(|&(x, _)| x < max_bytes)
            .collect();
        let last_c = pts.last().map_or(0.0, |p| p.1);
        if last_c < 1.0 {
            pts.push((max_bytes, 1.0));
        }
        FlowSizeCdf::new(self.name, pts)
    }

    /// Web search [Alizadeh 2010]: the paper's primary workload. Mix of
    /// small queries and multi-MB responses; mean ~1.6 MB.
    pub fn web_search() -> Self {
        FlowSizeCdf::new(
            "websearch",
            vec![
                (5_000.0, 0.0),
                (10_000.0, 0.15),
                (20_000.0, 0.20),
                (30_000.0, 0.30),
                (50_000.0, 0.40),
                (80_000.0, 0.53),
                (200_000.0, 0.60),
                (1_000_000.0, 0.70),
                (2_000_000.0, 0.80),
                (5_000_000.0, 0.90),
                (10_000_000.0, 0.97),
                (30_000_000.0, 1.0),
            ],
        )
    }

    /// Data mining [Greenberg 2009, VL2]: extremely heavy tail — most
    /// flows are a few hundred bytes, a tiny fraction reach ~1 GB.
    pub fn data_mining() -> Self {
        FlowSizeCdf::new(
            "datamining",
            vec![
                (100.0, 0.0),
                (180.0, 0.10),
                (250.0, 0.20),
                (560.0, 0.30),
                (900.0, 0.40),
                (1_100.0, 0.50),
                (1_870.0, 0.60),
                (3_160.0, 0.70),
                (10_000.0, 0.80),
                (400_000.0, 0.90),
                (3_160_000.0, 0.95),
                (100_000_000.0, 0.98),
                (1_000_000_000.0, 1.0),
            ],
        )
    }

    /// Cache follower [Roy 2015]: Facebook cache tier; mostly sub-2 kB
    /// objects with a moderate tail.
    pub fn cache_follower() -> Self {
        FlowSizeCdf::new(
            "cachefollower",
            vec![
                (65.0, 0.0),
                (150.0, 0.05),
                (300.0, 0.20),
                (575.0, 0.50),
                (1_450.0, 0.70),
                (2_100.0, 0.80),
                (10_000.0, 0.90),
                (100_000.0, 0.96),
                (1_000_000.0, 0.99),
                (10_000_000.0, 1.0),
            ],
        )
    }

    /// Hadoop [Roy 2015]: Facebook Hadoop tier; dominated by small RPCs.
    pub fn hadoop() -> Self {
        FlowSizeCdf::new(
            "hadoop",
            vec![
                (116.0, 0.0),
                (200.0, 0.10),
                (300.0, 0.30),
                (500.0, 0.50),
                (1_000.0, 0.70),
                (2_000.0, 0.80),
                (10_000.0, 0.90),
                (100_000.0, 0.97),
                (1_000_000.0, 0.99),
                (10_000_000.0, 1.0),
            ],
        )
    }

    /// All four workloads, in the appendix's presentation order.
    pub fn all() -> Vec<FlowSizeCdf> {
        vec![
            Self::cache_follower(),
            Self::web_search(),
            Self::data_mining(),
            Self::hadoop(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let c = FlowSizeCdf::new("t", vec![(100.0, 0.0), (200.0, 0.5), (1000.0, 1.0)]);
        assert_eq!(c.quantile(0.0), 100);
        assert_eq!(c.quantile(0.25), 150);
        assert_eq!(c.quantile(0.5), 200);
        assert_eq!(c.quantile(0.75), 600);
        assert_eq!(c.quantile(1.0), 1000);
    }

    #[test]
    fn mean_matches_hand_calculation() {
        let c = FlowSizeCdf::new("t", vec![(100.0, 0.0), (200.0, 0.5), (1000.0, 1.0)]);
        // 0.5*150 + 0.5*600 = 375.
        assert!((c.mean() - 375.0).abs() < 1e-9);
    }

    #[test]
    fn sample_mean_converges() {
        let c = FlowSizeCdf::web_search();
        let mut rng = SimRng::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| c.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let expect = c.mean();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "sampled {mean}, analytic {expect}"
        );
    }

    #[test]
    fn web_search_mean_is_megabytes() {
        let m = FlowSizeCdf::web_search().mean();
        assert!(m > 1e6 && m < 3e6, "web search mean {m}");
    }

    #[test]
    fn data_mining_is_heavy_tailed() {
        let c = FlowSizeCdf::data_mining();
        // Median tiny, p99 huge.
        assert!(c.quantile(0.5) < 2_000);
        assert!(c.quantile(0.99) > 10_000_000);
    }

    #[test]
    fn hadoop_is_small_flow_dominated() {
        let c = FlowSizeCdf::hadoop();
        assert!(c.quantile(0.7) <= 1_000);
        assert!(c.mean() < 100_000.0);
    }

    #[test]
    fn truncate_caps_tail() {
        let c = FlowSizeCdf::data_mining().truncate(30_000_000.0);
        assert_eq!(c.quantile(1.0), 30_000_000);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(c.sample(&mut rng) <= 30_000_000);
        }
        // Small-flow region unchanged.
        assert_eq!(c.quantile(0.5), FlowSizeCdf::data_mining().quantile(0.5));
    }

    #[test]
    fn all_distributions_valid() {
        for c in FlowSizeCdf::all() {
            assert!(c.mean() > 0.0);
            assert!(c.quantile(1.0) >= c.quantile(0.0));
        }
    }

    #[test]
    #[should_panic(expected = "CDF must end at 1")]
    fn rejects_incomplete_cdf() {
        FlowSizeCdf::new("bad", vec![(1.0, 0.0), (2.0, 0.9)]);
    }
}
