//! Counting global allocator (the `alloc-count` feature).
//!
//! Wraps the system allocator with relaxed atomic counters so a bench can
//! measure *allocations per simulated event* over a window: snapshot
//! [`counts`] before and after and divide the delta by the events
//! processed. This is the dynamic complement of the static
//! `alloc-in-datapath` lint — the lint finds allocation *sites* in the hot
//! modules, the counter proves the steady-state datapath actually stays
//! (near-)allocation-free at runtime, including everything the lint can't
//! see (transport endpoints, BTreeMap node splits, trace sinks).
//!
//! The counters deliberately use `Relaxed` ordering: the bench reads them
//! from the same thread that allocates, and cross-thread skew of a few
//! counts is far below the gate's tolerance.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` that counts calls into the system allocator.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: defers to `System` for every operation; the counters are plain
// atomics and cannot affect allocation correctness.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one allocator round-trip, not an alloc+dealloc pair.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A snapshot of the counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Allocator acquisitions (alloc + realloc calls).
    pub allocs: u64,
    /// Deallocations.
    pub deallocs: u64,
    /// Bytes requested (net growth for reallocs).
    pub bytes: u64,
}

/// Reads the current counter values.
pub fn counts() -> Counts {
    Counts {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let before = counts();
        let v: Vec<u64> = (0..64).collect();
        let after = counts();
        drop(v);
        // The counters only move if this allocator is actually installed
        // (the test binary may not register it); monotonicity must hold
        // either way.
        assert!(after.allocs >= before.allocs);
        assert!(after.bytes >= before.bytes);
    }
}
