//! Standalone substrate benchmark runner: times the shared calendar
//! workloads (`flexpass_bench`) on both the timing-wheel and the legacy
//! binary-heap backend, plus the end-to-end warm-datapath workload
//! (8-host FlexPass star), the partitioned-engine multipod workload, and
//! the streaming-recorder scale point (multi-pod Clos run to completion
//! with bounded metrics memory), and emits a machine-readable JSON
//! report (events/sec, ns/event, wheel-over-heap speedups, peak RSS,
//! datapath allocs/event under `--alloc-count`).
//!
//! Invoked as `cargo xtask bench [--smoke] [--out PATH]`; the committed
//! `BENCH_substrate.json` at the workspace root is this program's output
//! on the reference machine. `--smoke` runs a fast, CI-sized variant that
//! checks the wheel does not regress behind the heap without asserting the
//! full speedup target.
//!
//! This is the one place (besides the experiment orchestrator) where
//! wall-clock time is legitimate: the whole point is to measure real
//! execution speed. Virtual time inside the workloads is untouched.

use std::time::Instant;

use flexpass_bench::{timer_heavy_workload, uniform_workload, Backend};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static COUNTING_ALLOC: flexpass_bench::alloc_counter::CountingAlloc =
    flexpass_bench::alloc_counter::CountingAlloc::new();

/// Virtual-time window for the warm-datapath measurements: warm-up end and
/// measurement end, in simulated microseconds. Start-up (flow arrival,
/// endpoint boxing, buffer growth to working size) is excluded on purpose —
/// the datapath claims are about the steady state.
const DATAPATH_WARM_US: u64 = 2_000;
const DATAPATH_END_US: u64 = 6_000;

/// Hosts in the datapath star and per-flow bytes (sized so no flow
/// completes inside the measured window).
const DATAPATH_HOSTS: usize = 8;
const DATAPATH_FLOW_BYTES: u64 = 50_000_000;

/// End-to-end datapath throughput: run the 8-host FlexPass star past
/// warm-up, then time a fixed virtual window and report events/sec over
/// wall-clock. Unlike the calendar microbenchmarks this exercises the full
/// stack — arena, intrusive queues, port schedulers, endpoints, timers.
fn measure_datapath_rate(iters: u32) -> (f64, u64) {
    use flexpass_simcore::time::Time;

    let window = || {
        let mut sim = flexpass_bench::datapath_sim(DATAPATH_HOSTS, DATAPATH_FLOW_BYTES);
        sim.run_until(Time::from_micros(DATAPATH_WARM_US));
        let warm = sim.events_processed();
        let start = Instant::now();
        sim.run_until(Time::from_micros(DATAPATH_END_US));
        let ns = start.elapsed().as_nanos();
        (sim.events_processed() - warm, ns)
    };
    let (warm_events, _) = window();
    assert!(warm_events > 0, "empty measurement window");
    let mut events = 0u64;
    let mut ns_total = 0u128;
    for _ in 0..iters {
        let (e, ns) = window();
        events += e;
        ns_total += ns;
    }
    (
        events as f64 * 1e9 / ns_total as f64,
        events / u64::from(iters),
    )
}

/// Virtual-time window for the multipod (partitioned-engine) workload:
/// 64-host two-pod Clos, long FlexPass flows, measured past warm-up.
const MULTIPOD_WARM_US: u64 = 500;
const MULTIPOD_END_US: u64 = 1_500;

/// One multipod measurement at a given domain count: events/sec over the
/// measured virtual window, the window's (serial-comparable) event count,
/// and the per-domain raw event split (empty for the serial engine).
fn measure_multipod(domains: usize, iters: u32) -> (f64, u64, Vec<u64>) {
    use flexpass_simcore::time::Time;

    let window = |record: bool| -> (u64, u128, Vec<u64>) {
        if domains <= 1 {
            let mut sim = flexpass_bench::multipod_sim();
            sim.run_until(Time::from_micros(MULTIPOD_WARM_US));
            let warm = sim.events_processed();
            let start = Instant::now();
            sim.run_until(Time::from_micros(MULTIPOD_END_US));
            (
                sim.events_processed() - warm,
                start.elapsed().as_nanos(),
                Vec::new(),
            )
        } else {
            let mut sim = flexpass_bench::multipod_par_sim(domains);
            sim.run_until(Time::from_micros(MULTIPOD_WARM_US));
            let warm = sim.events_processed();
            let warm_per: Vec<u64> = sim.events_per_domain();
            let start = Instant::now();
            sim.run_until(Time::from_micros(MULTIPOD_END_US));
            let ns = start.elapsed().as_nanos();
            let per = if record {
                sim.events_per_domain()
                    .iter()
                    .zip(&warm_per)
                    .map(|(a, w)| a - w)
                    .collect()
            } else {
                Vec::new()
            };
            (sim.events_processed() - warm, ns, per)
        }
    };
    let (warm_events, _, _) = window(false);
    assert!(warm_events > 0, "empty multipod measurement window");
    let mut events = 0u64;
    let mut ns_total = 0u128;
    let mut per_domain = Vec::new();
    for it in 0..iters {
        let (e, ns, per) = window(it == 0);
        events += e;
        ns_total += ns;
        if it == 0 {
            per_domain = per;
        }
    }
    (
        events as f64 * 1e9 / ns_total as f64,
        events / u64::from(iters),
        per_domain,
    )
}

/// Virtual-time warm-up for the scale (streaming-recorder) workload:
/// flow arrivals, endpoint construction, and arena ramp-up happen in the
/// first simulated moments; growth after this point means the
/// preallocation hints were short. The smoke point is much shorter in
/// virtual time, so its warm-up is too.
const SCALE_WARM_US: u64 = 500;
const SCALE_WARM_SMOKE_US: u64 = 100;

/// Committed peak-RSS ceiling (MiB) for the scale point, per mode. The
/// full point drives the 10,240-host fabric; the ceiling is what the
/// streaming recorder exists to guarantee — O(live flows) metrics memory
/// on top of the fixed fabric state. Values carry ~2x headroom over the
/// reference-machine measurement.
const SCALE_RSS_CEILING_MB: u64 = 1024;
const SCALE_RSS_CEILING_SMOKE_MB: u64 = 512;

/// One scale measurement: the result of driving a multi-pod Clos with
/// the streaming bounded-memory recorder to completion.
struct ScaleReport {
    hosts: usize,
    flows: usize,
    window_events: u64,
    events_per_sec: f64,
    /// Peak process RSS in MiB (`None` where /proc is unavailable).
    peak_rss_mb: Option<u64>,
    /// Arena growths observed after the warm-up window — must be zero.
    grows_post_warmup: u64,
}

/// Runs the scale scenario's own simulation (same builder as `--fig
/// scale`) with a streaming recorder: warm past arrival ramp-up, time
/// the run to completion, and capture post-warm-up arena growth plus
/// peak process RSS. Asserts the streaming recorder's memory contract —
/// zero retained per-flow samples and zero live entries at the end.
fn measure_scale(smoke: bool) -> ScaleReport {
    use flexpass_experiments::scale::{build_point, ScaleSpec};
    use flexpass_metrics::Recorder;
    use flexpass_simcore::time::{Time, TimeDelta};
    use flexpass_simnet::sim::Sim;

    // Smoke stays CI-sized (two pods); full drives the 10k-host fabric.
    // The size cap bounds the run length, not the memory claim.
    let spec = if smoke {
        ScaleSpec {
            hosts: 640,
            n_flows: 1_000,
            size_cap: 50_000.0,
            load: 0.1,
            seed: 1,
        }
    } else {
        ScaleSpec {
            hosts: 10_240,
            n_flows: 10_000,
            size_cap: 100_000.0,
            load: 0.1,
            seed: 1,
        }
    };
    let (topo, factory, flows) = build_point(&spec);
    let hosts = topo.hosts.len();
    let mut sim =
        Sim::with_flow_capacity(topo, factory, Recorder::new().with_streaming(), flows.len());
    for fl in &flows {
        sim.schedule_flow(*fl);
    }
    let warm_us = if smoke {
        SCALE_WARM_SMOKE_US
    } else {
        SCALE_WARM_US
    };
    sim.run_until(Time::from_micros(warm_us));
    let warm_events = sim.events_processed();
    let grows_warm = sim.arena_stats().3;
    let start = Instant::now();
    sim.run_to_completion(TimeDelta::millis(20));
    let ns = start.elapsed().as_nanos();
    let window_events = sim.events_processed() - warm_events;
    assert!(window_events > 0, "empty scale measurement window");
    let grows_post_warmup = sim.arena_stats().3 - grows_warm;
    let rec = &sim.observer;
    assert!(rec.completed() > 0, "scale point completed no flows");
    assert_eq!(
        rec.retained_samples(),
        0,
        "streaming recorder retained per-flow samples"
    );
    assert_eq!(rec.live_flows(), 0, "live flows left after completion");
    ScaleReport {
        hosts,
        flows: rec.completed(),
        window_events,
        events_per_sec: window_events as f64 * 1e9 / ns as f64,
        peak_rss_mb: flexpass_simcore::mem::peak_rss_bytes().map(|b| b / (1024 * 1024)),
        grows_post_warmup,
    }
}

/// Steady-state datapath allocation measurement (`alloc-count` feature):
/// warm the full-stack FlexPass workload past start-up, then count
/// allocator acquisitions across a measured window and divide by the
/// events processed. Start-up (flow arrival, endpoint boxing, buffer
/// growth to working size) is excluded on purpose — the datapath claim is
/// about the steady state, where preallocated structures are reused.
#[cfg(feature = "alloc-count")]
fn measure_datapath_allocs() -> (f64, u64, u64) {
    use flexpass_bench::alloc_counter;
    use flexpass_simcore::time::Time;

    let mut sim = flexpass_bench::datapath_sim(DATAPATH_HOSTS, DATAPATH_FLOW_BYTES);
    sim.run_until(Time::from_micros(DATAPATH_WARM_US));
    let warm_events = sim.events_processed();
    let before = alloc_counter::counts();
    sim.run_until(Time::from_micros(DATAPATH_END_US));
    let after = alloc_counter::counts();
    let measured_events = sim.events_processed() - warm_events;
    assert!(measured_events > 0, "empty measurement window");
    let per_event = (after.allocs - before.allocs) as f64 / measured_events as f64;
    (per_event, warm_events, measured_events)
}

/// One timed measurement of a workload on a backend.
struct Measurement {
    workload: &'static str,
    backend: Backend,
    events: u64,
    iters: u32,
    ns_total: u128,
}

impl Measurement {
    fn ns_per_event(&self) -> f64 {
        self.ns_total as f64 / (self.events as f64 * f64::from(self.iters))
    }

    fn events_per_sec(&self) -> f64 {
        1e9 / self.ns_per_event()
    }
}

/// Times `f` for `iters` iterations after one warm-up run. `events` is the
/// per-iteration event count the workload processes (scheduled entries,
/// including the ones later cancelled — the calendar paid for them).
fn measure(
    workload: &'static str,
    backend: Backend,
    events: u64,
    iters: u32,
    f: impl Fn() -> u64,
) -> Measurement {
    let warmup = f();
    let start = Instant::now();
    let mut check = 0u64;
    for _ in 0..iters {
        check = f();
    }
    let ns_total = start.elapsed().as_nanos();
    assert_eq!(check, warmup, "workload is not deterministic");
    Measurement {
        workload,
        backend,
        events,
        iters,
        ns_total,
    }
}

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut gate_alloc: Option<f64> = None;
    let mut gate_multipod: Option<f64> = None;
    let mut gate_scale_rss: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(args.next().expect("--out requires a path")),
            "--gate-alloc" => {
                let v = args.next().expect("--gate-alloc requires a number");
                gate_alloc = Some(v.parse().expect("--gate-alloc requires a number"));
            }
            "--gate-multipod" => {
                let v = args.next().expect("--gate-multipod requires a number");
                gate_multipod = Some(v.parse().expect("--gate-multipod requires a number"));
            }
            "--gate-scale-rss" => {
                let v = args.next().expect("--gate-scale-rss requires a MiB count");
                gate_scale_rss = Some(v.parse().expect("--gate-scale-rss requires a MiB count"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: substrate_bench [--smoke] [--out PATH] [--gate-alloc N] \
                     [--gate-multipod EPS] [--gate-scale-rss MB]"
                );
                std::process::exit(2);
            }
        }
    }
    // Smoke keeps the full workload size (the wheel-vs-heap ratio shifts
    // at small n, where per-queue setup and sparse slot occupancy dominate)
    // and just cuts the iteration count.
    let (n, iters) = if smoke { (100_000, 3) } else { (100_000, 20) };

    let mut results = Vec::new();
    for backend in [Backend::Wheel, Backend::Heap] {
        results.push(measure("uniform", backend, n, iters, || {
            uniform_workload(backend, n)
        }));
        // Each timer-heavy step schedules two entries (hot event + RTO).
        results.push(measure("timer_heavy", backend, 2 * n, iters, || {
            timer_heavy_workload(backend, n)
        }));
    }

    let speedup = |workload: &str| -> f64 {
        let rate = |b: Backend| {
            results
                .iter()
                .find(|m| m.workload == workload && m.backend == b)
                .expect("both backends measured")
                .events_per_sec()
        };
        rate(Backend::Wheel) / rate(Backend::Heap)
    };
    let uniform_speedup = speedup("uniform");
    let timer_speedup = speedup("timer_heavy");

    // End-to-end datapath throughput (full stack, not just the calendar).
    let (datapath_eps, datapath_events) = measure_datapath_rate(if smoke { 1 } else { 5 });
    eprintln!(
        "substrate_bench: datapath {datapath_eps:.0} events/sec \
         ({datapath_events} events per measured window)"
    );

    // Partitioned-engine scaling on the 64-host two-pod workload: the
    // serial engine and `--par-sim {2,4}` cuts of the same fabric.
    let multipod_iters = if smoke { 1 } else { 3 };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut multipod: Vec<(usize, f64, u64, Vec<u64>)> = Vec::new();
    for domains in [1usize, 2, 4] {
        let (eps, events, per_domain) = measure_multipod(domains, multipod_iters);
        eprintln!(
            "substrate_bench: multipod par={domains} {eps:.0} events/sec \
             ({events} events per measured window{})",
            if per_domain.is_empty() {
                String::new()
            } else {
                format!(", per-domain {per_domain:?}")
            }
        );
        multipod.push((domains, eps, events, per_domain));
    }
    let multipod_rate = |d: usize| -> f64 {
        multipod
            .iter()
            .find(|(dom, ..)| *dom == d)
            .expect("domain count measured")
            .1
    };
    let speedup_2 = multipod_rate(2) / multipod_rate(1);
    let speedup_4 = multipod_rate(4) / multipod_rate(1);

    // Scale point: multi-pod Clos with the streaming recorder, run to
    // completion. Measured last so peak RSS reflects it (the earlier
    // workloads are far smaller).
    let scale = measure_scale(smoke);
    let scale_ceiling = if smoke {
        SCALE_RSS_CEILING_SMOKE_MB
    } else {
        SCALE_RSS_CEILING_MB
    };
    eprintln!(
        "substrate_bench: scale {} hosts / {} flows: {:.0} events/sec \
         ({} events), peak rss {}, arena grows post-warmup {}",
        scale.hosts,
        scale.flows,
        scale.events_per_sec,
        scale.window_events,
        scale
            .peak_rss_mb
            .map(|m| format!("{m} MiB"))
            .unwrap_or_else(|| "n/a".to_string()),
        scale.grows_post_warmup,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"flexpass-bench-substrate/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"events_per_iter\": {n},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"ns_per_event\": {:.2}, \"events_per_sec\": {:.0}}}{}\n",
            m.workload,
            m.backend.name(),
            m.ns_per_event(),
            m.events_per_sec(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"wheel_over_heap\": {{\"uniform\": {uniform_speedup:.3}, \"timer_heavy\": {timer_speedup:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"datapath\": {{\"hosts\": {DATAPATH_HOSTS}, \"window_events\": {datapath_events}, \
         \"events_per_sec\": {datapath_eps:.0}}},\n"
    ));
    json.push_str(&format!(
        "  \"multipod\": {{\"hosts\": {}, \"pods\": 2, \"host_parallelism\": {host_cores}, \
         \"runs\": [\n",
        flexpass_bench::MULTIPOD_HOSTS
    ));
    for (i, (domains, eps, events, per_domain)) in multipod.iter().enumerate() {
        let per: Vec<String> = per_domain.iter().map(u64::to_string).collect();
        json.push_str(&format!(
            "    {{\"domains\": {domains}, \"events_per_sec\": {eps:.0}, \
             \"window_events\": {events}, \"events_per_domain\": [{}]}}{}\n",
            per.join(", "),
            if i + 1 < multipod.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ], \"speedup_2\": {speedup_2:.3}, \"speedup_4\": {speedup_4:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"scale\": {{\"hosts\": {}, \"flows\": {}, \"window_events\": {}, \
         \"events_per_sec\": {:.0}, \"peak_rss_mb\": {}, \"rss_ceiling_mb\": {scale_ceiling}, \
         \"arena_grows_post_warmup\": {}}},\n",
        scale.hosts,
        scale.flows,
        scale.window_events,
        scale.events_per_sec,
        scale.peak_rss_mb.unwrap_or(0),
        scale.grows_post_warmup,
    ));

    // Datapath allocation sanitizer (alloc-count feature only).
    #[cfg(feature = "alloc-count")]
    let alloc_per_event = {
        let (per_event, warm_events, measured_events) = measure_datapath_allocs();
        eprintln!(
            "substrate_bench: datapath allocs/event {per_event:.4} \
             (warm {warm_events} events, measured {measured_events})"
        );
        json.push_str(&format!(
            "  \"alloc\": {{\"enabled\": true, \"datapath_allocs_per_event\": {per_event:.4}, \
             \"warm_events\": {warm_events}, \"measured_events\": {measured_events}}}\n"
        ));
        Some(per_event)
    };
    #[cfg(not(feature = "alloc-count"))]
    let alloc_per_event: Option<f64> = {
        json.push_str("  \"alloc\": {\"enabled\": false}\n");
        None
    };
    json.push_str("}\n");

    match &out {
        Some(path) => {
            std::fs::write(path, &json).expect("write bench report");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    eprintln!(
        "substrate_bench: wheel-over-heap speedup: uniform {uniform_speedup:.2}x, timer-heavy {timer_speedup:.2}x"
    );

    // Regression gates. The smoke run (slow debug-ish CI machines, tiny
    // iteration counts) only insists the wheel is not slower than the
    // heap; the full run asserts the paper-level target for timer churn.
    let (timer_floor, uniform_floor) = if smoke { (1.0, 0.85) } else { (1.5, 0.95) };
    if timer_speedup < timer_floor {
        eprintln!(
            "FAIL: timer-heavy speedup {timer_speedup:.2}x is below the {timer_floor:.2}x floor"
        );
        std::process::exit(1);
    }
    if uniform_speedup < uniform_floor {
        eprintln!(
            "FAIL: uniform speedup {uniform_speedup:.2}x is below the {uniform_floor:.2}x floor"
        );
        std::process::exit(1);
    }
    // Allocation gates. The steady-state datapath is supposed to be
    // allocation-free: an absolute ceiling of 0.02 allocs/event holds
    // regardless of what number is committed (allocator-internal effects
    // can shift a handful of counts between toolchains, hence not exactly
    // zero). On top of that, `--gate-alloc` checks the measurement against
    // the committed report so a regression *within* the ceiling is still
    // visible.
    const ALLOC_CEILING: f64 = 0.02;
    if let Some(measured) = alloc_per_event {
        if measured > ALLOC_CEILING {
            eprintln!(
                "FAIL: datapath allocs/event {measured:.4} exceeds the steady-state \
                 ceiling {ALLOC_CEILING:.2}"
            );
            std::process::exit(1);
        }
    }
    if let Some(committed) = gate_alloc {
        match alloc_per_event {
            Some(measured) => {
                let ceiling = committed + 0.01;
                if measured > ceiling {
                    eprintln!(
                        "FAIL: datapath allocs/event {measured:.4} exceeds the committed \
                         {committed:.4} (+0.01 tolerance)"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("FAIL: --gate-alloc requires the alloc-count feature");
                std::process::exit(1);
            }
        }
    }
    // Multipod gates. `--gate-multipod` carries the committed serial
    // (par-1) rate: the partitioned-engine refactor must not slow the
    // serial engine down (20% tolerance for machine noise). The speedup
    // gate needs real cores — a 1-core CI runner timeslices the domain
    // threads and measures scheduling, not scaling — so the ≥2x par-4
    // target applies on full runs with at least 4 hardware threads.
    if let Some(committed) = gate_multipod {
        let measured = multipod_rate(1);
        if measured < committed * 0.8 {
            eprintln!(
                "FAIL: multipod serial rate {measured:.0} events/sec regressed below the \
                 committed {committed:.0} (-20% tolerance)"
            );
            std::process::exit(1);
        }
    }
    // Scale gates. Post-warm-up arena growth must be zero unconditionally:
    // growth there means `with_flow_capacity`'s preallocation hints were
    // short and the datapath fell back to allocating mid-run.
    // `--gate-scale-rss` carries the committed ceiling (MiB): the
    // streaming recorder's whole point is that peak memory stays bounded
    // by fabric size + live flows, not completed-flow count.
    if scale.grows_post_warmup > 0 {
        eprintln!(
            "FAIL: {} arena grow(s) after the scale warm-up window \
             (preallocation hints are undersized)",
            scale.grows_post_warmup
        );
        std::process::exit(1);
    }
    if let Some(ceiling) = gate_scale_rss {
        match scale.peak_rss_mb {
            Some(measured) if measured > ceiling => {
                eprintln!(
                    "FAIL: scale peak RSS {measured} MiB exceeds the committed \
                     {ceiling} MiB ceiling"
                );
                std::process::exit(1);
            }
            Some(_) => {}
            None => eprintln!(
                "substrate_bench: RSS not measurable on this platform; \
                 --gate-scale-rss skipped"
            ),
        }
    }
    if !smoke && host_cores >= 4 {
        if speedup_4 < 2.0 {
            eprintln!(
                "FAIL: multipod par-4 speedup {speedup_4:.2}x is below the 2.0x floor \
                 ({host_cores} hardware threads available)"
            );
            std::process::exit(1);
        }
    } else {
        eprintln!(
            "substrate_bench: multipod speedups par-2 {speedup_2:.2}x, par-4 {speedup_4:.2}x \
             ({host_cores} hardware threads; 2.0x gate {})",
            if smoke {
                "skipped in smoke mode"
            } else {
                "needs >= 4 threads"
            }
        );
    }
}
