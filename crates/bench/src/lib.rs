//! Shared benchmark workloads for the simulation substrate.
//!
//! The criterion benches (`benches/substrate.rs`) and the standalone JSON
//! runner (`src/bin/substrate_bench.rs`, via `cargo xtask bench`) drive the
//! exact same workload functions, so the committed `BENCH_substrate.json`
//! baseline and the interactive criterion numbers describe the same code.

use flexpass::{FlexPassConfig, FlexPassFactory};
use flexpass_simcore::event::EventQueue;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::port::{PortConfig, QueueSched};
use flexpass_simnet::queue::QueueConfig;
use flexpass_simnet::sim::TransportFactory;
use flexpass_simnet::switch::{ClassMap, SwitchProfile};
use flexpass_simnet::topology::ClosParams;
use flexpass_simnet::{partition, FlowSpec, NullObserver, ParSim, Sim, Topology};

#[cfg(feature = "alloc-count")]
pub mod alloc_counter;

/// Which calendar backend a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The hierarchical timing wheel (production default).
    Wheel,
    /// The legacy binary heap (kept for differential testing).
    Heap,
}

impl Backend {
    /// Display name used in bench labels and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Wheel => "wheel",
            Backend::Heap => "heap",
        }
    }

    fn queue(self) -> EventQueue<u64> {
        match self {
            Backend::Wheel => EventQueue::new_wheel_backed(),
            Backend::Heap => EventQueue::new_heap_backed(),
        }
    }
}

/// Uniform batch workload: schedules `n` events at random instants within
/// a ~1 s horizon, then drains the calendar. Exercises raw push/pop cost
/// with no cancellations. Returns the number of events delivered.
pub fn uniform_workload(backend: Backend, n: u64) -> u64 {
    let mut q = backend.queue();
    let mut rng = SimRng::new(1);
    for i in 0..n {
        q.schedule(Time::from_nanos(rng.next_below(1 << 30)), i);
    }
    let mut delivered = 0u64;
    while q.pop().is_some() {
        delivered += 1;
    }
    delivered
}

/// Timer-churn workload modelling a transport's steady state: every step
/// pops and replaces a hot near-future event (a packet in flight, ~µs
/// horizon) while re-arming a cancellable RTO-style timer ~1 ms out — 90%
/// of which are cancelled before they fire, the common fate of a
/// retransmission timer under steady acks. The calendar population is
/// dominated by pending-and-doomed far timers, so a comparison-ordered
/// backend pays their `log n` on every hot-path operation while the wheel
/// parks them in a coarse level until cascade-time reaping discards them.
/// Returns the number of *live* events delivered.
pub fn timer_heavy_workload(backend: Backend, n: u64) -> u64 {
    let mut q = backend.queue();
    let mut rng = SimRng::new(7);
    let mut rto = std::collections::VecDeque::with_capacity(16);
    let mut now = Time::ZERO;
    let mut delivered = 0u64;
    for i in 0..n {
        // The hot event: next packet arrival within ~2 µs.
        q.schedule(now + TimeDelta::nanos(1 + rng.next_below(1 << 11)), i);
        // The RTO: ~1 ms out; progress (9 steps in 10) cancels the oldest
        // outstanding one, as an ack would.
        rto.push_back(q.schedule_cancelable(
            now + TimeDelta::nanos((1 << 20) + rng.next_below(1 << 12)),
            i,
        ));
        if i % 10 != 0 {
            if let Some(h) = rto.pop_front() {
                q.cancel(h);
            }
        }
        if let Some((t, _)) = q.pop() {
            now = t;
            delivered += 1;
        }
    }
    while q.pop().is_some() {
        delivered += 1;
    }
    delivered
}

/// Builds the warm-datapath workload: a star fabric with every host pair
/// exchanging one long FlexPass flow, sized so the network stays busy for
/// several simulated milliseconds. Used by the `--alloc-count` sanitizer:
/// warm it up with [`Sim::run_until`], snapshot the allocator counters,
/// run a measured window, and divide the allocation delta by the
/// [`Sim::events_processed`] delta. At steady state (all flows started,
/// none finished, every queue and timer table at its working size) that
/// ratio is what the `alloc-in-datapath` lint bounds statically.
pub fn datapath_sim(hosts: usize, flow_bytes: u64) -> Sim<NullObserver> {
    let rate = Rate::from_gbps(10);
    let profile = SwitchProfile {
        port: PortConfig {
            rate,
            queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
        },
        class_map: ClassMap::Single,
        shared_buffer: None,
    };
    let topo = Topology::star(hosts, rate, TimeDelta::micros(5), &profile, &profile);
    // Flow-capacity hint pre-sizes the calendar, per-host flow tables, and
    // the packet arena so the measured window starts with warm slabs.
    let mut sim = Sim::with_flow_capacity(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        NullObserver,
        hosts,
    );
    for i in 0..hosts as u64 {
        let src = i as usize;
        let dst = (src + 1) % hosts;
        sim.schedule_flow(FlowSpec {
            id: i,
            src,
            dst,
            size: Bytes::new(flow_bytes),
            start: Time::from_micros(i),
            tag: 0,
            fg: false,
        });
    }
    sim
}

/// Hosts in the multipod workload fabric.
pub const MULTIPOD_HOSTS: usize = 64;

/// The 64-host two-pod Clos used by the `multipod` bench entry: 8 ToRs of
/// 8 hosts, two aggs per pod. `partition(_, 2)` cuts it one pod per
/// domain; `partition(_, 4)` into rack pairs.
pub fn multipod_params() -> ClosParams {
    ClosParams {
        hosts_per_tor: 8,
        ..ClosParams::small()
    }
}

fn multipod_profile() -> SwitchProfile {
    SwitchProfile {
        port: PortConfig {
            rate: Rate::from_gbps(40),
            queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
        },
        class_map: ClassMap::Single,
        shared_buffer: None,
    }
}

/// One long FlexPass flow per host to the host one rack over — mostly
/// intra-pod traffic, with the rack-boundary flows crossing the cut (16
/// of 64 at the pod cut, 32 at rack-pair granularity). Sized so nothing
/// completes inside the measured window.
fn multipod_flows() -> Vec<FlowSpec> {
    (0..MULTIPOD_HOSTS as u64)
        .map(|i| {
            let src = i as usize;
            FlowSpec {
                id: i,
                src,
                dst: (src + 8) % MULTIPOD_HOSTS,
                size: Bytes::new(50_000_000),
                start: Time::from_micros(i),
                tag: 0,
                fg: false,
            }
        })
        .collect()
}

/// Builds the multipod workload on the serial engine.
pub fn multipod_sim() -> Sim<NullObserver> {
    let profile = multipod_profile();
    let topo = Topology::clos(multipod_params(), &profile, &profile);
    let mut sim = Sim::with_flow_capacity(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        NullObserver,
        MULTIPOD_HOSTS,
    );
    for f in multipod_flows() {
        sim.schedule_flow(f);
    }
    sim
}

/// Builds the same workload cut into `domains` partitions on the parallel
/// engine. Panics if the fabric does not partition (it always does for
/// 2 ≤ `domains` ≤ 8 on the two-pod Clos).
pub fn multipod_par_sim(domains: usize) -> ParSim<NullObserver> {
    let profile = multipod_profile();
    let topo = Topology::clos(multipod_params(), &profile, &profile);
    let part = match partition(topo, domains) {
        Ok(p) => p,
        Err(_) => panic!("two-pod clos must partition into {domains} domains"),
    };
    let k = part.n_domains();
    let factories: Vec<Box<dyn TransportFactory>> = (0..k)
        .map(|_| {
            Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))) as Box<dyn TransportFactory>
        })
        .collect();
    let observers: Vec<NullObserver> = (0..k).map(|_| NullObserver).collect();
    let mut sim = ParSim::new(part, factories, observers, MULTIPOD_HOSTS);
    for f in multipod_flows() {
        sim.schedule_flow(f);
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_deliver_identically_on_both_backends() {
        assert_eq!(
            uniform_workload(Backend::Wheel, 10_000),
            uniform_workload(Backend::Heap, 10_000)
        );
        assert_eq!(
            timer_heavy_workload(Backend::Wheel, 10_000),
            timer_heavy_workload(Backend::Heap, 10_000)
        );
    }

    #[test]
    fn uniform_delivers_everything() {
        assert_eq!(uniform_workload(Backend::Wheel, 5_000), 5_000);
    }

    #[test]
    fn multipod_serial_and_parallel_agree() {
        // FlexPass at 40G saturation is feedback-sensitive: cross-cut
        // arrivals occupy different same-instant calendar positions than in
        // the serial run, so event counts agree only up to tie order (see
        // the parsim module doc). Exact equality is asserted by the
        // tie-free differential tests in simnet; here we bound the drift.
        let mut serial = multipod_sim();
        serial.run_until(Time::from_micros(300));
        let mut par = multipod_par_sim(2);
        par.run_until(Time::from_micros(300));
        assert_eq!(par.n_domains(), 2);
        let (s, p) = (serial.events_processed(), par.events_processed());
        let drift = s.abs_diff(p);
        assert!(
            drift * 1000 <= s,
            "engines diverged beyond tie-order noise: serial {s}, par {p}"
        );
        assert_eq!(par.flows_completed(), 0, "flows must outlive the window");
        let per_domain = par.events_per_domain();
        assert_eq!(per_domain.len(), 2);
        assert!(
            per_domain.iter().all(|&e| e > 0),
            "idle domain: {per_domain:?}"
        );
    }

    #[test]
    fn datapath_sim_reaches_steady_state() {
        let mut sim = datapath_sim(8, 50_000_000);
        sim.run_until(Time::from_micros(500));
        let warm = sim.events_processed();
        assert!(warm > 1_000, "only {warm} events by warm-up");
        assert_eq!(sim.flows_started(), 8, "all flows active");
        sim.run_until(Time::from_micros(1_000));
        assert!(sim.events_processed() > warm, "no progress in the window");
        assert_eq!(sim.flows_completed(), 0, "flows must outlive the window");
    }
}
