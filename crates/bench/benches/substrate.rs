//! Microbenchmarks of the simulation substrate itself: event calendar
//! throughput, port scheduling, and a packed end-to-end packets/second
//! figure. These guard against performance regressions that would make the
//! paper-scale sweeps impractical.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn tuned() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

use flexpass_simcore::event::EventQueue;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::{Bytes, WireBytes};
use flexpass_simnet::arena::PacketArena;
use flexpass_simnet::consts::DATA_WIRE;
use flexpass_simnet::packet::{DataInfo, Packet, Payload, Subflow, TrafficClass};
use flexpass_simnet::port::{Decision, Port, PortConfig, QueueSched};
use flexpass_simnet::queue::QueueConfig;

fn bench_event_queue(c: &mut Criterion) {
    use flexpass_bench::{timer_heavy_workload, uniform_workload, Backend};
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("schedule_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..100_000u64 {
                q.schedule(Time::from_nanos(rng.next_below(1 << 30)), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    // The shared workloads (`flexpass_bench`) pinned to each backend: the
    // wheel must beat the legacy heap on timer churn and at least match it
    // on the uniform batch (BENCH_substrate.json tracks the committed
    // baseline; `cargo xtask bench` regenerates it).
    for backend in [Backend::Wheel, Backend::Heap] {
        g.bench_function(&format!("uniform_100k_{}", backend.name()), |b| {
            b.iter(|| uniform_workload(backend, 100_000))
        });
        g.bench_function(&format!("timer_heavy_{}", backend.name()), |b| {
            b.iter(|| timer_heavy_workload(backend, 100_000))
        });
    }
    g.finish();
}

fn data_pkt(flow: u64) -> Packet {
    Packet::new(
        flow,
        0,
        1,
        DATA_WIRE,
        TrafficClass::NewData,
        Payload::Data(DataInfo {
            flow_seq: 0,
            sub_seq: 0,
            sub: Subflow::Only,
            payload: Bytes::new(1460),
            retx: false,
        }),
    )
}

fn bench_dwrr_port(c: &mut Criterion) {
    let cfg = PortConfig {
        rate: Rate::from_gbps(40),
        queues: vec![
            (
                QueueConfig::plain().with_ecn(WireBytes::new(65_000)),
                QueueSched::weighted(1, 0.5),
            ),
            (
                QueueConfig::plain().with_ecn(WireBytes::new(100_000)),
                QueueSched::weighted(1, 0.5),
            ),
        ],
    };
    let mut g = c.benchmark_group("port_scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("dwrr_enqueue_dequeue_10k", |b| {
        b.iter(|| {
            let mut port = Port::new(&cfg);
            let mut arena = PacketArena::with_capacity(10_000);
            let mut served = 0u32;
            for i in 0..5_000u64 {
                let id = arena.acquire(data_pkt(i));
                port.enqueue(&mut arena, 0, id).unwrap();
                let id = arena.acquire(data_pkt(i));
                port.enqueue(&mut arena, 1, id).unwrap();
            }
            while let Decision::Send(id) = port.next_packet(&mut arena, Time::ZERO) {
                arena.release(id);
                served += 1;
            }
            assert_eq!(served, 10_000);
            served
        })
    });
    g.finish();
}

fn bench_end_to_end_packets(c: &mut Criterion) {
    use flexpass::config::FlexPassConfig;
    use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
    use flexpass::FlexPassFactory;
    use flexpass_simnet::packet::FlowSpec;
    use flexpass_simnet::sim::{NullObserver, Sim};
    use flexpass_simnet::topology::Topology;

    let mut g = c.benchmark_group("end_to_end");
    // One 2 MB FlexPass flow = ~1370 data packets plus acks and credits.
    g.throughput(Throughput::Elements(1370));
    g.bench_function("flexpass_2mb_flow", |b| {
        b.iter(|| {
            let params = ProfileParams::testbed(Rate::from_gbps(10));
            let profile = flexpass_profile(&params);
            let host = host_variant(&profile);
            let topo = Topology::star(3, params.rate, TimeDelta::micros(5), &profile, &host);
            let mut sim = Sim::new(
                topo,
                Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
                NullObserver,
            );
            sim.schedule_flow(FlowSpec {
                id: 1,
                src: 0,
                dst: 2,
                size: Bytes::new(2_000_000),
                start: Time::ZERO,
                tag: 0,
                fg: false,
            });
            sim.run_to_completion(TimeDelta::millis(2));
            sim.events_processed()
        })
    });
    // The warm-datapath workload from the JSON runner (8-host FlexPass
    // star, every host sending): a fixed virtual window over a steady
    // all-hosts-busy fabric, the same shape the `--alloc-count` sanitizer
    // gates. Throughput here is events, not packets.
    g.bench_function("flexpass_8host_datapath_window", |b| {
        b.iter(|| {
            let mut sim = flexpass_bench::datapath_sim(8, 50_000_000);
            sim.run_until(Time::from_micros(3_000));
            sim.events_processed()
        })
    });
    g.finish();
}

criterion_group! {
    name = substrate;
    config = tuned();
    targets = bench_event_queue, bench_dwrr_port, bench_end_to_end_packets
}
criterion_main!(substrate);
