//! Criterion benchmarks: one per paper table/figure scenario, at reduced
//! scale so each iteration stays in the tens-of-milliseconds range. These
//! double as performance regressions for the simulator and as smoke tests
//! that every figure's scenario still assembles and runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared reduced settings: these scenarios take tens of milliseconds per
/// iteration, so a small sample keeps `cargo bench` practical.
fn tuned() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{
    dctcp_profile, flexpass_profile, homa_mix_profile, naive_profile, ProfileParams,
};
use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
use flexpass::FlexPassFactory;
use flexpass_experiments::fig1::TagFactory;
use flexpass_experiments::fig8::run_incast;
use flexpass_experiments::runner::{run_window, star_topo, RunScale};
use flexpass_experiments::sweep::{run_point, SweepSpec};
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::TransportFactory;
use flexpass_transport::dctcp::DctcpFactory;
use flexpass_transport::expresspass::{EpConfig, ExpressPassFactory};
use flexpass_transport::homa::HomaConfig;

fn long_flow(id: u64, src: usize, dst: usize, tag: u32) -> FlowSpec {
    FlowSpec {
        id,
        src,
        dst,
        size: flexpass_simcore::units::Bytes::new(500_000_000),
        start: Time::ZERO,
        tag,
        fg: false,
    }
}

/// A short (10 ms) coexistence window on the testbed star.
fn window_bench(
    factory: Box<dyn TransportFactory>,
    profile: &flexpass_simnet::switch::SwitchProfile,
    flows: Vec<FlowSpec>,
) {
    let topo = star_topo(3, profile);
    let rec = run_window(
        topo,
        factory,
        Recorder::new().with_throughput(TimeDelta::millis(1)),
        &flows,
        Time::from_millis(10),
    );
    assert!(rec.throughput_gbps(0).len() + rec.throughput_gbps(1).len() > 0);
}

fn bench_fig1(c: &mut Criterion) {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    c.bench_function("fig1a_ep_starves_dctcp_10ms", |b| {
        b.iter(|| {
            window_bench(
                Box::new(TagFactory::dctcp_vs_ep(EpConfig::default())),
                &naive_profile(&params),
                vec![long_flow(1, 0, 2, 0), long_flow(2, 1, 2, 1)],
            )
        })
    });
    c.bench_function("fig1b_homa_vs_dctcp_10ms", |b| {
        let homa = HomaConfig {
            unsched_prio: 0,
            sched_prio: 0,
            ..HomaConfig::default()
        };
        b.iter(|| {
            let topo = star_topo(9, &homa_mix_profile(&params));
            let mut flows = Vec::new();
            for i in 0..4u64 {
                flows.push(long_flow(i, i as usize, 8, 0));
                flows.push(long_flow(4 + i, 4 + i as usize, 8, 1));
            }
            let rec = run_window(
                topo,
                Box::new(TagFactory::dctcp_vs_homa(homa)),
                Recorder::new().with_throughput(TimeDelta::millis(1)),
                &flows,
                Time::from_millis(10),
            );
            assert!(!rec.throughput_gbps(1).is_empty());
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    c.bench_function("fig7a_subflow_split_10ms", |b| {
        b.iter(|| {
            let profile = flexpass_profile(&params);
            let factory = SchemeFactory::new(
                Scheme::FlexPass,
                Deployment::full(3),
                FlexPassConfig::new(0.5),
                0.5,
            );
            window_bench(Box::new(factory), &profile, vec![long_flow(1, 0, 2, 1)])
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let mut g = c.benchmark_group("fig8_incast_24_flows");
    g.bench_function("dctcp", |b| {
        b.iter(|| {
            run_incast(
                &dctcp_profile(&params),
                Box::new(DctcpFactory::new()),
                24,
                0,
            )
        })
    });
    g.bench_function("expresspass", |b| {
        b.iter(|| {
            run_incast(
                &naive_profile(&params),
                Box::new(ExpressPassFactory::new()),
                24,
                0,
            )
        })
    });
    g.bench_function("flexpass", |b| {
        b.iter(|| {
            run_incast(
                &flexpass_profile(&params),
                Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
                24,
                0,
            )
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    c.bench_function("fig9b_fp_vs_dctcp_10ms", |b| {
        b.iter(|| {
            let profile = flexpass_profile(&params);
            let factory = SchemeFactory::new(
                Scheme::FlexPass,
                Deployment::from_hosts(vec![false, true, true]),
                FlexPassConfig::new(0.5),
                0.5,
            );
            window_bench(
                Box::new(factory),
                &profile,
                vec![long_flow(1, 0, 2, 0), long_flow(2, 1, 2, 1)],
            )
        })
    });
}

/// One sweep point per scheme at a tiny scale backs Figures 10-18 (the
/// same engine with different parameters regenerates all of them).
fn bench_sweep_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_sweep_point_smoke");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut spec = SweepSpec::fig10(RunScale::Smoke);
                spec.n_flows = Some(60);
                let p = run_point(scheme, 0.5, &spec);
                assert_eq!(p.flows as u64, 60);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = tuned();
    targets = bench_fig1, bench_fig7, bench_fig8, bench_fig9, bench_sweep_point
}
criterion_main!(figures);
