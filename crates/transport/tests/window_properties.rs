//! Property tests for the congestion-control building blocks.

use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::Rate;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::consts::DATA_WIRE;
use flexpass_simnet::sim::NetEnv;
use flexpass_transport::common::{DctcpWindow, RttEstimator};
use flexpass_transport::expresspass::{CreditEngine, EpConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DCTCP window stays within [1, max_cwnd] and alpha within [0, 1]
    /// for any random sequence of acks, marks, losses, and timeouts.
    #[test]
    fn dctcp_window_bounded(seed in 0u64..100_000, max_cwnd in 16.0f64..512.0) {
        let mut w = DctcpWindow::new(10.0, 1.0 / 16.0, max_cwnd);
        let mut rng = SimRng::new(seed);
        let mut seq = 0u32;
        for _ in 0..500 {
            let acked = 1 + rng.next_below(16);
            seq += acked as u32;
            let snd_nxt = seq + rng.next_below(64) as u32;
            match rng.next_below(20) {
                0 => w.on_loss(seq, snd_nxt),
                1 => w.on_timeout(snd_nxt),
                _ => w.on_ack(acked, seq, rng.chance(0.3), snd_nxt),
            }
            prop_assert!(w.cwnd() >= 1.0, "cwnd {} < 1", w.cwnd());
            prop_assert!(w.cwnd() <= max_cwnd, "cwnd {} > max {max_cwnd}", w.cwnd());
            prop_assert!((0.0..=1.0).contains(&w.alpha()), "alpha {}", w.alpha());
            prop_assert!(w.cwnd_pkts() >= 1);
        }
    }

    /// Sustained full marking drives the window to the floor; sustained
    /// clean acks drive it to the cap.
    #[test]
    fn dctcp_window_extremes(seed in 0u64..10_000) {
        let _ = seed;
        let mut w = DctcpWindow::new(10.0, 1.0 / 16.0, 256.0);
        let mut seq = 0u32;
        for _ in 0..400 {
            seq += 10;
            w.on_ack(10, seq, true, seq + 10);
        }
        prop_assert!(w.cwnd() < 4.0, "marked cwnd {}", w.cwnd());
        // Clean acks grow the window again; ssthresh is low after the
        // marking phase, so growth is congestion-avoidance-paced
        // (~sqrt(2 * acks)).
        for _ in 0..400 {
            seq += 10;
            w.on_ack(10, seq, false, seq + 10);
        }
        prop_assert!(w.cwnd() > 50.0, "clean cwnd {}", w.cwnd());
    }

    /// RTO is always at least the configured floor and at least srtt.
    #[test]
    fn rto_floor_holds(
        min_rto_us in 100u64..10_000,
        samples in prop::collection::vec(1u64..100_000, 1..50),
    ) {
        let floor = TimeDelta::micros(min_rto_us);
        let mut est = RttEstimator::new(floor);
        for s in samples {
            est.sample(TimeDelta::micros(s));
            prop_assert!(est.rto() >= floor);
            prop_assert!(est.rto() >= est.srtt().unwrap());
        }
    }

    /// The credit engine's rate always stays within
    /// [min_rate_frac, 1] x max rate, under any loss pattern.
    #[test]
    fn credit_engine_rate_bounded(seed in 0u64..100_000) {
        let env = NetEnv {
            host_rate: Rate::from_gbps(40),
            base_rtt: TimeDelta::micros(28),
            n_hosts: 2,
        };
        let cfg = EpConfig::default();
        let mut eng = CreditEngine::new(cfg, &env, seed);
        let mut rng = SimRng::new(seed ^ 0xAB);
        let max = 40e9 * cfg.max_rate_frac;
        for _ in 0..300 {
            let sent = rng.next_below(200);
            let delivered = if sent == 0 { 0 } else { rng.next_below(sent + 1) };
            eng.credits_sent_period = sent;
            eng.data_rcvd_period = delivered;
            eng.feedback_update();
            prop_assert!(eng.rate() <= max * 1.0001, "rate {} > max {max}", eng.rate());
            prop_assert!(
                eng.rate() >= max * cfg.min_rate_frac * 0.9999,
                "rate {} below floor",
                eng.rate()
            );
            // Pacing interval is positive and jitter stays within +/-25 %.
            let base = DATA_WIRE.as_f64() * 8.0 / eng.rate();
            let iv = eng.credit_interval().as_secs_f64();
            prop_assert!(iv >= base * 0.74 && iv <= base * 1.26, "jitter out of range");
        }
    }
}

/// Deterministic: repeated clean feedback pushes the rate to the cap
/// within a bounded number of updates (S_max-limited ramp).
#[test]
fn credit_engine_ramp_time() {
    let env = NetEnv {
        host_rate: Rate::from_gbps(40),
        base_rtt: TimeDelta::micros(28),
        n_hosts: 2,
    };
    let cfg = EpConfig::default();
    let mut eng = CreditEngine::new(cfg, &env, 1);
    let mut updates = 0;
    while eng.rate() < 40e9 * 0.95 && updates < 100 {
        eng.credits_sent_period = 100;
        eng.data_rcvd_period = 100;
        eng.feedback_update();
        updates += 1;
    }
    // 20 G to go at >= S_max (1 Gbps) per step, accelerated by the binary
    // search: well under 40 updates.
    assert!(updates <= 40, "ramp took {updates} updates");
}
