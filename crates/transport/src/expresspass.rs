//! ExpressPass [Cho 2017]: receiver-driven credit-scheduled transport.
//!
//! The receiver paces small credit packets towards the sender; every credit
//! that survives the network's rate-limited credit queues (Q0) triggers one
//! data packet on the reverse (symmetric) path. Credit drops at the shaped
//! queues are the congestion signal: the receiver runs a feedback loop that
//! probes for the highest credit rate whose loss stays under a target.
//!
//! This implementation follows the SIGCOMM '17 algorithm: per-update-period
//! credit-loss measurement, binary-search increase `w ← (w + w_max)/2`, and
//! multiplicative decrease on excess loss. FlexPass reuses this endpoint
//! pair for its proactive sub-flow with the credit rate scaled by `w_q`.

use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::consts::{
    data_wire_bytes, packets_for, payload_of_packet, CTRL_WIRE, DATA_WIRE,
};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats, TxStats};
use flexpass_simnet::packet::{
    AckInfo, CreditInfo, DataInfo, FlowSpec, Packet, Payload, Subflow, TrafficClass,
};
use flexpass_simnet::sim::{timer_kind, timer_token, NetEnv, TransportFactory};
use flexpass_simnet::trace;

use crate::common::{AckBuilder, PktState, Reassembly, RttEstimator};

/// Debug tracing for one flow id, enabled via `EP_TRACE=<flow_id>`.
fn trace_flow() -> u64 {
    static FLOW: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *FLOW.get_or_init(|| {
        std::env::var("EP_TRACE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(u64::MAX)
    })
}

/// Timer kind: receiver credit pacing tick.
const TK_CREDIT: u16 = 3;
/// Timer kind: receiver feedback update.
const TK_FEEDBACK: u16 = 4;
/// Timer kind: sender retransmission / re-request backstop.
const TK_RTO: u16 = 5;
/// Timer kind: receiver linger teardown.
const TK_LINGER: u16 = 6;

/// ExpressPass parameters.
#[derive(Clone, Copy, Debug)]
pub struct EpConfig {
    /// Traffic class for data packets.
    pub data_class: TrafficClass,
    /// Traffic class for control packets (requests, ACKs).
    pub ctrl_class: TrafficClass,
    /// Fraction of the host line rate the triggered data may reach (1.0 for
    /// plain ExpressPass; `w_q` under FlexPass / oWF).
    pub max_rate_frac: f64,
    /// Target credit-loss rate of the feedback loop.
    pub target_loss: f64,
    /// Initial binary-search weight.
    pub w_init: f64,
    /// Minimum binary-search weight.
    pub w_min: f64,
    /// Initial credit rate as a fraction of the maximum.
    pub init_rate_frac: f64,
    /// Minimum credit rate as a fraction of the maximum.
    pub min_rate_frac: f64,
    /// Credit pacing jitter: each interval is scaled by a uniform factor in
    /// `[1 - j/2, 1 + j/2]`. Without jitter, equal-rate flows phase-lock at
    /// the shaped credit queues and drops concentrate on the same flows
    /// forever (the simulator is deterministic; real ExpressPass jitters
    /// credit pacing for the same reason).
    pub pacing_jitter: f64,
    /// Maximum rate increase per feedback update, in bps of triggered data
    /// (the paper sets S_max to 50 Mbps of credits ~ 1 Gbps of data).
    /// Without it the binary-search increase overshoots wildly whenever the
    /// fair share is far below the per-flow maximum (e.g. high incast).
    pub max_step_bps: f64,
    /// Sender-side retransmission / credit re-request timeout floor.
    pub min_rto: TimeDelta,
    /// Receiver linger before teardown.
    pub linger: TimeDelta,
}

impl Default for EpConfig {
    fn default() -> Self {
        EpConfig {
            data_class: TrafficClass::NewData,
            ctrl_class: TrafficClass::NewCtrl,
            max_rate_frac: 1.0,
            target_loss: 0.125,
            w_init: 0.5,
            w_min: 0.01,
            init_rate_frac: 0.5,
            min_rate_frac: 0.01,
            pacing_jitter: 0.5,
            max_step_bps: 1e9,
            min_rto: TimeDelta::millis(4),
            linger: TimeDelta::millis(16),
        }
    }
}

/// ExpressPass sender: transmits one data packet per received credit.
pub struct EpSender {
    spec: FlowSpec,
    cfg: EpConfig,
    n: u32,
    states: Vec<PktState>,
    snd_una: u32,
    next_pending: u32,
    dupacks: u32,
    acked: u32,
    rtt: RttEstimator,
    last_progress: Time,
    /// Deadline of the currently armed (cancellable) RTO, if any.
    rto_deadline: Option<Time>,
    rto_backoff: u32,
    /// Packets currently marked `Lost`, kept sorted for O(log n) lookup.
    lost: std::collections::BTreeSet<u32>,
    stats: TxStats,
    done: bool,
}

impl EpSender {
    /// Creates a sender for `spec`.
    pub fn new(spec: FlowSpec, cfg: EpConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size).get();
        EpSender {
            spec,
            cfg,
            n,
            states: vec![PktState::Pending; n as usize],
            snd_una: 0,
            next_pending: 0,
            dupacks: 0,
            acked: 0,
            rtt: RttEstimator::new(cfg.min_rto),
            last_progress: Time::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            lost: std::collections::BTreeSet::new(),
            stats: TxStats::default(),
            done: false,
        }
    }

    /// Transmission statistics so far.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    fn send_request(&mut self, ctx: &mut EndpointCtx) {
        ctx.send(Packet::new(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            CTRL_WIRE,
            self.cfg.ctrl_class,
            Payload::CreditReq { pkts: self.n },
        ));
    }

    /// Keeps the armed RTO tracking `last_progress + rto()` via
    /// cancel-and-replace arming; cancelled outright once the flow is done.
    /// The deadline is a monotone maximum (fresh arms start at
    /// `now + rto()`, re-arms never move earlier), matching the envelope
    /// the old lazy fire-and-recheck chain converged to.
    fn update_rto(&mut self, ctx: &mut EndpointCtx) {
        let token = timer_token(self.spec.id, TK_RTO);
        if self.done {
            if self.rto_deadline.take().is_some() {
                ctx.cancel_timer(token);
            }
            return;
        }
        let at = match self.rto_deadline {
            Some(d) => (self.last_progress + self.rto()).max(d),
            None => ctx.now + self.rto(),
        };
        if self.rto_deadline != Some(at) {
            self.rto_deadline = Some(at);
            ctx.arm_timer(at, token);
        }
    }

    fn rto(&self) -> TimeDelta {
        self.rtt.rto() * (1u64 << self.rto_backoff.min(8))
    }

    /// Picks the packet a fresh credit should carry: lost first, then new.
    fn pick(&mut self) -> Option<u32> {
        if let Some(&seq) = self.lost.iter().next() {
            return Some(seq);
        }
        while self.next_pending < self.n
            && self.states[self.next_pending as usize] != PktState::Pending
        {
            self.next_pending += 1;
        }
        if self.next_pending < self.n {
            let s = self.next_pending;
            self.next_pending += 1;
            return Some(s);
        }
        None
    }

    fn on_credit(&mut self, credit: CreditInfo, ctx: &mut EndpointCtx) {
        if self.spec.id == trace_flow() {
            eprintln!(
                "[{:?}] S credit idx={} done={} acked={}/{} next_pending={} lost={}",
                ctx.now,
                credit.idx,
                self.done,
                self.acked,
                self.n,
                self.next_pending,
                self.lost.len()
            );
        }
        self.stats.credits_received += 1;
        if self.done {
            self.stats.credits_wasted += 1;
            trace::credit_wasted(self.spec.id);
            ctx.send(Packet::new(
                self.spec.id,
                self.spec.src,
                self.spec.dst,
                CTRL_WIRE,
                self.cfg.ctrl_class,
                Payload::CreditStop,
            ));
            return;
        }
        match self.pick() {
            Some(seq) => {
                let retx = self.states[seq as usize] == PktState::Lost;
                self.lost.remove(&seq);
                self.states[seq as usize] = PktState::Sent;
                let pay = payload_of_packet(self.spec.size, seq);
                self.stats.data_pkts += 1;
                self.stats.data_bytes += pay.get();
                if retx {
                    self.stats.retx_pkts += 1;
                    self.stats.redundant_bytes += pay.get();
                    trace::retransmit(self.spec.id, seq);
                }
                ctx.send(Packet::new(
                    self.spec.id,
                    self.spec.src,
                    self.spec.dst,
                    data_wire_bytes(pay),
                    self.cfg.data_class,
                    Payload::Data(DataInfo {
                        flow_seq: seq,
                        sub_seq: credit.idx,
                        sub: Subflow::Only,
                        payload: pay,
                        retx,
                    }),
                ));
                self.update_rto(ctx);
            }
            None => {
                self.stats.credits_wasted += 1;
                trace::credit_wasted(self.spec.id);
            }
        }
    }

    fn mark_acked(&mut self, seq: u32, now: Time) -> u64 {
        let st = &mut self.states[seq as usize];
        if *st == PktState::Acked {
            return 0;
        }
        *st = PktState::Acked;
        self.lost.remove(&seq);
        self.acked += 1;
        self.last_progress = now;
        1
    }

    fn on_ack(&mut self, ack: &AckInfo, ctx: &mut EndpointCtx) {
        if self.spec.id == trace_flow() {
            eprintln!(
                "[{:?}] S ack cum={} sack_n={} acked={}/{}",
                ctx.now, ack.cum, ack.sack_n, self.acked, self.n
            );
        }
        let prev_una = self.snd_una;
        let mut newly = 0;
        while self.snd_una < ack.cum.min(self.n) {
            newly += self.mark_acked(self.snd_una, ctx.now);
            self.snd_una += 1;
        }
        for r in 0..ack.sack_n as usize {
            let (lo, hi) = ack.sack[r];
            for s in lo..hi.min(self.n) {
                newly += self.mark_acked(s, ctx.now);
            }
        }
        if newly > 0 {
            self.rto_backoff = 0;
            self.dupacks = 0;
        } else if ack.cum == prev_una && ack.cum < self.n {
            self.dupacks += 1;
            if self.dupacks == 3 {
                self.dupacks = 0;
                if self.states[self.snd_una as usize] == PktState::Sent {
                    // Next credit will carry the retransmission.
                    self.states[self.snd_una as usize] = PktState::Lost;
                    self.lost.insert(self.snd_una);
                }
            }
        }
        if self.acked >= self.n && !self.done {
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: self.stats,
            });
        }
        self.update_rto(ctx);
    }

    fn on_rto(&mut self, ctx: &mut EndpointCtx) {
        self.rto_deadline = None;
        if self.done {
            return;
        }
        // No progress for a full RTO: presume in-flight data lost and credits
        // stalled; re-request credits. Only count a timeout when data was
        // actually outstanding — a credit-starved idle sender re-requesting
        // credits is not a loss-recovery timeout.
        self.rto_backoff += 1;
        trace::rto(self.spec.id, self.rto_backoff);
        let mut any_lost = false;
        for s in self.snd_una..self.next_pending.min(self.n) {
            if self.states[s as usize] == PktState::Sent {
                self.states[s as usize] = PktState::Lost;
                self.lost.insert(s);
                any_lost = true;
            }
        }
        if any_lost {
            self.stats.timeouts += 1;
        }
        self.last_progress = ctx.now;
        self.send_request(ctx);
        self.update_rto(ctx);
    }
}

impl Endpoint for EpSender {
    fn activate(&mut self, ctx: &mut EndpointCtx) {
        self.last_progress = ctx.now;
        // Proactive transports wait one RTT for credits (no unscheduled
        // packets in plain ExpressPass).
        self.send_request(ctx);
        self.update_rto(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        match pkt.payload {
            Payload::Credit(c) => self.on_credit(c, ctx),
            Payload::Ack(a) => self.on_ack(&a, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        if timer_kind(token) == TK_RTO {
            self.on_rto(ctx);
        }
    }

    fn finished(&self) -> bool {
        // The RTO is cancelled on completion — no stale fire to wait out.
        self.done
    }
}

/// The ExpressPass credit-rate feedback engine, shared between the plain
/// ExpressPass receiver and the FlexPass proactive sub-flow.
///
/// Rates are expressed as the *data* rate the credits trigger (bps); the
/// credit packets themselves are `CTRL_WIRE / DATA_WIRE` times smaller.
#[derive(Clone, Debug)]
pub struct CreditEngine {
    cfg: EpConfig,
    max_rate: f64,
    cur_rate: f64,
    w: f64,
    prev_increase: bool,
    rng: SimRng,
    /// Credits sent during the current observation period.
    pub credits_sent_period: u64,
    /// Credit-triggered data packets received during the period.
    pub data_rcvd_period: u64,
}

impl CreditEngine {
    /// Creates an engine whose maximum triggered-data rate is
    /// `host_rate * cfg.max_rate_frac`. `seed` (typically the flow id)
    /// decorrelates pacing jitter across flows.
    pub fn new(cfg: EpConfig, env: &NetEnv, seed: u64) -> Self {
        let max_rate = env.host_rate.as_bps() as f64 * cfg.max_rate_frac;
        CreditEngine {
            cfg,
            max_rate,
            cur_rate: max_rate * cfg.init_rate_frac,
            w: cfg.w_init,
            prev_increase: false,
            rng: SimRng::new(seed ^ 0xC0DE_CAFE),
            credits_sent_period: 0,
            data_rcvd_period: 0,
        }
    }

    /// Current credit rate, as the data rate it triggers (bps).
    pub fn rate(&self) -> f64 {
        self.cur_rate
    }

    /// Interval until the next credit at the current rate, with pacing
    /// jitter applied.
    ///
    /// The base interval is an exact integer serialization time; only the
    /// jitter factor goes through the contained [`TimeDelta::mul_f64`]
    /// scaling, keeping float arithmetic out of the time domain.
    pub fn credit_interval(&mut self) -> TimeDelta {
        let rate = Rate::from_bps((self.cur_rate.round() as u64).max(1));
        let base = rate.serialize_wire(DATA_WIRE);
        let j = self.cfg.pacing_jitter;
        let factor = 1.0 + j * (self.rng.next_f64() - 0.5);
        base.mul_f64(factor)
    }

    /// Runs one feedback update over the counters accumulated since the
    /// last call (SIGCOMM '17 algorithm: binary-search increase under the
    /// target loss, multiplicative decrease above it).
    /// Updates are skipped (counters keep accumulating) until at least a
    /// handful of credits were sent: with per-RTT update periods and a low
    /// current rate, a 1-credit sample would read as 0 % or 100 % loss
    /// depending on pipeline phase and pin the rate at the minimum.
    pub fn feedback_update(&mut self) {
        const MIN_CREDIT_SAMPLE: u64 = 8;
        if self.credits_sent_period < MIN_CREDIT_SAMPLE {
            return;
        }
        let delivered = self.data_rcvd_period.min(self.credits_sent_period);
        let loss = 1.0 - delivered as f64 / self.credits_sent_period as f64;
        let w_max = 0.5;
        if loss <= self.cfg.target_loss {
            if self.prev_increase {
                self.w = (self.w + w_max) / 2.0;
            }
            self.prev_increase = true;
            let target = (1.0 - self.w) * self.cur_rate
                + self.w * self.max_rate * (1.0 + self.cfg.target_loss);
            // S_max: bound the per-update increase.
            self.cur_rate = target.min(self.cur_rate + self.cfg.max_step_bps);
        } else {
            self.cur_rate *= (1.0 - loss) * (1.0 + self.cfg.target_loss);
            self.w = (self.w / 2.0).max(self.cfg.w_min);
            self.prev_increase = false;
        }
        self.cur_rate = self
            .cur_rate
            .clamp(self.max_rate * self.cfg.min_rate_frac, self.max_rate);
        self.credits_sent_period = 0;
        self.data_rcvd_period = 0;
    }
}

/// ExpressPass receiver: paces credits under feedback control, reassembles
/// data, and acknowledges every packet.
pub struct EpReceiver {
    spec: FlowSpec,
    cfg: EpConfig,
    reasm: Reassembly,
    acks: AckBuilder,
    engine: CreditEngine,
    credit_idx: u32,
    crediting: bool,
    credit_chain_live: bool,
    update_period: TimeDelta,
    completed: bool,
    torn_down: bool,
    /// Total credits sent (introspection).
    pub credits_sent: u64,
}

impl EpReceiver {
    /// Creates a receiver for `spec`.
    pub fn new(spec: FlowSpec, cfg: EpConfig, env: &NetEnv) -> Self {
        let n = packets_for(spec.size);
        let reasm = Reassembly::new(spec.size, n);
        let n = n.get();
        let engine = CreditEngine::new(cfg, env, spec.id);
        EpReceiver {
            spec,
            cfg,
            reasm,
            acks: AckBuilder::new(n),
            engine,
            credit_idx: 0,
            crediting: false,
            credit_chain_live: false,
            update_period: env.base_rtt.max(TimeDelta::micros(20)),
            completed: false,
            torn_down: false,
            credits_sent: 0,
        }
    }

    /// Current credit rate (as the data rate it would trigger, bps).
    pub fn credit_rate(&self) -> f64 {
        self.engine.rate()
    }

    fn start_crediting(&mut self, ctx: &mut EndpointCtx) {
        if self.crediting {
            return;
        }
        self.crediting = true;
        if !self.credit_chain_live {
            self.credit_chain_live = true;
            ctx.arm_timer(ctx.now, timer_token(self.spec.id, TK_CREDIT));
            ctx.arm_timer(
                ctx.now + self.update_period,
                timer_token(self.spec.id, TK_FEEDBACK),
            );
        }
    }

    fn send_credit(&mut self, ctx: &mut EndpointCtx) {
        if self.spec.id == trace_flow() {
            eprintln!(
                "[{:?}] R credit idx={} rate={:.0}Mbps rcvd={}/{}",
                ctx.now,
                self.credit_idx,
                self.engine.rate() / 1e6,
                self.reasm.received_count(),
                self.reasm.total()
            );
        }
        let idx = self.credit_idx;
        self.credit_idx += 1;
        self.credits_sent += 1;
        self.engine.credits_sent_period += 1;
        trace::credit_sent(self.spec.id, u64::from(idx));
        ctx.send(Packet::new(
            self.spec.id,
            self.spec.dst,
            self.spec.src,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx }),
        ));
    }

    fn on_data(&mut self, pkt: &Packet, d: DataInfo, ctx: &mut EndpointCtx) {
        self.engine.data_rcvd_period += 1;
        self.reasm.on_packet(d.flow_seq);
        self.acks.on_packet(d.flow_seq);
        let info = self
            .acks
            .build(Subflow::Only, pkt.ecn_ce, d.flow_seq, d.flow_seq);
        ctx.send(Packet::new(
            self.spec.id,
            self.spec.dst,
            self.spec.src,
            CTRL_WIRE,
            self.cfg.ctrl_class,
            Payload::Ack(info),
        ));
        if self.reasm.complete() && !self.completed {
            self.completed = true;
            self.crediting = false;
            // Completion is final (`CreditReq` is ignored once completed),
            // so the pacing chains can be cancelled outright instead of
            // firing one last stale tick each. A mid-flow `CreditStop`, by
            // contrast, must let the chain fire and observe `!crediting` —
            // restart depends on that stale-fire termination.
            ctx.cancel_timer(timer_token(self.spec.id, TK_CREDIT));
            ctx.cancel_timer(timer_token(self.spec.id, TK_FEEDBACK));
            ctx.emit(AppEvent::FlowCompleted {
                flow: self.spec.id,
                stats: RxStats {
                    pkts_received: self.reasm.received_count() as u64 + self.reasm.duplicates(),
                    dup_pkts: self.reasm.duplicates(),
                    reorder_peak_bytes: self.reasm.reorder_peak().get(),
                },
            });
            ctx.set_timer(
                ctx.now + self.cfg.linger,
                timer_token(self.spec.id, TK_LINGER),
            );
        }
    }
}

impl Endpoint for EpReceiver {
    fn activate(&mut self, _ctx: &mut EndpointCtx) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        match pkt.payload {
            Payload::CreditReq { .. } if !self.completed => {
                self.start_crediting(ctx);
            }
            Payload::CreditStop => {
                self.crediting = false;
            }
            Payload::Data(d) => self.on_data(pkt, d, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        match timer_kind(token) {
            TK_CREDIT => {
                if self.crediting && !self.completed {
                    self.send_credit(ctx);
                    ctx.arm_timer(
                        ctx.now + self.engine.credit_interval(),
                        timer_token(self.spec.id, TK_CREDIT),
                    );
                } else {
                    self.credit_chain_live = false;
                }
            }
            TK_FEEDBACK if self.crediting && !self.completed => {
                self.engine.feedback_update();
                ctx.arm_timer(
                    ctx.now + self.update_period,
                    timer_token(self.spec.id, TK_FEEDBACK),
                );
            }
            TK_LINGER => {
                self.torn_down = true;
            }
            _ => {}
        }
    }

    fn finished(&self) -> bool {
        self.torn_down
    }
}

/// Factory producing plain ExpressPass flows.
pub struct ExpressPassFactory {
    /// Configuration applied to every flow.
    pub cfg: EpConfig,
}

impl ExpressPassFactory {
    /// Factory with default parameters (full-rate credit allocation).
    pub fn new() -> Self {
        ExpressPassFactory {
            cfg: EpConfig::default(),
        }
    }
}

impl Default for ExpressPassFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl TransportFactory for ExpressPassFactory {
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(EpSender::new(*flow, self.cfg, env))
    }
    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(EpReceiver::new(*flow, self.cfg, env))
    }
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        Some(Box::new(ExpressPassFactory { cfg: self.cfg }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::units::{Bytes, WireBytes};
    use flexpass_simnet::consts::CREDIT_RATE_FULL_FRACTION;
    use flexpass_simnet::port::{PortConfig, QueueSched};
    use flexpass_simnet::queue::QueueConfig;
    use flexpass_simnet::sim::{NetObserver, NullObserver, Sim};
    use flexpass_simnet::switch::{ClassMap, SwitchProfile};
    use flexpass_simnet::topology::Topology;

    /// An ExpressPass-only profile: Q0 credits shaped to the full credit
    /// fraction, Q1 for data/control.
    fn ep_profile(rate: Rate) -> SwitchProfile {
        let credit_rate = rate.scale(CREDIT_RATE_FULL_FRACTION);
        SwitchProfile {
            port: PortConfig {
                rate,
                queues: vec![
                    (
                        QueueConfig::capped(WireBytes::new(1_000)),
                        QueueSched::strict(0).shaped(credit_rate, CTRL_WIRE * 2),
                    ),
                    (QueueConfig::plain(), QueueSched::strict(1)),
                ],
            },
            class_map: ClassMap::Split {
                credit: 0,
                new_data: 1,
                new_ctrl: 1,
                legacy: 1,
            },
            shared_buffer: Some((WireBytes::new(4_500_000), 0.25)),
        }
    }

    fn flow(id: u64, src: usize, dst: usize, size: u64, start: Time) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            size: Bytes::new(size),
            start,
            tag: 0,
            fg: false,
        }
    }

    struct Fct {
        done: Vec<(u64, Time)>,
    }

    impl NetObserver for Fct {
        fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
            if let AppEvent::FlowCompleted { flow, .. } = ev {
                self.done.push((*flow, now));
            }
        }
    }

    #[test]
    fn single_flow_reaches_near_line_rate() {
        let p = ep_profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(ExpressPassFactory::new()),
            Fct { done: vec![] },
        );
        // 5 MB: ideal = 5e6/1460 pkts * 1538B * 8 / 10G = 4.2 ms; credit
        // ramp-up adds some.
        sim.schedule_flow(flow(1, 0, 1, 5_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(20));
        let fct = sim.observer.done[0].1.as_millis_f64();
        assert!(fct < 6.5, "EP single-flow FCT {fct} ms too slow");
    }

    #[test]
    fn two_flows_converge_to_fair_share() {
        let p = ep_profile(Rate::from_gbps(10));
        let topo = Topology::star(3, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(ExpressPassFactory::new()),
            Fct { done: vec![] },
        );
        sim.schedule_flow(flow(1, 0, 2, 4_000_000, Time::ZERO));
        sim.schedule_flow(flow(2, 1, 2, 4_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(40));
        let t1 = sim.observer.done[0].1.as_millis_f64();
        let t2 = sim.observer.done[1].1.as_millis_f64();
        // The shared credit shaper at the receiver's switch port splits
        // credits roughly evenly, but the per-flow binary search makes the
        // completion-time gap a noisy fairness proxy: sweeping the pacing
        // jitter seeds (flow ids) gives gaps of 0.23-0.47, so assert the
        // robust bound rather than a value tuned to one lucky seed.
        assert!((t1 - t2).abs() / t1.max(t2) < 0.5, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn incast_no_timeouts() {
        // The paper's headline property: credit scheduling avoids incast
        // buffer overflow entirely, so no sender ever times out.
        let p = ep_profile(Rate::from_gbps(10));
        let topo = Topology::star(9, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);

        struct TimeoutCount {
            timeouts: u64,
            done: usize,
        }
        impl NetObserver for TimeoutCount {
            fn on_app_event(&mut self, ev: &AppEvent, _now: Time) {
                match ev {
                    AppEvent::SenderDone { stats, .. } => self.timeouts += stats.timeouts,
                    AppEvent::FlowCompleted { .. } => self.done += 1,
                }
            }
        }

        let mut sim = Sim::new(
            topo,
            Box::new(ExpressPassFactory::new()),
            TimeoutCount {
                timeouts: 0,
                done: 0,
            },
        );
        for i in 0..32u64 {
            sim.schedule_flow(flow(i, (i % 8) as usize, 8, 64_000, Time::ZERO));
        }
        sim.run_to_completion(TimeDelta::millis(20));
        assert_eq!(sim.observer.done, 32);
        assert_eq!(sim.observer.timeouts, 0, "ExpressPass must not time out");
    }

    #[test]
    fn credit_feedback_rate_rises_without_loss() {
        let env = NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        };
        let mut eng = CreditEngine::new(EpConfig::default(), &env, 1);
        let initial = eng.rate();
        // Simulate lossless periods: every credit produces data.
        for _ in 0..10 {
            eng.credits_sent_period = 100;
            eng.data_rcvd_period = 100;
            eng.feedback_update();
        }
        assert!(eng.rate() > initial * 1.5);
        assert!(eng.rate() <= 10e9 * 1.13);
    }

    #[test]
    fn credit_feedback_rate_drops_on_loss() {
        let env = NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        };
        let mut eng = CreditEngine::new(EpConfig::default(), &env, 2);
        eng.cur_rate = 10e9;
        eng.credits_sent_period = 100;
        eng.data_rcvd_period = 50;
        eng.feedback_update();
        assert!(eng.rate() < 10e9 * 0.6, "rate {}", eng.rate());
    }

    #[test]
    fn lost_data_recovered_without_stall() {
        // Force drops by shrinking the data queue drastically; EP should
        // still finish via dupack-triggered retransmission on credits.
        let mut p = ep_profile(Rate::from_gbps(10));
        p.port.queues[1].0 = QueueConfig::capped(WireBytes::new(10_000));
        let topo = Topology::star(3, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(ExpressPassFactory::new()),
            Fct { done: vec![] },
        );
        sim.schedule_flow(flow(1, 0, 2, 500_000, Time::ZERO));
        sim.schedule_flow(flow(2, 1, 2, 500_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(50));
        assert_eq!(sim.observer.done.len(), 2);
    }

    #[test]
    fn wasted_credits_counted_for_tiny_flow() {
        let p = ep_profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);

        struct Waste {
            wasted: u64,
        }
        impl NetObserver for Waste {
            fn on_app_event(&mut self, ev: &AppEvent, _now: Time) {
                if let AppEvent::SenderDone { stats, .. } = ev {
                    self.wasted += stats.credits_wasted;
                }
            }
        }
        let mut sim = Sim::new(
            topo,
            Box::new(ExpressPassFactory::new()),
            Waste { wasted: 0 },
        );
        sim.schedule_flow(flow(1, 0, 1, 1460, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(10));
        // Credits beyond the single packet are wasted until the ACK returns.
        let _ = NullObserver;
        assert!(sim.observer.wasted > 0);
    }
}
