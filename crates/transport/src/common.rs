//! Machinery shared by every transport: reassembly, ACK construction, RTT
//! estimation, the per-packet scoreboard, and the DCTCP window core.

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simcore::units::{Bytes, PktCount};
use flexpass_simnet::consts::payload_of_packet;
use flexpass_simnet::packet::{AckInfo, Subflow, MAX_SACK};

/// Per-packet sender-side state (Figure 4 of the paper uses the same set,
/// with "sent" split by sub-flow; single-loop transports use `Sent`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PktState {
    /// Never transmitted.
    Pending,
    /// In flight on the (only) sub-flow.
    Sent,
    /// In flight on the reactive sub-flow (FlexPass).
    SentReactive,
    /// In flight on the proactive sub-flow (FlexPass).
    SentProactive,
    /// Detected lost, awaiting retransmission.
    Lost,
    /// Acknowledged.
    Acked,
}

impl PktState {
    /// True for any in-flight state.
    pub fn in_flight(self) -> bool {
        matches!(
            self,
            PktState::Sent | PktState::SentReactive | PktState::SentProactive
        )
    }
}

/// Exponentially weighted RTT estimator with the standard RTO formula
/// (`srtt + 4 * rttvar`), clamped to a configurable minimum.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<TimeDelta>,
    rttvar: TimeDelta,
    min_rto: TimeDelta,
}

impl RttEstimator {
    /// Creates an estimator with the given minimum RTO.
    pub fn new(min_rto: TimeDelta) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: TimeDelta::ZERO,
            min_rto,
        }
    }

    /// Feeds one RTT sample.
    pub fn sample(&mut self, rtt: TimeDelta) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                // rttvar = 3/4 rttvar + 1/4 |diff|; srtt = 7/8 srtt + 1/8 rtt.
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }

    /// Smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<TimeDelta> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> TimeDelta {
        match self.srtt {
            None => self.min_rto,
            Some(srtt) => (srtt + self.rttvar * 4).max(self.min_rto),
        }
    }
}

/// Receiver-side reassembly over the per-flow sequence space.
///
/// Tracks which packets arrived, the in-order delivery point, duplicate
/// packets, and the peak number of bytes buffered out of order — the
/// "reordering buffer" metric of Figure 5(a).
#[derive(Clone, Debug)]
pub struct Reassembly {
    size: Bytes,
    n: u32,
    received: Vec<bool>,
    cum: u32,
    got: u32,
    dup: u64,
    buffered: Bytes,
    peak: Bytes,
}

impl Reassembly {
    /// Creates a reassembly buffer for a `size`-byte flow of `n` packets.
    pub fn new(size: Bytes, n: PktCount) -> Self {
        Reassembly {
            size,
            n: n.get(),
            received: vec![false; n.as_usize()],
            cum: 0,
            got: 0,
            dup: 0,
            buffered: Bytes::ZERO,
            peak: Bytes::ZERO,
        }
    }

    /// Records arrival of per-flow packet `flow_seq`. Returns `true` if the
    /// packet was new, `false` for a duplicate.
    pub fn on_packet(&mut self, flow_seq: u32) -> bool {
        if flow_seq >= self.n {
            debug_assert!(false, "flow_seq {flow_seq} out of range {}", self.n);
            return false;
        }
        if self.received[flow_seq as usize] {
            self.dup += 1;
            return false;
        }
        self.received[flow_seq as usize] = true;
        self.got += 1;
        if flow_seq == self.cum {
            while self.cum < self.n && self.received[self.cum as usize] {
                if self.cum != flow_seq {
                    // Was buffered out of order; now delivered.
                    self.buffered -= payload_of_packet(self.size, self.cum);
                }
                self.cum += 1;
            }
        } else {
            self.buffered += payload_of_packet(self.size, flow_seq);
            self.peak = self.peak.max(self.buffered);
        }
        true
    }

    /// True once every packet has arrived.
    pub fn complete(&self) -> bool {
        self.got == self.n
    }

    /// Packets received so far (unique).
    pub fn received_count(&self) -> u32 {
        self.got
    }

    /// Total packets expected.
    pub fn total(&self) -> u32 {
        self.n
    }

    /// Duplicate packets seen.
    pub fn duplicates(&self) -> u64 {
        self.dup
    }

    /// Peak out-of-order buffered bytes.
    pub fn reorder_peak(&self) -> Bytes {
        self.peak
    }

    /// Whether `flow_seq` has been received.
    pub fn has(&self, flow_seq: u32) -> bool {
        self.received[flow_seq as usize]
    }
}

/// Builds cumulative + selective acknowledgments over a sub-flow sequence
/// space at the receiver.
#[derive(Clone, Debug)]
pub struct AckBuilder {
    received: Vec<bool>,
    cum: u32,
}

impl AckBuilder {
    /// Creates a builder for a sub-flow expecting up to `n` packets. The
    /// space grows on demand, so `n` is only a capacity hint.
    pub fn new(n: u32) -> Self {
        AckBuilder {
            received: Vec::with_capacity(n as usize),
            cum: 0,
        }
    }

    /// Records arrival of sub-flow packet `sub_seq`.
    pub fn on_packet(&mut self, sub_seq: u32) {
        if sub_seq as usize >= self.received.len() {
            self.received.resize(sub_seq as usize + 1, false);
        }
        self.received[sub_seq as usize] = true;
        while (self.cum as usize) < self.received.len() && self.received[self.cum as usize] {
            self.cum += 1;
        }
    }

    /// Next expected sub-flow sequence (cumulative ACK value).
    pub fn cum(&self) -> u32 {
        self.cum
    }

    /// Builds an [`AckInfo`] for sub-flow `sub`, echoing `ece`, with up to
    /// [`MAX_SACK`] ranges above the cumulative point.
    ///
    /// Per RFC 2018 the first SACK block is the contiguous range containing
    /// the most recently received segment (`recent`); without this, holes
    /// beyond the third range would hide all later arrivals from the sender
    /// and wedge its in-flight accounting. Remaining blocks report the
    /// lowest ranges above `cum`. Scans are bounded so per-packet ACK
    /// generation stays O(1) even for multi-hundred-megabyte flows.
    pub fn build(&self, sub: Subflow, ece: bool, acked_flow_seq: u32, recent: u32) -> AckInfo {
        const SACK_SCAN_WINDOW: usize = 512;
        let mut sack = [(0u32, 0u32); MAX_SACK];
        let mut sack_n = 0usize;

        // Block 1: the range around `recent`, when it sits above cum.
        if recent >= self.cum && (recent as usize) < self.received.len() {
            debug_assert!(self.received[recent as usize]);
            let mut lo = recent as usize;
            let floor = (recent as usize).saturating_sub(SACK_SCAN_WINDOW);
            while lo > floor && lo > self.cum as usize && self.received[lo - 1] {
                lo -= 1;
            }
            let mut hi = recent as usize + 1;
            let ceil = (recent as usize + SACK_SCAN_WINDOW).min(self.received.len());
            while hi < ceil && self.received[hi] {
                hi += 1;
            }
            sack[0] = (lo as u32, hi as u32);
            sack_n = 1;
        }

        // Remaining blocks: lowest ranges above cum, skipping block 1.
        let mut i = self.cum as usize;
        let end = self
            .received
            .len()
            .min(self.cum as usize + SACK_SCAN_WINDOW);
        while i < end && sack_n < MAX_SACK {
            if self.received[i] {
                let lo = i as u32;
                while i < end && self.received[i] {
                    i += 1;
                }
                let range = (lo, i as u32);
                if sack_n == 0 || range != sack[0] {
                    sack[sack_n] = range;
                    sack_n += 1;
                }
            } else {
                i += 1;
            }
        }
        AckInfo {
            sub,
            cum: self.cum,
            sack,
            sack_n: sack_n as u8,
            ece,
            acked_flow_seq,
        }
    }
}

/// The DCTCP congestion window core: ECN-fraction estimation (`alpha`),
/// once-per-window multiplicative decrease, slow start, and additive
/// increase. Shared by the plain DCTCP endpoints and the FlexPass reactive
/// sub-flow.
#[derive(Clone, Debug)]
pub struct DctcpWindow {
    /// Congestion window in packets (fractional growth).
    cwnd: f64,
    ssthresh: f64,
    /// EWMA of the marked fraction.
    alpha: f64,
    g: f64,
    acked_in_window: u64,
    marked_in_window: u64,
    /// Next sequence that, once acked, ends the observation window.
    window_end: u32,
    /// Sequence that ends loss recovery (no further decrease until passed).
    recover_until: u32,
    min_cwnd: f64,
    max_cwnd: f64,
}

impl DctcpWindow {
    /// Creates a window with the given initial window and `g` gain.
    pub fn new(init_cwnd: f64, g: f64, max_cwnd: f64) -> Self {
        DctcpWindow {
            cwnd: init_cwnd,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            g,
            acked_in_window: 0,
            marked_in_window: 0,
            window_end: 0,
            recover_until: 0,
            min_cwnd: 1.0,
            max_cwnd,
        }
    }

    /// Current window in (fractional) packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Whole-packet window.
    pub fn cwnd_pkts(&self) -> u32 {
        self.cwnd.floor().max(1.0) as u32
    }

    /// Current ECN-fraction estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Processes an ACK covering `newly_acked` packets, where the highest
    /// acknowledged sequence is `acked_seq`, `ece` echoes a CE mark, and
    /// `snd_nxt` is the current send frontier (defines the next window).
    pub fn on_ack(&mut self, newly_acked: u64, acked_seq: u32, ece: bool, snd_nxt: u32) {
        self.acked_in_window += newly_acked;
        if ece {
            self.marked_in_window += newly_acked.max(1);
        }
        if acked_seq >= self.window_end && self.acked_in_window > 0 {
            // One observation window has passed: fold into alpha.
            let f = self.marked_in_window as f64 / self.acked_in_window as f64;
            self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            if self.marked_in_window > 0 && acked_seq >= self.recover_until {
                // DCTCP decrease: cwnd *= (1 - alpha/2), once per window.
                self.ssthresh = (self.cwnd * (1.0 - self.alpha / 2.0)).max(self.min_cwnd);
                self.cwnd = self.ssthresh;
                self.recover_until = snd_nxt;
            }
            self.acked_in_window = 0;
            self.marked_in_window = 0;
            self.window_end = snd_nxt;
        }
        // Growth: slow start doubles; congestion avoidance adds 1/cwnd.
        if !ece {
            if self.in_slow_start() {
                self.cwnd += newly_acked as f64;
            } else {
                self.cwnd += newly_acked as f64 / self.cwnd;
            }
            self.cwnd = self.cwnd.min(self.max_cwnd);
        }
    }

    /// Fast-retransmit loss reaction (triple duplicate ACK): halve, once per
    /// window.
    pub fn on_loss(&mut self, acked_seq: u32, snd_nxt: u32) {
        if acked_seq >= self.recover_until {
            self.ssthresh = (self.cwnd / 2.0).max(self.min_cwnd);
            self.cwnd = self.ssthresh;
            self.recover_until = snd_nxt;
        }
    }

    /// Retransmission-timeout reaction: collapse to one packet.
    pub fn on_timeout(&mut self, snd_nxt: u32) {
        self.ssthresh = (self.cwnd / 2.0).max(self.min_cwnd);
        self.cwnd = self.min_cwnd;
        self.recover_until = snd_nxt;
    }
}

/// A tiny helper tracking timer generations so stale timers are ignored.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimerGen {
    armed: u32,
    fired: u32,
}

impl TimerGen {
    /// Arms a new generation, invalidating older timers. Returns the
    /// generation number to embed in the token.
    pub fn arm(&mut self) -> u32 {
        self.armed = self.armed.wrapping_add(1);
        self.armed
    }

    /// True if `generation` is the most recently armed one (and marks it
    /// consumed).
    pub fn accept(&mut self, generation: u32) -> bool {
        if generation == self.armed && generation != self.fired {
            self.fired = generation;
            true
        } else {
            false
        }
    }

    /// Cancels any outstanding timer logically.
    pub fn cancel(&mut self) {
        self.armed = self.armed.wrapping_add(1);
    }
}

/// Computes an RTT sample from a send timestamp, guarding `None`.
pub fn rtt_sample(sent_at: Option<Time>, now: Time) -> Option<TimeDelta> {
    sent_at.map(|t| now.saturating_since(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_estimator_basic() {
        let mut e = RttEstimator::new(TimeDelta::millis(4));
        assert_eq!(e.rto(), TimeDelta::millis(4));
        e.sample(TimeDelta::micros(100));
        assert_eq!(e.srtt(), Some(TimeDelta::micros(100)));
        // RTO dominated by the 4 ms floor for microsecond RTTs.
        assert_eq!(e.rto(), TimeDelta::millis(4));
        let mut e = RttEstimator::new(TimeDelta::micros(1));
        e.sample(TimeDelta::micros(100));
        // srtt 100, rttvar 50 -> rto = 300 us.
        assert_eq!(e.rto(), TimeDelta::micros(300));
        for _ in 0..100 {
            e.sample(TimeDelta::micros(100));
        }
        // Variance decays towards zero; RTO approaches srtt.
        assert!(e.rto() < TimeDelta::micros(110));
    }

    #[test]
    fn reassembly_in_order() {
        let mut r = Reassembly::new(Bytes::new(4 * 1460), PktCount::new(4));
        for i in 0..4 {
            assert!(r.on_packet(i));
        }
        assert!(r.complete());
        assert_eq!(r.reorder_peak(), Bytes::ZERO);
        assert_eq!(r.duplicates(), 0);
    }

    #[test]
    fn reassembly_out_of_order_tracks_peak() {
        let mut r = Reassembly::new(Bytes::new(4 * 1460), PktCount::new(4));
        r.on_packet(2);
        r.on_packet(3);
        assert_eq!(r.reorder_peak(), Bytes::new(2 * 1460));
        r.on_packet(0);
        r.on_packet(1);
        assert!(r.complete());
        // Peak stays at the maximum reached.
        assert_eq!(r.reorder_peak(), Bytes::new(2 * 1460));
    }

    #[test]
    fn reassembly_duplicates_counted() {
        let mut r = Reassembly::new(Bytes::new(2 * 1460), PktCount::new(2));
        assert!(r.on_packet(0));
        assert!(!r.on_packet(0));
        assert_eq!(r.duplicates(), 1);
        assert!(!r.complete());
    }

    #[test]
    fn ack_builder_cum_and_sack() {
        let mut a = AckBuilder::new(16);
        a.on_packet(0);
        a.on_packet(1);
        a.on_packet(3);
        a.on_packet(4);
        a.on_packet(7);
        let ack = a.build(Subflow::Only, false, 7, 7);
        assert_eq!(ack.cum, 2);
        assert_eq!(ack.sack_n, 2);
        // Block 1 holds the most recent arrival's range (RFC 2018).
        assert_eq!(ack.sack[0], (7, 8));
        assert_eq!(ack.sack[1], (3, 5));
        a.on_packet(2);
        let ack = a.build(Subflow::Only, true, 2, 2);
        assert_eq!(ack.cum, 5);
        assert!(ack.ece);
    }

    #[test]
    fn ack_builder_caps_sack_ranges() {
        let mut a = AckBuilder::new(32);
        // Alternate received/missing to create many ranges.
        for i in (1..20).step_by(2) {
            a.on_packet(i);
        }
        let ack = a.build(Subflow::Only, false, 19, 19);
        assert_eq!(ack.cum, 0);
        assert_eq!(ack.sack_n as usize, MAX_SACK);
        // The newest arrival is always reported first.
        assert_eq!(ack.sack[0], (19, 20));
    }

    #[test]
    fn dctcp_window_slow_start_then_reduce() {
        let mut w = DctcpWindow::new(10.0, 1.0 / 16.0, 1000.0);
        assert!(w.in_slow_start());
        w.on_ack(10, 9, false, 20);
        assert!((w.cwnd() - 20.0).abs() < 1e-9);
        // A fully marked window eventually collapses the window.
        let before = w.cwnd();
        let mut seq = 20;
        for _ in 0..50 {
            w.on_ack(10, seq, true, seq + 10);
            seq += 10;
        }
        assert!(w.cwnd() < before, "cwnd {} not reduced", w.cwnd());
        assert!(w.alpha() > 0.9);
    }

    #[test]
    fn dctcp_window_alpha_decays_without_marks() {
        let mut w = DctcpWindow::new(10.0, 1.0 / 16.0, 1000.0);
        let mut seq = 0;
        for _ in 0..100 {
            w.on_ack(10, seq, false, seq + 10);
            seq += 10;
        }
        assert!(w.alpha() < 0.01, "alpha {}", w.alpha());
    }

    #[test]
    fn dctcp_window_reduces_once_per_window() {
        let mut w = DctcpWindow::new(100.0, 1.0 / 16.0, 1000.0);
        // Exit slow start first via a loss.
        w.on_loss(0, 100);
        let after_loss = w.cwnd();
        assert!((after_loss - 50.0).abs() < 1e-9);
        // A second loss within the same window must not reduce again
        // (bitwise-unchanged, so exact equality is the right check).
        #[allow(clippy::float_cmp)]
        {
            w.on_loss(50, 120);
            assert_eq!(w.cwnd(), after_loss);
        }
        // After recovery passes, a new loss reduces again.
        w.on_loss(120, 150);
        assert!((w.cwnd() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn dctcp_timeout_collapses() {
        let mut w = DctcpWindow::new(64.0, 1.0 / 16.0, 1000.0);
        w.on_timeout(64);
        assert_eq!(w.cwnd_pkts(), 1);
    }

    #[test]
    fn timer_gen_accepts_only_latest() {
        let mut t = TimerGen::default();
        let g1 = t.arm();
        let g2 = t.arm();
        assert!(!t.accept(g1));
        assert!(t.accept(g2));
        assert!(!t.accept(g2), "double fire rejected");
        t.cancel();
        let g3 = t.arm();
        assert!(t.accept(g3));
    }

    #[test]
    fn pkt_state_in_flight() {
        assert!(PktState::Sent.in_flight());
        assert!(PktState::SentReactive.in_flight());
        assert!(!PktState::Lost.in_flight());
        assert!(!PktState::Acked.in_flight());
        assert!(!PktState::Pending.in_flight());
    }
}
