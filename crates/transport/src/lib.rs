//! Baseline datacenter transports for the FlexPass reproduction.
//!
//! * [`dctcp`] — DCTCP [Alizadeh 2010]: ECN-fraction window control with
//!   SACK loss recovery; the "legacy reactive" transport throughout the
//!   paper's evaluation, and (as a reusable window core) the congestion
//!   control of FlexPass's reactive sub-flow.
//! * [`expresspass`] — ExpressPass [Cho 2017]: receiver-driven, credit-
//!   scheduled transport with per-switch credit shaping and credit-rate
//!   feedback control; the proactive control loop FlexPass adopts.
//! * [`homa`] — a simplified Homa [Montazeri 2018]: receiver-driven grants
//!   over strict priority queues; used for the motivation experiment
//!   (Figure 1b).
//! * [`common`] — reassembly, ACK construction, RTT estimation, and the
//!   per-packet scoreboard shared by every transport here and by FlexPass.

pub mod common;
pub mod dctcp;
pub mod expresspass;
pub mod homa;

pub use common::{AckBuilder, DctcpWindow, PktState, Reassembly, RttEstimator};
pub use dctcp::{DctcpConfig, DctcpFactory, DctcpReceiver, DctcpSender};
pub use expresspass::{CreditEngine, EpConfig, EpReceiver, EpSender, ExpressPassFactory};
pub use homa::{HomaConfig, HomaFactory, HomaReceiver, HomaSender};
