//! A simplified Homa [Montazeri 2018] for the Figure 1(b) motivation
//! experiment: receiver-driven grants over strict priority queues.
//!
//! The sender blindly transmits one RTT worth of "unscheduled" packets; the
//! receiver then issues grants that keep one RTT of data in flight until the
//! message completes. Data packets carry a network priority the switch maps
//! to one of 8 strict queues ([`flexpass_simnet::switch::ClassMap::ByPrio`]).
//! Reliability uses the same per-packet ACK machinery as the other
//! transports (real Homa uses resend requests; the difference is immaterial
//! for the aggregate-throughput motivation experiment this backs).

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::consts::{data_wire_bytes, packets_for, payload_of_packet, CTRL_WIRE};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats, TxStats};
use flexpass_simnet::packet::{
    AckInfo, DataInfo, FlowSpec, GrantInfo, Packet, Payload, Subflow, TrafficClass,
};
use flexpass_simnet::sim::{timer_kind, timer_token, NetEnv, TransportFactory};
use flexpass_simnet::trace;

use crate::common::{AckBuilder, PktState, Reassembly, RttEstimator};

/// Timer kind: sender retransmission backstop.
const TK_RTO: u16 = 7;
/// Timer kind: receiver linger teardown.
const TK_LINGER: u16 = 8;

/// Homa-lite parameters.
#[derive(Clone, Copy, Debug)]
pub struct HomaConfig {
    /// One RTT worth of data (the unscheduled window and the granted
    /// in-flight target).
    pub rtt_bytes: Bytes,
    /// Priority used by unscheduled packets (0 is the network's highest).
    pub unsched_prio: u8,
    /// Priority granted to scheduled packets of large messages.
    pub sched_prio: u8,
    /// Data traffic class.
    pub data_class: TrafficClass,
    /// Control traffic class (grants, ACKs).
    pub ctrl_class: TrafficClass,
    /// Sender retransmission floor.
    pub min_rto: TimeDelta,
    /// Receiver linger before teardown.
    pub linger: TimeDelta,
}

impl Default for HomaConfig {
    fn default() -> Self {
        HomaConfig {
            // 25 kB ~ BDP of a 10 Gbps link at 20 us RTT.
            rtt_bytes: Bytes::new(25_000),
            unsched_prio: 1,
            sched_prio: 6,
            data_class: TrafficClass::NewData,
            ctrl_class: TrafficClass::NewCtrl,
            min_rto: TimeDelta::millis(4),
            linger: TimeDelta::millis(16),
        }
    }
}

impl HomaConfig {
    /// The unscheduled / grant window in packets.
    pub fn rtt_pkts(&self) -> u32 {
        packets_for(self.rtt_bytes).get()
    }
}

/// Homa-lite sender.
pub struct HomaSender {
    spec: FlowSpec,
    cfg: HomaConfig,
    n: u32,
    states: Vec<PktState>,
    granted: u32,
    snd_una: u32,
    next_pending: u32,
    acked: u32,
    dupacks: u32,
    rtt: RttEstimator,
    last_progress: Time,
    /// Deadline of the currently armed (cancellable) RTO, if any.
    rto_deadline: Option<Time>,
    rto_backoff: u32,
    /// Packets currently marked `Lost`.
    lost: std::collections::BTreeSet<u32>,
    stats: TxStats,
    done: bool,
}

impl HomaSender {
    /// Creates a sender for `spec`.
    pub fn new(spec: FlowSpec, cfg: HomaConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size).get();
        HomaSender {
            spec,
            cfg,
            n,
            states: vec![PktState::Pending; n as usize],
            granted: cfg.rtt_pkts().min(n),
            snd_una: 0,
            next_pending: 0,
            acked: 0,
            dupacks: 0,
            rtt: RttEstimator::new(cfg.min_rto),
            last_progress: Time::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            lost: std::collections::BTreeSet::new(),
            stats: TxStats::default(),
            done: false,
        }
    }

    fn transmit(&mut self, seq: u32, prio: u8, retx: bool, ctx: &mut EndpointCtx) {
        self.lost.remove(&seq);
        self.states[seq as usize] = PktState::Sent;
        let pay = payload_of_packet(self.spec.size, seq);
        self.stats.data_pkts += 1;
        self.stats.data_bytes += pay.get();
        if retx {
            self.stats.retx_pkts += 1;
            self.stats.redundant_bytes += pay.get();
            trace::retransmit(self.spec.id, seq);
        }
        ctx.send(
            Packet::new(
                self.spec.id,
                self.spec.src,
                self.spec.dst,
                data_wire_bytes(pay),
                self.cfg.data_class,
                Payload::Data(DataInfo {
                    flow_seq: seq,
                    sub_seq: seq,
                    sub: Subflow::Only,
                    payload: pay,
                    retx,
                }),
            )
            .with_prio(prio),
        );
    }

    /// Keeps the armed RTO tracking `last_progress + rto()` via
    /// cancel-and-replace arming (monotone-maximum deadline, matching the
    /// envelope of the old lazy fire-and-recheck chain); cancelled on done.
    fn update_rto(&mut self, ctx: &mut EndpointCtx) {
        let token = timer_token(self.spec.id, TK_RTO);
        if self.done {
            if self.rto_deadline.take().is_some() {
                ctx.cancel_timer(token);
            }
            return;
        }
        let at = match self.rto_deadline {
            Some(d) => (self.last_progress + self.rto()).max(d),
            None => ctx.now + self.rto(),
        };
        if self.rto_deadline != Some(at) {
            self.rto_deadline = Some(at);
            ctx.arm_timer(at, token);
        }
    }

    fn rto(&self) -> TimeDelta {
        self.rtt.rto() * (1u64 << self.rto_backoff.min(8))
    }

    /// Sends everything currently authorized by `granted`.
    fn pump(&mut self, prio: u8, ctx: &mut EndpointCtx) {
        loop {
            // Retransmissions first (at the scheduled priority).
            if let Some(&seq) = self.lost.iter().next() {
                self.transmit(seq, prio, true, ctx);
                continue;
            }
            while self.next_pending < self.n
                && self.states[self.next_pending as usize] != PktState::Pending
            {
                self.next_pending += 1;
            }
            if self.next_pending >= self.granted.min(self.n) {
                break;
            }
            let seq = self.next_pending;
            self.next_pending += 1;
            self.transmit(seq, prio, false, ctx);
        }
        self.update_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckInfo, ctx: &mut EndpointCtx) {
        let prev_una = self.snd_una;
        let mut newly = 0u64;
        while self.snd_una < ack.cum.min(self.n) {
            if self.states[self.snd_una as usize] != PktState::Acked {
                self.states[self.snd_una as usize] = PktState::Acked;
                self.lost.remove(&self.snd_una);
                self.acked += 1;
                newly += 1;
            }
            self.snd_una += 1;
        }
        for r in 0..ack.sack_n as usize {
            let (lo, hi) = ack.sack[r];
            for s in lo..hi.min(self.n) {
                if self.states[s as usize] != PktState::Acked {
                    self.states[s as usize] = PktState::Acked;
                    self.lost.remove(&s);
                    self.acked += 1;
                    newly += 1;
                }
            }
        }
        if newly > 0 {
            self.last_progress = ctx.now;
            self.rto_backoff = 0;
            self.dupacks = 0;
        } else if ack.cum == prev_una && ack.cum < self.n {
            self.dupacks += 1;
            if self.dupacks == 3 {
                self.dupacks = 0;
                if self.states[self.snd_una as usize] == PktState::Sent {
                    self.states[self.snd_una as usize] = PktState::Lost;
                    self.lost.insert(self.snd_una);
                    self.pump(self.cfg.sched_prio, ctx);
                }
            }
        }
        if self.acked >= self.n && !self.done {
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: self.stats,
            });
        }
        self.update_rto(ctx);
    }
}

impl Endpoint for HomaSender {
    fn activate(&mut self, ctx: &mut EndpointCtx) {
        self.last_progress = ctx.now;
        // Unscheduled burst: one RTT of data, blindly.
        self.pump(self.cfg.unsched_prio, ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        match pkt.payload {
            Payload::Grant(g) => {
                self.granted = self.granted.max(g.upto.min(self.n));
                self.pump(g.prio, ctx);
            }
            Payload::Ack(a) => self.on_ack(&a, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        if timer_kind(token) != TK_RTO {
            return;
        }
        self.rto_deadline = None;
        if self.done {
            return;
        }
        self.stats.timeouts += 1;
        self.rto_backoff += 1;
        trace::rto(self.spec.id, self.rto_backoff);
        for s in self.snd_una..self.next_pending.min(self.n) {
            if self.states[s as usize] == PktState::Sent {
                self.states[s as usize] = PktState::Lost;
                self.lost.insert(s);
            }
        }
        self.last_progress = ctx.now;
        self.pump(self.cfg.sched_prio, ctx);
    }

    fn finished(&self) -> bool {
        // The RTO is cancelled on completion — no stale fire to wait out.
        self.done
    }
}

/// Homa-lite receiver: grants to keep one RTT in flight, acknowledges every
/// packet, reassembles, and completes.
pub struct HomaReceiver {
    spec: FlowSpec,
    cfg: HomaConfig,
    n: u32,
    reasm: Reassembly,
    acks: AckBuilder,
    granted: u32,
    completed: bool,
    torn_down: bool,
}

impl HomaReceiver {
    /// Creates a receiver for `spec`.
    pub fn new(spec: FlowSpec, cfg: HomaConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size);
        let reasm = Reassembly::new(spec.size, n);
        let n = n.get();
        HomaReceiver {
            spec,
            cfg,
            n,
            reasm,
            acks: AckBuilder::new(n),
            granted: cfg.rtt_pkts().min(n),
            completed: false,
            torn_down: false,
        }
    }
}

impl Endpoint for HomaReceiver {
    fn activate(&mut self, _ctx: &mut EndpointCtx) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        if let Payload::Data(d) = pkt.payload {
            self.reasm.on_packet(d.flow_seq);
            self.acks.on_packet(d.sub_seq);
            let info = self
                .acks
                .build(Subflow::Only, pkt.ecn_ce, d.flow_seq, d.sub_seq);
            ctx.send(Packet::new(
                self.spec.id,
                self.spec.dst,
                self.spec.src,
                CTRL_WIRE,
                self.cfg.ctrl_class,
                Payload::Ack(info),
            ));
            // Grant to keep one RTT of data outstanding (self-clocked).
            let target = (self.reasm.received_count() + self.cfg.rtt_pkts()).min(self.n);
            if target > self.granted && !self.reasm.complete() {
                self.granted = target;
                ctx.send(Packet::new(
                    self.spec.id,
                    self.spec.dst,
                    self.spec.src,
                    CTRL_WIRE,
                    self.cfg.ctrl_class,
                    Payload::Grant(GrantInfo {
                        upto: target,
                        prio: self.cfg.sched_prio,
                    }),
                ));
            }
            if self.reasm.complete() && !self.completed {
                self.completed = true;
                ctx.emit(AppEvent::FlowCompleted {
                    flow: self.spec.id,
                    stats: RxStats {
                        pkts_received: self.reasm.received_count() as u64 + self.reasm.duplicates(),
                        dup_pkts: self.reasm.duplicates(),
                        reorder_peak_bytes: self.reasm.reorder_peak().get(),
                    },
                });
                ctx.set_timer(
                    ctx.now + self.cfg.linger,
                    timer_token(self.spec.id, TK_LINGER),
                );
            }
        }
    }

    fn on_timer(&mut self, token: u64, _ctx: &mut EndpointCtx) {
        if timer_kind(token) == TK_LINGER {
            self.torn_down = true;
        }
    }

    fn finished(&self) -> bool {
        self.torn_down
    }
}

/// Factory producing Homa-lite flows.
pub struct HomaFactory {
    /// Configuration applied to every flow.
    pub cfg: HomaConfig,
}

impl HomaFactory {
    /// Factory with default parameters.
    pub fn new(cfg: HomaConfig) -> Self {
        HomaFactory { cfg }
    }
}

impl TransportFactory for HomaFactory {
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(HomaSender::new(*flow, self.cfg, env))
    }
    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(HomaReceiver::new(*flow, self.cfg, env))
    }
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        Some(Box::new(HomaFactory { cfg: self.cfg }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::WireBytes;
    use flexpass_simnet::port::{PortConfig, QueueSched};
    use flexpass_simnet::queue::QueueConfig;
    use flexpass_simnet::sim::{NetObserver, Sim};
    use flexpass_simnet::switch::{ClassMap, SwitchProfile};
    use flexpass_simnet::topology::Topology;

    /// Eight strict priority queues, control at queue 0 (paper footnote 3).
    fn homa_profile(rate: Rate) -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate,
                queues: (0..8)
                    .map(|i| (QueueConfig::plain(), QueueSched::strict(i)))
                    .collect(),
            },
            class_map: ClassMap::ByPrio {
                base: 0,
                n: 8,
                ctrl: 0,
                legacy: 0,
            },
            shared_buffer: Some((WireBytes::new(4_500_000), 0.25)),
        }
    }

    fn flow(id: u64, src: usize, dst: usize, size: u64, start: Time) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            size: Bytes::new(size),
            start,
            tag: 0,
            fg: false,
        }
    }

    struct Fct {
        done: Vec<(u64, Time)>,
    }
    impl NetObserver for Fct {
        fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
            if let AppEvent::FlowCompleted { flow, .. } = ev {
                self.done.push((*flow, now));
            }
        }
    }

    #[test]
    fn single_message_completes_fast() {
        let p = homa_profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(HomaFactory::new(HomaConfig::default())),
            Fct { done: vec![] },
        );
        // 20 kB fits in the unscheduled window: completes in ~1 one-way +
        // serialization, well under one RTT + grants.
        sim.schedule_flow(flow(1, 0, 1, 20_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(5));
        let at = sim.observer.done[0].1;
        assert!(at < Time::from_micros(40), "unscheduled FCT {at:?}");
    }

    #[test]
    fn long_message_sustains_throughput() {
        let p = homa_profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(HomaFactory::new(HomaConfig::default())),
            Fct { done: vec![] },
        );
        sim.schedule_flow(flow(1, 0, 1, 5_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(10));
        let fct = sim.observer.done[0].1.as_millis_f64();
        // Ideal 4.2 ms; grant clocking should stay close.
        assert!(fct < 5.5, "Homa long-flow FCT {fct} ms");
    }

    #[test]
    fn many_flows_all_complete() {
        let p = homa_profile(Rate::from_gbps(10));
        let topo = Topology::star(9, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(HomaFactory::new(HomaConfig::default())),
            Fct { done: vec![] },
        );
        for i in 0..16u64 {
            sim.schedule_flow(flow(i, (i % 8) as usize, 8, 200_000, Time::ZERO));
        }
        sim.run_to_completion(TimeDelta::millis(50));
        assert_eq!(sim.observer.done.len(), 16);
    }

    #[test]
    fn grants_cap_in_flight() {
        let cfg = HomaConfig::default();
        assert_eq!(cfg.rtt_pkts(), 18);
        let env = NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        };
        let s = HomaSender::new(flow(1, 0, 1, 10_000_000, Time::ZERO), cfg, &env);
        assert_eq!(s.granted, 18);
    }
}
