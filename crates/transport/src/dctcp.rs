//! DCTCP [Alizadeh 2010]: the legacy reactive transport of the evaluation.
//!
//! Per-packet ACKs with SACK, triple-duplicate-ACK fast retransmit, a lazy
//! retransmission timer with the paper's 4 ms `RTO_min`, and the DCTCP
//! ECN-fraction window (see [`crate::common::DctcpWindow`]).

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simnet::consts::{data_wire_bytes, packets_for, payload_of_packet, CTRL_WIRE};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats, TxStats};
use flexpass_simnet::packet::{
    AckInfo, DataInfo, FlowSpec, Packet, Payload, Subflow, TrafficClass,
};
use flexpass_simnet::sim::{timer_kind, timer_token, NetEnv, TransportFactory};
use flexpass_simnet::trace;

use crate::common::{AckBuilder, DctcpWindow, PktState, Reassembly, RttEstimator};

/// Timer kind: sender retransmission timer.
const TK_RTO: u16 = 1;
/// Timer kind: receiver linger before teardown.
const TK_LINGER: u16 = 2;

/// DCTCP parameters (paper defaults for the large-scale simulations).
#[derive(Clone, Copy, Debug)]
pub struct DctcpConfig {
    /// Initial congestion window in packets.
    pub init_cwnd: f64,
    /// ECN-fraction EWMA gain.
    pub g: f64,
    /// Minimum retransmission timeout (paper: 4 ms).
    pub min_rto: TimeDelta,
    /// Upper bound on the window, in packets.
    pub max_cwnd: f64,
    /// Traffic class for data and ACKs (Legacy for the baseline; schemes
    /// may remap).
    pub class: TrafficClass,
    /// How long a completed receiver lingers to re-ACK stray
    /// retransmissions before tearing down.
    pub linger: TimeDelta,
    /// Acknowledge every Nth in-order packet (1 = per-packet, the
    /// simulation default; 2 = standard delayed ACKs). Out-of-order
    /// arrivals and CE-marked packets are always acknowledged immediately
    /// so loss detection and DCTCP's mark feedback stay timely.
    pub ack_every: u32,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig {
            init_cwnd: 10.0,
            g: 1.0 / 16.0,
            min_rto: TimeDelta::millis(4),
            max_cwnd: 4096.0,
            class: TrafficClass::Legacy,
            linger: TimeDelta::millis(16),
            ack_every: 1,
        }
    }
}

/// DCTCP sender endpoint.
pub struct DctcpSender {
    spec: FlowSpec,
    cfg: DctcpConfig,
    n: u32,
    states: Vec<PktState>,
    sent_at: Vec<Option<Time>>,
    win: DctcpWindow,
    rtt: RttEstimator,
    snd_una: u32,
    next_pending: u32,
    in_flight: u32,
    dupacks: u32,
    /// Fast-recovery high-water mark: `Some(point)` while recovering from a
    /// triple-duplicate-ACK loss, where `point` was the send frontier when
    /// recovery started. Cumulative ACKs below `point` are partial ACKs
    /// (NewReno): each one exposes the next hole, which is retransmitted
    /// immediately instead of waiting for three fresh duplicate ACKs.
    recovery: Option<u32>,
    /// Deadline of the currently armed (cancellable) RTO, if any; used to
    /// skip redundant re-arms when the deadline is unchanged.
    rto_deadline: Option<Time>,
    rto_backoff: u32,
    last_progress: Time,
    /// Packets currently marked `Lost`, kept sorted for O(log n) lookup.
    lost: std::collections::BTreeSet<u32>,
    stats: TxStats,
    done: bool,
}

impl DctcpSender {
    /// Creates a sender for `spec`.
    pub fn new(spec: FlowSpec, cfg: DctcpConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size).get();
        DctcpSender {
            spec,
            cfg,
            n,
            states: vec![PktState::Pending; n as usize],
            sent_at: vec![None; n as usize],
            win: DctcpWindow::new(cfg.init_cwnd, cfg.g, cfg.max_cwnd),
            rtt: RttEstimator::new(cfg.min_rto),
            snd_una: 0,
            next_pending: 0,
            in_flight: 0,
            dupacks: 0,
            recovery: None,
            rto_deadline: None,
            rto_backoff: 0,
            last_progress: Time::ZERO,
            lost: std::collections::BTreeSet::new(),
            stats: TxStats::default(),
            done: false,
        }
    }

    /// Congestion window (for tests / introspection).
    pub fn cwnd(&self) -> f64 {
        self.win.cwnd()
    }

    /// Transmission statistics so far.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    fn data_packet(&self, seq: u32, retx: bool) -> Packet {
        let pay = payload_of_packet(self.spec.size, seq);
        Packet::new(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            data_wire_bytes(pay),
            self.cfg.class,
            Payload::Data(DataInfo {
                flow_seq: seq,
                sub_seq: seq,
                sub: Subflow::Only,
                payload: pay,
                retx,
            }),
        )
        .ecn()
    }

    fn transmit(&mut self, seq: u32, retx: bool, ctx: &mut EndpointCtx) {
        debug_assert!(!self.states[seq as usize].in_flight());
        self.lost.remove(&seq);
        self.states[seq as usize] = PktState::Sent;
        self.sent_at[seq as usize] = Some(ctx.now);
        self.in_flight += 1;
        self.stats.data_pkts += 1;
        let pay = payload_of_packet(self.spec.size, seq);
        self.stats.data_bytes += pay.get();
        if retx {
            self.stats.retx_pkts += 1;
            self.stats.redundant_bytes += pay.get();
            trace::retransmit(self.spec.id, seq);
        }
        ctx.send(self.data_packet(seq, retx));
    }

    /// Keeps the armed RTO tracking `last_progress + rto()` using
    /// cancel-and-replace arming: the timer only ever fires at a genuine
    /// timeout, instead of the old lazy pattern where stale entries fired
    /// as no-ops and re-armed themselves.
    ///
    /// The deadline is a monotone maximum — a fresh arm starts at
    /// `now + rto()` and re-arms never move it earlier — which is exactly
    /// the envelope the lazy fire-and-recheck chain used to converge to,
    /// so timeout instants are unchanged.
    fn update_rto(&mut self, ctx: &mut EndpointCtx) {
        let token = timer_token(self.spec.id, TK_RTO);
        let needed = !self.done
            && (self.in_flight > 0 || !self.lost.is_empty() || self.next_pending < self.n);
        if !needed {
            if self.rto_deadline.take().is_some() {
                ctx.cancel_timer(token);
            }
            return;
        }
        let at = match self.rto_deadline {
            Some(d) => (self.last_progress + self.rto()).max(d),
            None => ctx.now + self.rto(),
        };
        if self.rto_deadline != Some(at) {
            self.rto_deadline = Some(at);
            ctx.arm_timer(at, token);
        }
    }

    fn rto(&self) -> TimeDelta {
        self.rtt.rto() * (1u64 << self.rto_backoff.min(8))
    }

    /// Sends as much as the window allows: lost packets first, then new.
    fn pump(&mut self, ctx: &mut EndpointCtx) {
        let cwnd = self.win.cwnd_pkts();
        while self.in_flight < cwnd {
            // Retransmissions first.
            if let Some(seq) = self.first_lost() {
                self.transmit(seq, true, ctx);
                continue;
            }
            // New data.
            while self.next_pending < self.n
                && self.states[self.next_pending as usize] != PktState::Pending
            {
                self.next_pending += 1;
            }
            if self.next_pending >= self.n {
                break;
            }
            let seq = self.next_pending;
            self.next_pending += 1;
            self.transmit(seq, false, ctx);
        }
    }

    fn first_lost(&self) -> Option<u32> {
        self.lost.iter().next().copied()
    }

    fn mark_acked(&mut self, seq: u32, now: Time) -> bool {
        let st = &mut self.states[seq as usize];
        if *st == PktState::Acked {
            return false;
        }
        if st.in_flight() {
            self.in_flight -= 1;
        }
        *st = PktState::Acked;
        self.lost.remove(&seq);
        if let Some(t) = self.sent_at[seq as usize] {
            self.rtt.sample(now.saturating_since(t));
        }
        true
    }

    /// Marks `seq` lost (if still in flight) so [`Self::pump`] retransmits
    /// it ahead of new data.
    fn mark_lost(&mut self, seq: u32) {
        if self.states[seq as usize].in_flight() {
            self.states[seq as usize] = PktState::Lost;
            self.lost.insert(seq);
            self.in_flight -= 1;
        }
    }

    fn on_ack(&mut self, ack: &AckInfo, ctx: &mut EndpointCtx) {
        let mut newly = 0u64;
        let prev_una = self.snd_una;
        // Highest sequence this ACK presents evidence for: the top of the
        // cumulative range and of each SACK block. `None` when the ACK
        // carries no acknowledgment at all (pure duplicate, empty SACK).
        let mut high: Option<u32> = match ack.cum.min(self.n) {
            0 => None,
            c => Some(c - 1),
        };
        while self.snd_una < ack.cum.min(self.n) {
            if self.mark_acked(self.snd_una, ctx.now) {
                newly += 1;
            }
            self.snd_una += 1;
        }
        for r in 0..ack.sack_n as usize {
            let (lo, hi) = ack.sack[r];
            let hi = hi.min(self.n);
            if lo < hi {
                high = Some(high.map_or(hi - 1, |h| h.max(hi - 1)));
            }
            for s in lo..hi {
                if self.mark_acked(s, ctx.now) {
                    newly += 1;
                }
            }
        }
        if newly > 0 {
            self.last_progress = ctx.now;
            self.rto_backoff = 0;
            if let Some(high) = high {
                self.win.on_ack(newly, high, ack.ece, self.next_pending);
            }
        }
        if self.snd_una > prev_una {
            // The cumulative point advanced: duplicate-ACK counting restarts.
            self.dupacks = 0;
            match self.recovery {
                Some(point) if self.snd_una < point => {
                    // Partial ACK (NewReno): the packet now at snd_una is the
                    // next hole from the same loss event. Retransmit it
                    // immediately; the window was already reduced when
                    // recovery started.
                    self.mark_lost(self.snd_una);
                }
                Some(_) => self.recovery = None,
                None => {}
            }
        } else if ack.cum == prev_una && ack.cum < self.n {
            // A duplicate cumulative ACK, even one whose SACK blocks carry
            // new information: the receiver is still missing snd_una.
            self.dupacks += 1;
            if self.dupacks >= 3 && self.recovery.is_none() {
                // Fast retransmit the first unacked packet, once per window.
                self.mark_lost(self.snd_una);
                self.recovery = Some(self.next_pending);
                self.win.on_loss(ack.cum, self.next_pending);
            }
        }

        if self.snd_una >= self.n && !self.done {
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: self.stats,
            });
            self.update_rto(ctx); // cancels the armed timer
            return;
        }
        self.pump(ctx);
        self.update_rto(ctx);
    }

    fn on_rto(&mut self, ctx: &mut EndpointCtx) {
        self.rto_deadline = None;
        if self.done {
            return;
        }
        if self.in_flight == 0 && self.first_lost().is_none() && self.next_pending >= self.n {
            // Everything sent and acked-or-pending-ack; nothing to do.
            return;
        }
        // Timeout: every in-flight packet is presumed lost. (With
        // cancel-and-replace arming a fire always means the deadline
        // genuinely passed — no lazy re-check needed.)
        self.stats.timeouts += 1;
        self.rto_backoff += 1;
        self.recovery = None;
        trace::rto(self.spec.id, self.rto_backoff);
        for s in self.snd_una..self.next_pending.min(self.n) {
            if self.states[s as usize].in_flight() {
                self.states[s as usize] = PktState::Lost;
                self.lost.insert(s);
                self.in_flight -= 1;
            }
        }
        self.win.on_timeout(self.next_pending);
        self.last_progress = ctx.now;
        self.pump(ctx);
        self.update_rto(ctx);
    }
}

impl Endpoint for DctcpSender {
    fn activate(&mut self, ctx: &mut EndpointCtx) {
        self.last_progress = ctx.now;
        self.pump(ctx);
        self.update_rto(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        if let Payload::Ack(ack) = pkt.payload {
            self.on_ack(&ack, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        if timer_kind(token) == TK_RTO {
            self.on_rto(ctx);
        }
    }

    fn finished(&self) -> bool {
        // The RTO is cancelled on completion, so no teardown linger is
        // needed to absorb a stale timer fire.
        self.done
    }
}

/// DCTCP receiver endpoint: per-packet cumulative + SACK acknowledgment,
/// flow completion detection, and a linger period to re-ACK stray
/// retransmissions.
pub struct DctcpReceiver {
    spec: FlowSpec,
    cfg: DctcpConfig,
    reasm: Reassembly,
    acks: AckBuilder,
    /// In-order packets received since the last ACK (delayed acking).
    unacked: u32,
    completed: bool,
    torn_down: bool,
}

impl DctcpReceiver {
    /// Creates a receiver for `spec`.
    pub fn new(spec: FlowSpec, cfg: DctcpConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size);
        let reasm = Reassembly::new(spec.size, n);
        let n = n.get();
        DctcpReceiver {
            spec,
            cfg,
            reasm,
            acks: AckBuilder::new(n),
            unacked: 0,
            completed: false,
            torn_down: false,
        }
    }

    fn ack_packet(&self, info: AckInfo) -> Packet {
        Packet::new(
            self.spec.id,
            self.spec.dst,
            self.spec.src,
            CTRL_WIRE,
            self.cfg.class,
            Payload::Ack(info),
        )
    }
}

impl Endpoint for DctcpReceiver {
    fn activate(&mut self, _ctx: &mut EndpointCtx) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        if let Payload::Data(d) = pkt.payload {
            self.reasm.on_packet(d.flow_seq);
            let in_order = d.sub_seq == self.acks.cum();
            self.acks.on_packet(d.sub_seq);
            self.unacked += 1;
            // Delayed acking: hold back clean in-order arrivals below the
            // threshold; always ACK marks, reordering, and flow tail.
            let must_ack = pkt.ecn_ce
                || !in_order
                || self.unacked >= self.cfg.ack_every
                || self.reasm.complete();
            if must_ack {
                self.unacked = 0;
                let info = self
                    .acks
                    .build(Subflow::Only, pkt.ecn_ce, d.flow_seq, d.sub_seq);
                ctx.send(self.ack_packet(info));
            }
            if self.reasm.complete() && !self.completed {
                self.completed = true;
                ctx.emit(AppEvent::FlowCompleted {
                    flow: self.spec.id,
                    stats: RxStats {
                        pkts_received: self.reasm.received_count() as u64 + self.reasm.duplicates(),
                        dup_pkts: self.reasm.duplicates(),
                        reorder_peak_bytes: self.reasm.reorder_peak().get(),
                    },
                });
                ctx.set_timer(
                    ctx.now + self.cfg.linger,
                    timer_token(self.spec.id, TK_LINGER),
                );
            }
        }
    }

    fn on_timer(&mut self, token: u64, _ctx: &mut EndpointCtx) {
        if timer_kind(token) == TK_LINGER {
            self.torn_down = true;
        }
    }

    fn finished(&self) -> bool {
        self.torn_down
    }
}

/// Factory producing plain DCTCP flows.
pub struct DctcpFactory {
    /// Configuration applied to every flow.
    pub cfg: DctcpConfig,
}

impl DctcpFactory {
    /// Factory with default (paper) parameters.
    pub fn new() -> Self {
        DctcpFactory {
            cfg: DctcpConfig::default(),
        }
    }
}

impl Default for DctcpFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl TransportFactory for DctcpFactory {
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(DctcpSender::new(*flow, self.cfg, env))
    }
    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(DctcpReceiver::new(*flow, self.cfg, env))
    }
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        Some(Box::new(DctcpFactory { cfg: self.cfg }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::{Bytes, WireBytes};
    use flexpass_simnet::port::{PortConfig, QueueSched};
    use flexpass_simnet::queue::QueueConfig;
    use flexpass_simnet::sim::{NetObserver, NodeId, NullObserver, Sim};
    use flexpass_simnet::switch::{ClassMap, SwitchProfile};
    use flexpass_simnet::topology::Topology;

    fn profile(rate: Rate, ecn_kb: u64, cap: Option<u64>) -> SwitchProfile {
        let qc = match cap {
            Some(c) => {
                QueueConfig::capped(WireBytes::new(c)).with_ecn(WireBytes::new(ecn_kb * 1000))
            }
            None => QueueConfig::plain().with_ecn(WireBytes::new(ecn_kb * 1000)),
        };
        SwitchProfile {
            port: PortConfig {
                rate,
                queues: vec![(qc, QueueSched::strict(0))],
            },
            class_map: ClassMap::Single,
            shared_buffer: Some((WireBytes::new(4_500_000), 0.25)),
        }
    }

    fn flow(id: u64, src: usize, dst: usize, size: u64, start: Time) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            size: Bytes::new(size),
            start,
            tag: 0,
            fg: false,
        }
    }

    struct Fct {
        done: Vec<(u64, Time)>,
        drops: u64,
    }

    impl NetObserver for Fct {
        fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
            if let AppEvent::FlowCompleted { flow, .. } = ev {
                self.done.push((*flow, now));
            }
        }
        fn on_drop(
            &mut self,
            _p: &Packet,
            _r: flexpass_simnet::queue::DropReason,
            _n: NodeId,
            _now: Time,
        ) {
            self.drops += 1;
        }
    }

    #[test]
    fn single_flow_completes_and_uses_link() {
        let p = profile(Rate::from_gbps(10), 60, None);
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(DctcpFactory::new()),
            Fct {
                done: Vec::new(),
                drops: 0,
            },
        );
        // 10 MB flow: ideal time = 10e6/1460*1538*8/10e9 = 8.42 ms.
        sim.schedule_flow(flow(1, 0, 1, 10_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(20));
        let (_, at) = sim.observer.done[0];
        let fct_ms = at.as_millis_f64();
        assert!(
            fct_ms < 10.0,
            "DCTCP should run near line rate; FCT {fct_ms} ms"
        );
    }

    #[test]
    fn two_flows_share_fairly() {
        let p = profile(Rate::from_gbps(10), 60, None);
        let topo = Topology::star(3, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(DctcpFactory::new()),
            Fct {
                done: Vec::new(),
                drops: 0,
            },
        );
        sim.schedule_flow(flow(1, 0, 2, 5_000_000, Time::ZERO));
        sim.schedule_flow(flow(2, 1, 2, 5_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(20));
        let t1 = sim.observer.done[0].1.as_millis_f64();
        let t2 = sim.observer.done[1].1.as_millis_f64();
        // Both ~2x single-flow time; neither starved.
        assert!((t1 - t2).abs() / t1.max(t2) < 0.35, "t1 {t1} t2 {t2}");
        assert!(t1.max(t2) < 13.0, "sharing too slow: {t1} {t2}");
    }

    #[test]
    fn ecn_keeps_queue_bounded() {
        // With step marking at 60 kB the standing queue should stay well
        // below a drop-tail-only queue.
        let p = profile(Rate::from_gbps(10), 60, None);
        let topo = Topology::star(3, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);

        struct QueuePeak {
            peak: u64,
        }
        // Observer totals feed assertions only; raw u64 is the reporting domain.
        impl NetObserver for QueuePeak {
            fn on_queue_sample(
                &mut self,
                _node: NodeId,
                _port: usize,
                s: &flexpass_simnet::switch::QueueSample,
                _now: Time,
            ) {
                self.peak = self
                    .peak
                    .max(s.bytes.iter().copied().sum::<WireBytes>().get());
            }
        }

        let mut sim = Sim::new(topo, Box::new(DctcpFactory::new()), QueuePeak { peak: 0 });
        sim.enable_sampling(TimeDelta::micros(50));
        sim.schedule_flow(flow(1, 0, 2, 4_000_000, Time::ZERO));
        sim.schedule_flow(flow(2, 1, 2, 4_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(20));
        assert!(
            sim.observer.peak < 200_000,
            "queue peak {} should be ECN-bounded",
            sim.observer.peak
        );
        assert!(sim.observer.peak > 10_000, "queue never built up?");
    }

    #[test]
    fn recovers_from_heavy_incast_drops() {
        // Small switch queues + 16-to-1 incast forces drops; every flow must
        // still complete via fast retransmit / RTO.
        let p = profile(Rate::from_gbps(10), 60, Some(100_000));
        let topo = Topology::star(17, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(DctcpFactory::new()),
            Fct {
                done: Vec::new(),
                drops: 0,
            },
        );
        for i in 0..16u64 {
            sim.schedule_flow(flow(i, i as usize, 16, 64_000, Time::ZERO));
        }
        sim.run_to_completion(TimeDelta::millis(20));
        assert_eq!(sim.observer.done.len(), 16);
        assert!(sim.observer.drops > 0, "incast should overflow the queue");
    }

    #[test]
    fn sender_stats_track_retransmissions() {
        let p = profile(Rate::from_gbps(10), 60, Some(30_000));
        let topo = Topology::star(9, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);

        struct TxCapture {
            retx: u64,
            timeouts: u64,
        }
        impl NetObserver for TxCapture {
            fn on_app_event(&mut self, ev: &AppEvent, _now: Time) {
                if let AppEvent::SenderDone { stats, .. } = ev {
                    self.retx += stats.retx_pkts;
                    self.timeouts += stats.timeouts;
                }
            }
        }

        let mut sim = Sim::new(
            topo,
            Box::new(DctcpFactory::new()),
            TxCapture {
                retx: 0,
                timeouts: 0,
            },
        );
        for i in 0..8u64 {
            sim.schedule_flow(flow(i, i as usize, 8, 256_000, Time::ZERO));
        }
        sim.run_to_completion(TimeDelta::millis(40));
        assert!(sim.observer.retx > 0, "expected retransmissions");
    }

    #[test]
    fn short_flow_first_rtt() {
        // A 1-packet flow completes in roughly one one-way latency.
        let p = profile(Rate::from_gbps(10), 60, None);
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(DctcpFactory::new()),
            Fct {
                done: Vec::new(),
                drops: 0,
            },
        );
        sim.schedule_flow(flow(1, 0, 1, 1000, Time::ZERO));
        sim.run_to_completion(TimeDelta::millis(10));
        let at = sim.observer.done[0].1;
        assert!(
            at < Time::from_micros(15),
            "1-packet FCT {at:?} should be ~1 one-way delay"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let p = profile(Rate::from_gbps(10), 60, None);
            let topo = Topology::star(5, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
            let mut sim = Sim::new(
                topo,
                Box::new(DctcpFactory::new()),
                Fct {
                    done: Vec::new(),
                    drops: 0,
                },
            );
            for i in 0..4u64 {
                sim.schedule_flow(flow(i, i as usize, 4, 500_000 + i * 10_000, Time::ZERO));
            }
            sim.run_to_completion(TimeDelta::millis(20));
            sim.observer.done
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn delayed_acks_halve_ack_traffic_without_stalling() {
        // ack_every = 2: a long flow completes at full speed with roughly
        // half the ACK packets.
        let p = profile(Rate::from_gbps(10), 60, None);
        let run = |ack_every: u32| {
            let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
            let mut f = DctcpFactory::new();
            f.cfg.ack_every = ack_every;
            let mut sim = Sim::new(
                topo,
                Box::new(f),
                Fct {
                    done: Vec::new(),
                    drops: 0,
                },
            );
            sim.schedule_flow(flow(1, 0, 1, 5_000_000, Time::ZERO));
            sim.run_to_completion(TimeDelta::millis(20));
            (sim.observer.done[0].1, sim.events_processed())
        };
        let (fct1, ev1) = run(1);
        let (fct2, ev2) = run(2);
        // Similar completion time...
        let (a, b) = (fct1.as_secs_f64(), fct2.as_secs_f64());
        assert!((a - b).abs() / a < 0.25, "delayed acks stalled: {a} vs {b}");
        // ...with meaningfully fewer events (fewer ACK packets in flight).
        assert!(ev2 < ev1, "expected fewer events: {ev2} vs {ev1}");
    }

    /// Builds an ACK packet for flow 7 (receiver at host 1, sender at 0).
    fn ack_pkt(cum: u32, sack: &[(u32, u32)], acked_flow_seq: u32, ece: bool) -> Packet {
        let mut blocks = [(0u32, 0u32); flexpass_simnet::packet::MAX_SACK];
        for (i, r) in sack.iter().enumerate() {
            blocks[i] = *r;
        }
        Packet::new(
            7,
            1,
            0,
            flexpass_simnet::consts::CTRL_WIRE,
            TrafficClass::Legacy,
            Payload::Ack(AckInfo {
                sub: Subflow::Only,
                cum,
                sack: blocks,
                sack_n: sack.len() as u8,
                ece,
                acked_flow_seq,
            }),
        )
    }

    fn env() -> NetEnv {
        NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        }
    }

    /// Regression: duplicate ACKs whose SACK blocks carry new information
    /// must still count toward fast retransmit, and partial ACKs during
    /// recovery must expose the next hole without three fresh dupacks.
    ///
    /// Before the fix, any ACK that SACKed a new packet reset the dupack
    /// counter (`newly > 0` cleared it), so a sender whose every dupack
    /// carries SACK news never fast-retransmitted; and after a fast
    /// retransmit the second hole stalled until the RTO.
    #[test]
    fn fast_retransmit_survives_sack_progress_and_partial_acks() {
        let cfg = DctcpConfig::default(); // init_cwnd = 10
        let spec = flow(7, 0, 1, 14_600, Time::ZERO); // n = 10 packets
        let mut tx = DctcpSender::new(spec, cfg, &env());
        let mut arena = flexpass_simnet::arena::PacketArena::new();
        let mut staged = Vec::new();
        let mut tx_v = Vec::new();
        let mut timers = Vec::new();
        let mut app = Vec::new();
        let retx_seqs = |tx_v: &[Packet]| -> Vec<u32> {
            tx_v.iter()
                .filter_map(|p| match p.payload {
                    Payload::Data(d) if d.retx => Some(d.flow_seq),
                    _ => None,
                })
                .collect()
        };
        {
            let mut ctx =
                EndpointCtx::new(Time::ZERO, &mut arena, &mut staged, &mut timers, &mut app);
            tx.activate(&mut ctx);
        }
        arena.drain_into(&mut staged, &mut tx_v);
        assert_eq!(tx_v.len(), 10, "initial window should cover the flow");

        // Packets 0 and 1 are lost; 2..=9 arrive, each generating a
        // duplicate cumulative ACK with a growing SACK block.
        {
            let mut ctx =
                EndpointCtx::new(Time::ZERO, &mut arena, &mut staged, &mut timers, &mut app);
            for k in 3..=10u32 {
                tx.on_packet(&ack_pkt(0, &[(2, k)], k - 1, false), &mut ctx);
            }
        }
        arena.drain_into(&mut staged, &mut tx_v);
        assert_eq!(
            retx_seqs(&tx_v),
            vec![0],
            "three dupacks (with SACK news) must fast-retransmit the hole"
        );

        // The retransmitted 0 arrives: a partial ACK (cum = 1 < recovery
        // point). The sender must expose and retransmit hole 1 immediately.
        {
            let mut ctx =
                EndpointCtx::new(Time::ZERO, &mut arena, &mut staged, &mut timers, &mut app);
            tx.on_packet(&ack_pkt(1, &[(2, 10)], 0, false), &mut ctx);
        }
        arena.drain_into(&mut staged, &mut tx_v);
        assert_eq!(
            retx_seqs(&tx_v),
            vec![0, 1],
            "partial ACK must retransmit the next hole without new dupacks"
        );

        // The retransmitted 1 completes the flow.
        {
            let mut ctx =
                EndpointCtx::new(Time::ZERO, &mut arena, &mut staged, &mut timers, &mut app);
            tx.on_packet(&ack_pkt(10, &[], 1, false), &mut ctx);
        }
        arena.drain_into(&mut staged, &mut tx_v);
        assert_eq!(tx.stats().timeouts, 0, "recovery must not need the RTO");
        assert!(matches!(app[..], [AppEvent::SenderDone { .. }]));
    }

    /// Regression: the window's high-water sequence must come from acked
    /// evidence (cumulative point and SACK tops), not from the raw
    /// `acked_flow_seq` of whichever packet triggered the ACK.
    ///
    /// Before the fix, `cum.saturating_sub(1).max(acked_flow_seq)` let a
    /// retransmission-triggered ACK from beyond the recovery point unlock a
    /// second window decrease in the same loss window.
    #[test]
    fn single_loss_window_decreases_once() {
        let cfg = DctcpConfig {
            init_cwnd: 8.0,
            ..Default::default()
        };
        let spec = flow(7, 0, 1, 29_200, Time::ZERO); // n = 20 packets
        let mut tx = DctcpSender::new(spec, cfg, &env());
        let mut arena = flexpass_simnet::arena::PacketArena::new();
        let mut tx_v = Vec::new();
        let mut timers = Vec::new();
        let mut app = Vec::new();
        let mut ctx = EndpointCtx::new(Time::ZERO, &mut arena, &mut tx_v, &mut timers, &mut app);
        tx.activate(&mut ctx);

        // Three pure duplicate ACKs: one halving, recover_until = 8.
        for _ in 0..3 {
            tx.on_packet(&ack_pkt(0, &[], 1, false), &mut ctx);
        }
        assert!((tx.cwnd() - 4.0).abs() < 1e-9, "cwnd {}", tx.cwnd());

        // An ECE-marked dupack SACKing packet 5 (below the recovery point)
        // but stamped with acked_flow_seq = 9: evidence stops at 5, so no
        // second decrease is allowed.
        tx.on_packet(&ack_pkt(0, &[(5, 6)], 9, true), &mut ctx);
        assert!(
            tx.cwnd() > 3.9,
            "window halved twice in one loss window: cwnd {}",
            tx.cwnd()
        );
    }

    /// The trace layer records the retransmissions and drops of an incast.
    #[test]
    fn trace_records_incast_drops_and_retransmissions() {
        use flexpass_simnet::trace;
        trace::install(trace::TraceFilter::default());
        let p = profile(Rate::from_gbps(10), 60, Some(100_000));
        let topo = Topology::star(17, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(DctcpFactory::new()),
            Fct {
                done: Vec::new(),
                drops: 0,
            },
        );
        for i in 0..16u64 {
            sim.schedule_flow(flow(i, i as usize, 16, 64_000, Time::ZERO));
        }
        sim.run_to_completion(TimeDelta::millis(20));
        let log = trace::finish();
        let count = |k: trace::EventKind| log.events.iter().filter(|e| e.kind() == k).count();
        assert!(count(trace::EventKind::Drop) > 0, "incast should drop");
        assert!(
            count(trace::EventKind::Retransmit) > 0,
            "drops should surface as traced retransmissions"
        );
        assert!(count(trace::EventKind::Enqueue) > 0);
        assert_eq!(sim.observer.done.len(), 16);
    }

    #[test]
    fn receiver_linger_reacks_stray_retx() {
        let _ = NullObserver;
        let cfg = DctcpConfig::default();
        let spec = flow(9, 0, 1, 2920, Time::ZERO);
        let env = NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        };
        let mut rx = DctcpReceiver::new(spec, cfg, &env);
        let mut arena = flexpass_simnet::arena::PacketArena::new();
        let mut tx_v = Vec::new();
        let mut timers = Vec::new();
        let mut app = Vec::new();
        let mut ctx = EndpointCtx::new(Time::ZERO, &mut arena, &mut tx_v, &mut timers, &mut app);
        let mk = |seq: u32| {
            Packet::new(
                9,
                0,
                1,
                data_wire_bytes(Bytes::new(1460)),
                TrafficClass::Legacy,
                Payload::Data(DataInfo {
                    flow_seq: seq,
                    sub_seq: seq,
                    sub: Subflow::Only,
                    payload: Bytes::new(1460),
                    retx: false,
                }),
            )
        };
        rx.on_packet(&mk(0), &mut ctx);
        rx.on_packet(&mk(1), &mut ctx);
        assert!(!rx.finished(), "receiver lingers after completion");
        // Duplicate after completion still generates an ACK.
        rx.on_packet(&mk(1), &mut ctx);
        // Linger timer tears it down.
        rx.on_timer(timer_token(9, TK_LINGER), &mut ctx);
        assert!(rx.finished());
        let _ = ctx;
        assert_eq!(tx_v.len(), 3);
        assert_eq!(app.len(), 1);
    }
}
