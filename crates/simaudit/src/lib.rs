//! Runtime invariant auditing for the FlexPass simulator.
//!
//! The paper's evaluation claims (FCT distributions, coexistence fairness,
//! drop and credit-waste rates) are only reproducible if the simulator is
//! bit-for-bit deterministic under a fixed seed and exactly conserves bytes,
//! buffer occupancy, and credits. This crate is the runtime half of that
//! contract (the static half is `cargo xtask lint`): a set of ledgers that
//! shadow the simulator's own accounting and report any divergence as a
//! [`Violation`] carrying the offending component, virtual time, and packet.
//!
//! Audited invariants:
//!
//! * **Queue byte conservation** — for every queue, the byte occupancy the
//!   queue reports after each enqueue/dequeue must equal the auditor's own
//!   running sum of admitted minus dequeued wire bytes, and never
//!   underflow. (`bytes enqueued = bytes dequeued + bytes still queued`;
//!   drops never enter the ledger because dropped packets are never
//!   admitted.)
//! * **Shared-buffer bounds** — a switch's claimed shared-buffer usage must
//!   stay within `[0, pool]`.
//! * **Credit-shaper bounds** — a token bucket's level must stay within
//!   `[0, burst]` after every refill and spend.
//! * **Event order** — event timestamps popped from the calendar must be
//!   monotonically non-decreasing, with FIFO (insertion-order) tie-breaking
//!   for equal timestamps, and no event may be scheduled in the past.
//! * **Flow byte conservation** — end to end, for every flow and globally:
//!   `sender payload bytes out = receiver payload bytes in + dropped +
//!   in-flight`, where in-flight is tracked independently through
//!   queue-admission and wire-departure hooks.
//!
//! # Usage
//!
//! The auditor is thread-local (the simulator is single-threaded per run)
//! and dormant unless installed, so instrumented hot paths cost one
//! thread-local check when auditing is off:
//!
//! ```
//! flexpass_simaudit::install();
//! // ... run an instrumented simulation ...
//! let report = flexpass_simaudit::finish();
//! assert!(report.is_clean(), "{report}");
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// Which audited invariant a violation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// A queue's claimed byte occupancy diverged from the audit ledger.
    QueueConservation,
    /// Shared-buffer usage left `[0, pool]`.
    BufferBounds,
    /// A token bucket exceeded its burst or went negative.
    CreditShaper,
    /// Event calendar popped out of order (time or FIFO tie-break), or an
    /// event was scheduled in the past.
    EventOrder,
    /// End-to-end flow byte conservation failed at finish.
    FlowConservation,
    /// A reusable scratch buffer's capacity shrank between flushes — it was
    /// replaced (reallocated) instead of reused, breaking the zero-alloc
    /// steady-state contract.
    ScratchReuse,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Invariant::QueueConservation => "queue-conservation",
            Invariant::BufferBounds => "buffer-bounds",
            Invariant::CreditShaper => "credit-shaper",
            Invariant::EventOrder => "event-order",
            Invariant::FlowConservation => "flow-conservation",
            Invariant::ScratchReuse => "scratch-reuse",
        };
        f.write_str(s)
    }
}

/// One invariant violation, with enough context to locate the bug.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The invariant that failed.
    pub invariant: Invariant,
    /// The offending component (audit id assigned at creation, in
    /// deterministic creation order).
    pub component: ComponentId,
    /// Virtual time (nanoseconds) of the most recent calendar pop when the
    /// violation was detected.
    pub time_ns: u64,
    /// The packet involved, if any: `(flow id, sequence)`.
    pub packet: Option<(u64, u64)>,
    /// Human-readable specifics (expected vs observed values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] component #{} at t={}ns",
            self.invariant, self.component.0, self.time_ns
        )?;
        if let Some((flow, seq)) = self.packet {
            write!(f, " pkt(flow={flow}, seq={seq})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Identity of an audited component (queue, shaper, switch, calendar),
/// assigned in creation order so ids are deterministic under a fixed seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ComponentId(pub u64);

/// The facts a hook needs about one packet.
#[derive(Clone, Copy, Debug)]
pub struct PktInfo {
    /// Flow id.
    pub flow: u64,
    /// A per-flow sequence (data packets) or 0.
    pub seq: u64,
    /// True for data-bearing packets (these enter flow conservation).
    pub data: bool,
    /// Application payload bytes (0 for control).
    pub payload_bytes: u64,
    /// On-the-wire bytes.
    pub wire_bytes: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct QueueLedger {
    /// Wire bytes the ledger believes are queued.
    wire_occ: u64,
    /// Cumulative admitted wire bytes.
    enq_bytes: u64,
    /// Cumulative dequeued wire bytes.
    deq_bytes: u64,
    /// Packets admitted.
    enq_pkts: u64,
    /// Packets dequeued.
    deq_pkts: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct FlowLedger {
    /// Payload bytes senders handed to their NIC.
    tx_bytes: u64,
    /// Payload bytes that arrived at a host.
    rx_bytes: u64,
    /// Payload bytes reported dropped (any reason, any hop).
    dropped_bytes: u64,
    /// Payload bytes currently in queues or on the wire, per the hooks.
    inflight_bytes: i64,
}

/// Aggregate counters the auditor collected (useful as a cheap digest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditCounters {
    /// Calendar events popped.
    pub events: u64,
    /// Packets admitted across all queues.
    pub enqueues: u64,
    /// Packets dequeued across all queues.
    pub dequeues: u64,
    /// Data payload bytes sent by endpoints.
    pub flow_tx_bytes: u64,
    /// Data payload bytes received by hosts.
    pub flow_rx_bytes: u64,
    /// Data payload bytes dropped.
    pub flow_dropped_bytes: u64,
    /// Events scheduled in the past of virtual time (release builds clamp
    /// these to "now"; each is also an [`Invariant::EventOrder`] violation).
    pub schedule_clamps: u64,
    /// Times a tracked scratch buffer grew its capacity. Warm-up growth is
    /// expected; steady-state growth means the datapath still allocates.
    pub scratch_grows: u64,
}

/// Everything the auditor learned over one run.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Recorded violations, in detection order (capped; see
    /// [`AuditReport::total_violations`]).
    pub violations: Vec<Violation>,
    /// Total violations detected, including any beyond the recording cap.
    pub total_violations: u64,
    /// Aggregate counters.
    pub counters: AuditCounters,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} violation(s), {} events, {} enq / {} deq, flow bytes tx={} rx={} dropped={}",
            self.total_violations,
            self.counters.events,
            self.counters.enqueues,
            self.counters.dequeues,
            self.counters.flow_tx_bytes,
            self.counters.flow_rx_bytes,
            self.counters.flow_dropped_bytes,
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.total_violations as usize > self.violations.len() {
            writeln!(
                f,
                "  ... and {} more",
                self.total_violations as usize - self.violations.len()
            )?;
        }
        Ok(())
    }
}

/// Cap on stored violations; the total count keeps incrementing past it.
const MAX_RECORDED: usize = 64;

#[derive(Default)]
struct Auditor {
    queues: BTreeMap<u64, QueueLedger>,
    flows: BTreeMap<u64, FlowLedger>,
    /// Last reported total scratch capacity per component.
    scratch_caps: BTreeMap<u64, u64>,
    violations: Vec<Violation>,
    total_violations: u64,
    counters: AuditCounters,
    /// Virtual time of the last calendar pop.
    now_ns: u64,
    /// Sequence number of the last calendar pop.
    last_seq: u64,
    any_pop: bool,
}

thread_local! {
    static AUDITOR: RefCell<Option<Auditor>> = const { RefCell::new(None) };
    static NEXT_COMPONENT: RefCell<u64> = const { RefCell::new(0) };
}

/// Allocates a component id. Always available (independent of whether an
/// auditor is installed) so components created before `install()` still get
/// deterministic identities; the counter is thread-local, hence stable
/// under `cargo test`'s thread-per-test model.
pub fn new_component_id() -> ComponentId {
    NEXT_COMPONENT.with(|c| {
        let mut c = c.borrow_mut();
        *c += 1;
        ComponentId(*c)
    })
}

/// Starts auditing on this thread. Replaces any previous auditor.
pub fn install() {
    AUDITOR.with(|a| *a.borrow_mut() = Some(Auditor::default()));
}

/// True when an auditor is installed on this thread.
pub fn is_active() -> bool {
    AUDITOR.with(|a| a.borrow().is_some())
}

/// Runs the final conservation checks, uninstalls the auditor, and returns
/// its report.
///
/// # Panics
///
/// Panics if no auditor is installed.
pub fn finish() -> AuditReport {
    let mut aud = AUDITOR
        .with(|a| a.borrow_mut().take())
        .expect("simaudit::finish() without install()");
    aud.final_checks();
    AuditReport {
        violations: aud.violations,
        total_violations: aud.total_violations,
        counters: aud.counters,
    }
}

/// One domain thread's auditor state, detached without running the final
/// conservation checks. A partitioned run splits one logical simulation
/// across threads; a packet mid-handoff between domains is in flight in
/// *neither* thread's ledger, so per-thread final checks would report
/// phantom conservation failures. Instead each domain thread detaches its
/// state with [`take_partial`], the parent absorbs all of them with
/// [`absorb_partial`] (restoring global ledgers in which every byte is
/// accounted for), and the parent's own `finish()` runs the checks once.
pub struct PartialAudit(Auditor);

/// Uninstalls this thread's auditor *without* final checks and returns its
/// raw state for merging on another thread, or `None` when no auditor is
/// installed here.
pub fn take_partial() -> Option<PartialAudit> {
    AUDITOR.with(|a| a.borrow_mut().take()).map(PartialAudit)
}

/// Merges a domain thread's partial state into this thread's auditor.
/// A no-op when no auditor is installed.
pub fn absorb_partial(p: PartialAudit) {
    with_auditor(|a| a.merge(p.0));
}

fn with_auditor(f: impl FnOnce(&mut Auditor)) {
    AUDITOR.with(|a| {
        if let Some(aud) = a.borrow_mut().as_mut() {
            f(aud);
        }
    });
}

impl Auditor {
    fn violate(
        &mut self,
        invariant: Invariant,
        component: ComponentId,
        packet: Option<(u64, u64)>,
        detail: String,
    ) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(Violation {
                invariant,
                component,
                time_ns: self.now_ns,
                packet,
                detail,
            });
        }
    }

    /// Folds another auditor's ledgers into this one. Queue and flow
    /// ledgers sum fieldwise (they are disjoint in practice — component
    /// ids are unique and a split flow's two halves touch different
    /// ledger fields — but summing is correct either way). Violations
    /// concatenate up to the recording cap; virtual time takes the max;
    /// the event-order cursor (`last_seq`/`any_pop`) keeps this
    /// auditor's own view, since merged pops were ordered per-thread.
    fn merge(&mut self, other: Auditor) {
        for (qid, l) in other.queues {
            let e = self.queues.entry(qid).or_default();
            e.wire_occ += l.wire_occ;
            e.enq_bytes += l.enq_bytes;
            e.deq_bytes += l.deq_bytes;
            e.enq_pkts += l.enq_pkts;
            e.deq_pkts += l.deq_pkts;
        }
        for (fid, l) in other.flows {
            let e = self.flows.entry(fid).or_default();
            e.tx_bytes += l.tx_bytes;
            e.rx_bytes += l.rx_bytes;
            e.dropped_bytes += l.dropped_bytes;
            e.inflight_bytes += l.inflight_bytes;
        }
        for (cid, cap) in other.scratch_caps {
            let e = self.scratch_caps.entry(cid).or_default();
            *e = (*e).max(cap);
        }
        for v in other.violations {
            if self.violations.len() < MAX_RECORDED {
                self.violations.push(v);
            }
        }
        self.total_violations += other.total_violations;
        self.counters.events += other.counters.events;
        self.counters.enqueues += other.counters.enqueues;
        self.counters.dequeues += other.counters.dequeues;
        self.counters.flow_tx_bytes += other.counters.flow_tx_bytes;
        self.counters.flow_rx_bytes += other.counters.flow_rx_bytes;
        self.counters.flow_dropped_bytes += other.counters.flow_dropped_bytes;
        self.counters.schedule_clamps += other.counters.schedule_clamps;
        self.counters.scratch_grows += other.counters.scratch_grows;
        self.now_ns = self.now_ns.max(other.now_ns);
    }

    fn final_checks(&mut self) {
        // Per-flow conservation: tx = rx + dropped + in-flight.
        let flows: Vec<(u64, FlowLedger)> = self.flows.iter().map(|(k, v)| (*k, *v)).collect();
        for (flow, l) in flows {
            let accounted = l.rx_bytes as i64 + l.dropped_bytes as i64 + l.inflight_bytes;
            if l.tx_bytes as i64 != accounted || l.inflight_bytes < 0 {
                self.violate(
                    Invariant::FlowConservation,
                    ComponentId(0),
                    Some((flow, 0)),
                    format!(
                        "flow {flow}: tx {} != rx {} + dropped {} + inflight {}",
                        l.tx_bytes, l.rx_bytes, l.dropped_bytes, l.inflight_bytes
                    ),
                );
            }
        }
        // Queue ledger identity: admitted = dequeued + still queued.
        let queues: Vec<(u64, QueueLedger)> = self.queues.iter().map(|(k, v)| (*k, *v)).collect();
        for (qid, l) in queues {
            if l.enq_bytes != l.deq_bytes + l.wire_occ {
                self.violate(
                    Invariant::QueueConservation,
                    ComponentId(qid),
                    None,
                    format!(
                        "queue ledger: enq {} != deq {} + occupancy {}",
                        l.enq_bytes, l.deq_bytes, l.wire_occ
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hooks. All are no-ops unless an auditor is installed.
// ---------------------------------------------------------------------------

/// A calendar event was popped at `time_ns` with insertion sequence `seq`.
pub fn on_event_pop(time_ns: u64, seq: u64) {
    with_auditor(|a| {
        a.counters.events += 1;
        if a.any_pop {
            if time_ns < a.now_ns {
                a.violate(
                    Invariant::EventOrder,
                    ComponentId(0),
                    None,
                    format!("popped t={time_ns}ns after t={}ns", a.now_ns),
                );
            } else if time_ns == a.now_ns && seq <= a.last_seq {
                a.violate(
                    Invariant::EventOrder,
                    ComponentId(0),
                    None,
                    format!(
                        "FIFO tie-break broken at t={time_ns}ns: seq {seq} after {}",
                        a.last_seq
                    ),
                );
            }
        }
        a.any_pop = true;
        a.now_ns = time_ns;
        a.last_seq = seq;
    });
}

/// An event was offered to the calendar for `time_ns` while virtual time
/// was `now_ns`.
pub fn on_event_schedule(time_ns: u64, now_ns: u64) {
    with_auditor(|a| {
        if time_ns < now_ns {
            a.counters.schedule_clamps += 1;
            a.violate(
                Invariant::EventOrder,
                ComponentId(0),
                None,
                format!("scheduled t={time_ns}ns in the past of t={now_ns}ns"),
            );
        }
    });
}

/// Queue `q` admitted `pkt` and now claims `queue_bytes_after` queued wire
/// bytes.
pub fn on_enqueue(q: ComponentId, pkt: PktInfo, queue_bytes_after: u64) {
    with_auditor(|a| {
        a.counters.enqueues += 1;
        let l = a.queues.entry(q.0).or_default();
        l.wire_occ += pkt.wire_bytes;
        l.enq_bytes += pkt.wire_bytes;
        l.enq_pkts += 1;
        let expect = l.wire_occ;
        if queue_bytes_after != expect {
            a.violate(
                Invariant::QueueConservation,
                q,
                Some((pkt.flow, pkt.seq)),
                format!("enqueue: queue claims {queue_bytes_after} B, ledger {expect} B"),
            );
        }
        if pkt.data {
            a.flows.entry(pkt.flow).or_default().inflight_bytes += pkt.payload_bytes as i64;
        }
    });
}

/// Queue `q` dequeued `pkt` and now claims `queue_bytes_after` queued wire
/// bytes. The packet is about to serialize onto the wire, so per-flow
/// in-flight accounting is unchanged (it moves from "queued" to "on wire"
/// within the same hook pair).
pub fn on_dequeue(q: ComponentId, pkt: PktInfo, queue_bytes_after: u64) {
    with_auditor(|a| {
        a.counters.dequeues += 1;
        let l = a.queues.entry(q.0).or_default();
        if l.wire_occ < pkt.wire_bytes {
            let occ = l.wire_occ;
            a.violate(
                Invariant::QueueConservation,
                q,
                Some((pkt.flow, pkt.seq)),
                format!(
                    "dequeue of {} B underflows ledger occupancy {occ} B",
                    pkt.wire_bytes
                ),
            );
            return;
        }
        l.wire_occ -= pkt.wire_bytes;
        l.deq_bytes += pkt.wire_bytes;
        l.deq_pkts += 1;
        let expect = l.wire_occ;
        if queue_bytes_after != expect {
            a.violate(
                Invariant::QueueConservation,
                q,
                Some((pkt.flow, pkt.seq)),
                format!("dequeue: queue claims {queue_bytes_after} B, ledger {expect} B"),
            );
        }
        if pkt.data {
            a.flows.entry(pkt.flow).or_default().inflight_bytes -= pkt.payload_bytes as i64;
        }
    });
}

/// Switch `sw` reports `used` of `pool` shared-buffer bytes in use.
pub fn on_shared_buffer(sw: ComponentId, used: u64, pool: u64) {
    with_auditor(|a| {
        if used > pool {
            a.violate(
                Invariant::BufferBounds,
                sw,
                None,
                format!("shared buffer {used} B exceeds pool {pool} B"),
            );
        }
    });
}

/// Token bucket `shaper` holds `tokens` of at most `burst` (both in
/// bit-nanoseconds; see `simnet::port`). Called after refills and spends.
pub fn on_shaper_tokens(shaper: ComponentId, tokens: u128, burst: u128) {
    with_auditor(|a| {
        if tokens > burst {
            a.violate(
                Invariant::CreditShaper,
                shaper,
                None,
                format!("token bucket holds {tokens} > burst {burst} (bit-ns)"),
            );
        }
    });
}

/// A data packet of `pkt.flow` left a sender endpoint towards its NIC.
pub fn on_flow_tx(pkt: PktInfo) {
    if !pkt.data {
        return;
    }
    with_auditor(|a| {
        a.counters.flow_tx_bytes += pkt.payload_bytes;
        a.flows.entry(pkt.flow).or_default().tx_bytes += pkt.payload_bytes;
    });
}

/// A data packet arrived at a host (whether or not an endpoint claimed it).
pub fn on_flow_rx(pkt: PktInfo) {
    if !pkt.data {
        return;
    }
    with_auditor(|a| {
        a.counters.flow_rx_bytes += pkt.payload_bytes;
        a.flows.entry(pkt.flow).or_default().rx_bytes += pkt.payload_bytes;
    });
}

/// A data packet was dropped (queue cap, shared buffer, selective red,
/// or injected loss).
pub fn on_flow_drop(pkt: PktInfo) {
    if !pkt.data {
        return;
    }
    with_auditor(|a| {
        a.counters.flow_dropped_bytes += pkt.payload_bytes;
        a.flows.entry(pkt.flow).or_default().dropped_bytes += pkt.payload_bytes;
    });
}

/// A data packet started propagating on a link (scheduled to arrive).
pub fn on_wire_depart(pkt: PktInfo) {
    if !pkt.data {
        return;
    }
    with_auditor(|a| {
        a.flows.entry(pkt.flow).or_default().inflight_bytes += pkt.payload_bytes as i64;
    });
}

/// Component `c` reports the total capacity of its reusable scratch
/// buffers after a flush. Capacity may grow (warm-up) — each growth bumps
/// [`AuditCounters::scratch_grows`] — but must never shrink: a shrink means
/// the buffer was replaced with a fresh allocation instead of being reused.
pub fn on_scratch_capacity(c: ComponentId, cap: u64) {
    with_auditor(|a| {
        let last = a.scratch_caps.get(&c.0).copied().unwrap_or(0);
        if cap < last {
            a.violate(
                Invariant::ScratchReuse,
                c,
                None,
                format!(
                    "scratch capacity shrank from {last} to {cap} (buffer replaced, not reused)"
                ),
            );
        } else if cap > last {
            a.counters.scratch_grows += 1;
        }
        a.scratch_caps.insert(c.0, cap);
    });
}

/// A packet finished propagating and reached a node.
pub fn on_wire_arrive(pkt: PktInfo) {
    if !pkt.data {
        return;
    }
    with_auditor(|a| {
        a.flows.entry(pkt.flow).or_default().inflight_bytes -= pkt.payload_bytes as i64;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_pkt(flow: u64, seq: u64, payload: u64, wire: u64) -> PktInfo {
        PktInfo {
            flow,
            seq,
            data: true,
            payload_bytes: payload,
            wire_bytes: wire,
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        install();
        let q = new_component_id();
        let p = data_pkt(1, 0, 1460, 1538);
        on_flow_tx(p);
        on_enqueue(q, p, 1538);
        on_dequeue(q, p, 0);
        on_wire_depart(p);
        on_wire_arrive(p);
        on_flow_rx(p);
        on_event_pop(10, 0);
        on_event_pop(10, 1);
        on_event_pop(20, 0);
        let report = finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.counters.flow_tx_bytes, 1460);
        assert_eq!(report.counters.flow_rx_bytes, 1460);
    }

    #[test]
    fn occupancy_mismatch_detected() {
        install();
        let q = new_component_id();
        let p = data_pkt(2, 7, 100, 120);
        on_enqueue(q, p, 999); // queue claims the wrong occupancy
        let report = finish();
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].invariant, Invariant::QueueConservation);
        assert_eq!(report.violations[0].packet, Some((2, 7)));
    }

    #[test]
    fn lost_bytes_break_flow_conservation() {
        install();
        let p = data_pkt(3, 0, 1000, 1078);
        on_flow_tx(p);
        // Never received, dropped, or left in flight: conservation fails.
        let report = finish();
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].invariant, Invariant::FlowConservation);
    }

    #[test]
    fn dropped_bytes_balance() {
        install();
        let q = new_component_id();
        let p = data_pkt(4, 1, 500, 578);
        on_flow_tx(p);
        on_enqueue(q, p, 578);
        on_dequeue(q, p, 0);
        on_wire_depart(p);
        on_wire_arrive(p);
        on_flow_drop(p); // injected loss at the receiving switch
        let report = finish();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn event_order_violations_detected() {
        install();
        on_event_pop(100, 0);
        on_event_pop(50, 1); // time went backwards
        on_event_pop(50, 1); // and a FIFO tie-break repeat
        on_event_schedule(10, 50); // schedule in the past
        let report = finish();
        assert_eq!(report.total_violations, 3);
        assert!(report
            .violations
            .iter()
            .all(|v| v.invariant == Invariant::EventOrder));
    }

    #[test]
    fn shaper_and_buffer_bounds() {
        install();
        let s = new_component_id();
        on_shaper_tokens(s, 10, 100);
        on_shaper_tokens(s, 101, 100);
        on_shared_buffer(s, 5, 10);
        on_shared_buffer(s, 11, 10);
        let report = finish();
        assert_eq!(report.total_violations, 2);
    }

    #[test]
    fn scratch_capacity_may_grow_but_not_shrink() {
        install();
        let c = new_component_id();
        on_scratch_capacity(c, 0); // empty at start
        on_scratch_capacity(c, 64); // warm-up growth
        on_scratch_capacity(c, 64); // steady state: reused, no growth
        on_scratch_capacity(c, 128); // more warm-up growth
        let report = finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.counters.scratch_grows, 2);

        install();
        let c = new_component_id();
        on_scratch_capacity(c, 128);
        on_scratch_capacity(c, 16); // buffer replaced with a fresh allocation
        let report = finish();
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].invariant, Invariant::ScratchReuse);
    }

    #[test]
    fn split_flow_conserves_after_partial_merge() {
        // Sender half audited on one "thread state", receiver half on
        // another; each alone would fail conservation, the merge is clean.
        install();
        let p = data_pkt(9, 0, 1460, 1538);
        on_flow_tx(p);
        on_wire_depart(p);
        let sender_half = take_partial().expect("installed");

        install();
        on_wire_arrive(p);
        on_flow_rx(p);
        let receiver_half = take_partial().expect("installed");

        install();
        absorb_partial(sender_half);
        absorb_partial(receiver_half);
        let report = finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.counters.flow_tx_bytes, 1460);
        assert_eq!(report.counters.flow_rx_bytes, 1460);
    }

    #[test]
    fn partial_merge_carries_violations_and_counters() {
        install();
        on_event_pop(100, 0);
        on_event_pop(50, 0); // time went backwards: one violation
        let bad = take_partial().expect("installed");

        install();
        on_event_pop(10, 0);
        absorb_partial(bad);
        let report = finish();
        assert_eq!(report.total_violations, 1);
        assert_eq!(report.counters.events, 3);
    }

    #[test]
    fn take_partial_without_install_is_none() {
        assert!(take_partial().is_none());
    }

    #[test]
    fn inactive_hooks_are_noops() {
        // No install(): nothing panics, nothing accumulates.
        on_event_pop(5, 0);
        on_flow_tx(data_pkt(1, 0, 10, 20));
        assert!(!is_active());
    }
}
