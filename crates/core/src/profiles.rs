//! Switch and NIC queue configurations for every deployment scheme.
//!
//! The paper configures NICs identically to edge switches (§5 footnote 6),
//! so these profiles are used for both; hosts simply ignore the shared
//! buffer settings.

use flexpass_simcore::time::Rate;
use flexpass_simcore::units::WireBytes;
use flexpass_simnet::consts::{CREDIT_RATE_FULL_FRACTION, CTRL_WIRE};
use flexpass_simnet::port::{PortConfig, QueueSched};
use flexpass_simnet::queue::QueueConfig;
use flexpass_simnet::switch::{ClassMap, SwitchProfile};

/// Parameters shared by all profiles.
#[derive(Clone, Copy, Debug)]
pub struct ProfileParams {
    /// Link rate.
    pub rate: Rate,
    /// Queue weight for the new transport (Q1); legacy gets `1 - wq`.
    pub wq: f64,
    /// ECN step-marking threshold on the FlexPass queue (Q1).
    pub fp_ecn: WireBytes,
    /// Selective-drop threshold for red (reactive) bytes on Q1.
    pub fp_red: WireBytes,
    /// ECN threshold on the legacy queue (Q2).
    pub legacy_ecn: WireBytes,
    /// Switch shared buffer and dynamic threshold alpha.
    pub shared_buffer: (WireBytes, f64),
    /// Static credit-queue buffer (paper: < 1 kB).
    pub credit_cap: WireBytes,
}

impl ProfileParams {
    /// §6.2 large-scale simulation settings (40 Gbps fabric).
    pub fn simulation(rate: Rate) -> Self {
        ProfileParams {
            rate,
            wq: 0.5,
            fp_ecn: WireBytes::new(65_000),
            fp_red: WireBytes::new(150_000),
            legacy_ecn: WireBytes::new(100_000),
            shared_buffer: (WireBytes::new(4_500_000), 0.25),
            credit_cap: WireBytes::new(1_000),
        }
    }

    /// §6.1 testbed settings (10 Gbps): ECN 60 kB, selective drop 100 kB.
    pub fn testbed(rate: Rate) -> Self {
        ProfileParams {
            rate,
            wq: 0.5,
            fp_ecn: WireBytes::new(60_000),
            fp_red: WireBytes::new(100_000),
            legacy_ecn: WireBytes::new(60_000),
            shared_buffer: (WireBytes::new(4_500_000), 0.25),
            credit_cap: WireBytes::new(1_000),
        }
    }

    /// Credit-queue shaper for a given data-rate fraction: the credit rate
    /// that triggers `frac` of the line rate in data.
    fn credit_shaper(&self, frac: f64) -> (Rate, WireBytes) {
        let rate = self.rate.scale(CREDIT_RATE_FULL_FRACTION * frac);
        (rate, CTRL_WIRE * 2)
    }
}

/// The FlexPass switch profile (§4.1): Q0 credits (strict, shaped to
/// `w_q` of the full credit rate, tiny buffer), Q1 FlexPass data (DWRR
/// `w_q`, ECN + selective red dropping), Q2 legacy (DWRR `1 − w_q`, ECN).
pub fn flexpass_profile(p: &ProfileParams) -> SwitchProfile {
    let (crate_, cburst) = p.credit_shaper(p.wq);
    SwitchProfile {
        port: PortConfig {
            rate: p.rate,
            queues: vec![
                (
                    QueueConfig::capped(p.credit_cap),
                    QueueSched::strict(0).shaped(crate_, cburst),
                ),
                (
                    QueueConfig::plain()
                        .with_ecn(p.fp_ecn)
                        .with_red_threshold(p.fp_red),
                    QueueSched::weighted(1, p.wq),
                ),
                (
                    QueueConfig::plain().with_ecn(p.legacy_ecn),
                    QueueSched::weighted(1, 1.0 - p.wq),
                ),
            ],
        },
        class_map: ClassMap::Split {
            credit: 0,
            new_data: 1,
            new_ctrl: 1,
            legacy: 2,
        },
        shared_buffer: Some(p.shared_buffer),
    }
}

/// The Naïve deployment profile (§6.2): ExpressPass data and legacy traffic
/// share one queue; credits are shaped to the *full* credit rate.
pub fn naive_profile(p: &ProfileParams) -> SwitchProfile {
    let (crate_, cburst) = p.credit_shaper(1.0);
    SwitchProfile {
        port: PortConfig {
            rate: p.rate,
            queues: vec![
                (
                    QueueConfig::capped(p.credit_cap),
                    QueueSched::strict(0).shaped(crate_, cburst),
                ),
                (
                    QueueConfig::plain().with_ecn(p.legacy_ecn),
                    QueueSched::strict(1),
                ),
            ],
        },
        class_map: ClassMap::Split {
            credit: 0,
            new_data: 1,
            new_ctrl: 1,
            legacy: 1,
        },
        shared_buffer: Some(p.shared_buffer),
    }
}

/// The Oracle Weighted Fair Queueing profile (§6.2): ExpressPass data and
/// legacy traffic in separate DWRR queues whose weights match the *known*
/// fraction of upgraded traffic; credits shaped to the same fraction.
pub fn owf_profile(p: &ProfileParams, upgraded_frac: f64) -> SwitchProfile {
    // DWRR weights must stay positive; clamp the oracle fraction away from
    // the degenerate all-or-nothing endpoints.
    let frac = upgraded_frac.clamp(0.02, 0.98);
    let (crate_, cburst) = p.credit_shaper(frac);
    SwitchProfile {
        port: PortConfig {
            rate: p.rate,
            queues: vec![
                (
                    QueueConfig::capped(p.credit_cap),
                    QueueSched::strict(0).shaped(crate_, cburst),
                ),
                (QueueConfig::plain(), QueueSched::weighted(1, frac)),
                (
                    QueueConfig::plain().with_ecn(p.legacy_ecn),
                    QueueSched::weighted(1, 1.0 - frac),
                ),
            ],
        },
        class_map: ClassMap::Split {
            credit: 0,
            new_data: 1,
            new_ctrl: 1,
            legacy: 2,
        },
        shared_buffer: Some(p.shared_buffer),
    }
}

/// The Layering (LY) profile [Wei 2019]: like Naïve (shared data queue,
/// full-rate credits) but the upgraded sender overlays a DCTCP window, so
/// its data must see ECN marks — the shared queue's threshold applies.
pub fn layering_profile(p: &ProfileParams) -> SwitchProfile {
    naive_profile(p)
}

/// A DCTCP-only network (0 % deployment baseline): one ECN queue.
pub fn dctcp_profile(p: &ProfileParams) -> SwitchProfile {
    SwitchProfile {
        port: PortConfig {
            rate: p.rate,
            queues: vec![(
                QueueConfig::plain().with_ecn(p.legacy_ecn),
                QueueSched::strict(0),
            )],
        },
        class_map: ClassMap::Single,
        shared_buffer: Some(p.shared_buffer),
    }
}

/// Eight strict-priority queues for the Homa motivation experiment
/// (Figure 1b): DCTCP and Homa control share the highest-priority queue
/// (paper footnote 3); Homa data selects queues by packet priority.
pub fn homa_mix_profile(p: &ProfileParams) -> SwitchProfile {
    SwitchProfile {
        port: PortConfig {
            rate: p.rate,
            queues: (0..8)
                .map(|i| {
                    let qc = if i == 0 {
                        // DCTCP needs marking in its queue.
                        QueueConfig::plain().with_ecn(p.legacy_ecn)
                    } else {
                        QueueConfig::plain()
                    };
                    (qc, QueueSched::strict(i))
                })
                .collect(),
        },
        class_map: ClassMap::ByPrio {
            base: 0,
            n: 8,
            ctrl: 0,
            legacy: 0,
        },
        shared_buffer: Some(p.shared_buffer),
    }
}

/// The Figure 5(b) "alternative queueing" profile: like FlexPass but the
/// reactive sub-flow is classed as legacy, so it lands in Q2 with the
/// legacy traffic (the endpoint sets `reactive_class = Legacy`).
pub fn alt_queueing_profile(p: &ProfileParams) -> SwitchProfile {
    // The switch side is identical to FlexPass (the classing happens at the
    // endpoints); Q2 keeps its ECN threshold so reactive packets are
    // still marked there.
    flexpass_profile(p)
}

/// The host-NIC variant of a switch profile (§5 footnote 6: "NIC is
/// essentially a special type of edge switch"). Queues, class mapping and
/// — critically — the credit-queue shaper are identical to switch ports:
/// the credit queue on a receiver's uplink is what bounds the data pulled
/// onto its downlink, so removing it would let a high-degree incast
/// over-commit the access link and cause scheduled-packet loss. Only the
/// shared-buffer setting is dropped (hosts ignore it anyway).
pub fn host_variant(profile: &SwitchProfile) -> SwitchProfile {
    let mut p = profile.clone();
    p.shared_buffer = None;
    p
}

#[cfg(test)]
// Test expectations compare floats that are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use flexpass_simcore::units::Bytes;
    use flexpass_simnet::consts::DATA_WIRE;
    use flexpass_simnet::packet::{DataInfo, Packet, Payload, Subflow, TrafficClass};

    fn pkt(class: TrafficClass) -> Packet {
        Packet::new(
            1,
            0,
            1,
            DATA_WIRE,
            class,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Only,
                payload: Bytes::new(1460),
                retx: false,
            }),
        )
    }

    #[test]
    fn flexpass_profile_shape() {
        let p = ProfileParams::simulation(Rate::from_gbps(40));
        let prof = flexpass_profile(&p);
        assert_eq!(prof.port.queues.len(), 3);
        // Credit queue: strict 0, shaped to wq * credit fraction.
        let (rate, _) = prof.port.queues[0].1.shaper.expect("credit shaper");
        let expect = 40e9 * CREDIT_RATE_FULL_FRACTION * 0.5;
        assert!((rate.as_bps() as f64 - expect).abs() / expect < 0.01);
        // Q1: ECN 65 kB, red 150 kB, weight 0.5.
        let q1 = &prof.port.queues[1].0;
        assert_eq!(q1.ecn_threshold, Some(WireBytes::new(65_000)));
        assert_eq!(q1.red_threshold, Some(WireBytes::new(150_000)));
        // Class mapping.
        assert_eq!(prof.class_map.queue_for(&pkt(TrafficClass::NewData)), 1);
        assert_eq!(prof.class_map.queue_for(&pkt(TrafficClass::Legacy)), 2);
    }

    #[test]
    fn naive_shares_queue() {
        let p = ProfileParams::simulation(Rate::from_gbps(40));
        let prof = naive_profile(&p);
        assert_eq!(
            prof.class_map.queue_for(&pkt(TrafficClass::NewData)),
            prof.class_map.queue_for(&pkt(TrafficClass::Legacy))
        );
        // Full-rate credits.
        let (rate, _) = prof.port.queues[0].1.shaper.expect("credit shaper");
        let expect = 40e9 * CREDIT_RATE_FULL_FRACTION;
        assert!((rate.as_bps() as f64 - expect).abs() / expect < 0.01);
    }

    #[test]
    fn owf_weights_follow_oracle() {
        let p = ProfileParams::simulation(Rate::from_gbps(40));
        let prof = owf_profile(&p, 0.25);
        assert!((prof.port.queues[1].1.weight - 0.25).abs() < 1e-9);
        assert!((prof.port.queues[2].1.weight - 0.75).abs() < 1e-9);
        // Degenerate fractions are clamped, not zero.
        let prof = owf_profile(&p, 0.0);
        assert!(prof.port.queues[1].1.weight > 0.0);
    }

    #[test]
    fn homa_mix_has_eight_prio_queues() {
        let p = ProfileParams::testbed(Rate::from_gbps(10));
        let prof = homa_mix_profile(&p);
        assert_eq!(prof.port.queues.len(), 8);
        assert_eq!(prof.class_map.queue_for(&pkt(TrafficClass::Legacy)), 0);
        assert_eq!(
            prof.class_map
                .queue_for(&pkt(TrafficClass::NewData).with_prio(6)),
            6
        );
    }

    #[test]
    fn host_variant_keeps_credit_shaper() {
        let p = ProfileParams::simulation(Rate::from_gbps(40));
        let prof = flexpass_profile(&p);
        let host = host_variant(&prof);
        // The credit shaper must survive: it protects the host's downlink
        // from credit over-commit under incast.
        assert!(host.port.queues[0].1.shaper.is_some());
        assert!(host.shared_buffer.is_none());
        assert_eq!(host.port.queues.len(), prof.port.queues.len());
    }

    #[test]
    fn testbed_params_match_section_6_1() {
        let p = ProfileParams::testbed(Rate::from_gbps(10));
        assert_eq!(p.fp_ecn, WireBytes::new(60_000));
        assert_eq!(p.fp_red, WireBytes::new(100_000));
        assert_eq!(p.wq, 0.5);
    }
}
