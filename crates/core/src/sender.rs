//! The FlexPass sender: the Figure-4 per-packet state machine over a shared
//! send buffer, with a credit-clocked proactive sub-flow and a
//! DCTCP-windowed reactive sub-flow.

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simnet::consts::{data_wire_bytes, packets_for, payload_of_packet, CTRL_WIRE};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, TxStats};
use flexpass_simnet::packet::{
    AckInfo, CreditInfo, DataInfo, FlowSpec, Packet, Payload, Subflow, TrafficClass,
};
use flexpass_simnet::sim::{timer_kind, timer_token, NetEnv};
use flexpass_simnet::trace;
use flexpass_transport::common::{DctcpWindow, PktState, RttEstimator};

use crate::config::{FlexPassConfig, SplitPolicy};

/// Timer kind: sender retransmission / credit re-request backstop.
const TK_RTO: u16 = 9;
/// Timer kind: reactive sub-flow stall (tail-loss) detector.
const TK_R_RTO: u16 = 14;

/// Per-sub-flow sequence bookkeeping: maps sub-flow sequence numbers to the
/// flow-level packets they carried and tracks which are still outstanding.
#[derive(Debug, Default)]
struct SubflowTx {
    /// `sub_seq -> flow_seq`.
    map: Vec<u32>,
    /// Slot closed: acknowledged, deemed lost, or superseded.
    closed: Vec<bool>,
    /// All slots below this index are closed (scan frontier).
    clean: u32,
    /// Open (in-flight) slots.
    inflight: u32,
    /// Highest slot acknowledged (cumulative or selective).
    high_acked: u32,
}

impl SubflowTx {
    fn assign(&mut self, flow_seq: u32) -> u32 {
        let sub_seq = self.map.len() as u32;
        self.map.push(flow_seq);
        self.closed.push(false);
        self.inflight += 1;
        sub_seq
    }

    fn next_seq(&self) -> u32 {
        self.map.len() as u32
    }

    fn close(&mut self, sub_seq: u32) -> bool {
        let i = sub_seq as usize;
        if i >= self.closed.len() || self.closed[i] {
            return false;
        }
        self.closed[i] = true;
        self.inflight -= 1;
        while (self.clean as usize) < self.closed.len() && self.closed[self.clean as usize] {
            self.clean += 1;
        }
        true
    }

    /// Open slots strictly below `below` that are presumed lost because at
    /// least `dup_thresh` later slots were acknowledged. Results are
    /// appended to the caller's reusable `lost` buffer (cleared first) so
    /// the per-ACK path stays allocation-free in steady state.
    fn sweep_lost(&mut self, dup_thresh: u32, lost: &mut Vec<u32>) {
        lost.clear();
        if self.high_acked < dup_thresh {
            return;
        }
        let limit = self.high_acked.saturating_sub(dup_thresh - 1);
        let mut s = self.clean;
        while s < limit.min(self.map.len() as u32) {
            if !self.closed[s as usize] {
                lost.push(s);
            }
            s += 1;
        }
    }
}

/// Inserts `x` into the sorted set `v` (no-op if already present).
///
/// The per-flow seq sets (`lost`, `sent_reactive`) are small, churny, and
/// regularly drain to empty. A `BTreeSet` frees its root node at that
/// point and reallocates it on the next insert, which shows up as
/// steady-state datapath allocations; a sorted `Vec` keeps its buffer.
fn sorted_insert(v: &mut Vec<u32>, x: u32) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

/// Removes `x` from the sorted set `v` (no-op if absent).
fn sorted_remove(v: &mut Vec<u32>, x: u32) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

/// The FlexPass sender endpoint.
pub struct FlexPassSender {
    spec: FlowSpec,
    cfg: FlexPassConfig,
    n: u32,
    /// Figure-4 per-packet states, indexed by `flow_seq`.
    states: Vec<PktState>,
    /// Last reactive sub-seq each packet was assigned, if any.
    rseq_of: Vec<Option<u32>>,
    /// Last proactive sub-seq each packet was assigned, if any.
    pseq_of: Vec<Option<u32>>,
    reactive: SubflowTx,
    proactive: SubflowTx,
    rwin: DctcpWindow,
    /// Frontier for head allocation (lowest possibly-pending `flow_seq`).
    head: u32,
    /// Frontier for RC3-style tail allocation.
    tail: i64,
    acked: u32,
    rtt: RttEstimator,
    last_progress: Time,
    /// Deadline of the armed full-stall RTO, if any.
    rto_deadline: Option<Time>,
    rto_backoff: u32,
    /// Last instant a reactive ACK closed outstanding slots.
    r_last_progress: Time,
    /// Deadline of the armed reactive tail-loss timer, if any.
    r_rto_deadline: Option<Time>,
    requested_credits: bool,
    /// Reusable sub-seq scratch for ACK application and loss sweeps
    /// (take/restore around iteration; never reallocated once warm).
    seq_scratch: Vec<u32>,
    /// Packets currently in state `Lost`, kept sorted (see [`sorted_insert`]
    /// for why this is a `Vec` and not a `BTreeSet`).
    lost: Vec<u32>,
    /// Packets currently in state `SentReactive` (proactive-retx
    /// candidates), kept sorted.
    sent_reactive: Vec<u32>,
    stats: TxStats,
    done: bool,
}

impl FlexPassSender {
    /// Creates a sender for `spec`.
    pub fn new(spec: FlowSpec, cfg: FlexPassConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size).get();
        FlexPassSender {
            spec,
            cfg,
            n,
            states: vec![PktState::Pending; n as usize],
            rseq_of: vec![None; n as usize],
            pseq_of: vec![None; n as usize],
            reactive: SubflowTx::default(),
            proactive: SubflowTx::default(),
            rwin: DctcpWindow::new(cfg.init_cwnd, cfg.g, cfg.max_cwnd),
            head: 0,
            tail: i64::from(n) - 1,
            acked: 0,
            rtt: RttEstimator::new(cfg.min_rto),
            last_progress: Time::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            r_last_progress: Time::ZERO,
            r_rto_deadline: None,
            requested_credits: false,
            seq_scratch: Vec::new(),
            lost: Vec::new(),
            sent_reactive: Vec::new(),
            stats: TxStats::default(),
            done: false,
        }
    }

    /// Transmission statistics so far.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    /// Reactive congestion window (introspection).
    pub fn reactive_cwnd(&self) -> f64 {
        self.rwin.cwnd()
    }

    fn rto(&self) -> TimeDelta {
        self.rtt.rto() * (1u64 << self.rto_backoff.min(8))
    }

    /// Keeps the full-stall RTO tracking `last_progress + rto()` while the
    /// flow is live (cancel-and-replace); cancelled once done. The deadline
    /// is a monotone maximum (fresh arms start at `now + rto()`, re-arms
    /// never move earlier), matching the envelope the old lazy
    /// fire-and-recheck chain converged to.
    fn update_rto(&mut self, ctx: &mut EndpointCtx) {
        let token = timer_token(self.spec.id, TK_RTO);
        if self.done {
            if self.rto_deadline.take().is_some() {
                ctx.cancel_timer(token);
            }
            return;
        }
        let at = match self.rto_deadline {
            Some(d) => (self.last_progress + self.rto()).max(d),
            None => ctx.now + self.rto(),
        };
        if self.rto_deadline != Some(at) {
            self.rto_deadline = Some(at);
            ctx.arm_timer(at, token);
        }
    }

    /// Keeps the reactive tail-loss timer tracking
    /// `r_last_progress + rtt.rto()` while reactive slots are outstanding;
    /// cancelled when the reactive pipe drains or the flow is done. Same
    /// monotone-maximum deadline rule as [`Self::update_rto`].
    fn update_reactive_rto(&mut self, ctx: &mut EndpointCtx) {
        let token = timer_token(self.spec.id, TK_R_RTO);
        if self.done || self.reactive.inflight == 0 {
            if self.r_rto_deadline.take().is_some() {
                ctx.cancel_timer(token);
            }
            return;
        }
        let at = match self.r_rto_deadline {
            Some(d) => (self.r_last_progress + self.rtt.rto()).max(d),
            None => ctx.now + self.rtt.rto(),
        };
        if self.r_rto_deadline != Some(at) {
            self.r_rto_deadline = Some(at);
            ctx.arm_timer(at, token);
        }
    }

    fn send_request(&mut self, ctx: &mut EndpointCtx) {
        self.requested_credits = true;
        ctx.send(Packet::new(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::CreditReq { pkts: self.n },
        ));
        self.update_rto(ctx);
    }

    /// Lowest `Pending` packet from the head, advancing the frontier.
    fn next_head_pending(&mut self) -> Option<u32> {
        while self.head < self.n && self.states[self.head as usize] != PktState::Pending {
            self.head += 1;
        }
        (self.head < self.n).then_some(self.head)
    }

    /// Highest `Pending` packet from the tail (RC3 variant).
    fn next_tail_pending(&mut self) -> Option<u32> {
        while self.tail >= 0 && self.states[self.tail as usize] != PktState::Pending {
            self.tail -= 1;
        }
        (self.tail >= 0).then_some(self.tail as u32)
    }

    fn first_lost(&self) -> Option<u32> {
        self.lost.first().copied()
    }

    /// First packet still marked `SentReactive` (candidate for proactive
    /// retransmission).
    fn first_sent_reactive(&self) -> Option<u32> {
        self.sent_reactive.first().copied()
    }

    fn data_packet(&self, flow_seq: u32, sub: Subflow, sub_seq: u32, retx: bool) -> Packet {
        let pay = payload_of_packet(self.spec.size, flow_seq);
        let p = Packet::new(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            data_wire_bytes(pay),
            if sub == Subflow::Reactive {
                self.cfg.reactive_class
            } else {
                TrafficClass::NewData
            },
            Payload::Data(DataInfo {
                flow_seq,
                sub_seq,
                sub,
                payload: pay,
                retx,
            }),
        );
        if sub == Subflow::Reactive {
            // Reactive packets are red (selectively droppable) and
            // ECN-capable so DCTCP-style marking throttles them early.
            p.red().ecn()
        } else {
            p
        }
    }

    /// Sends `flow_seq` on the reactive sub-flow.
    fn send_reactive(&mut self, flow_seq: u32, ctx: &mut EndpointCtx) {
        debug_assert_eq!(self.states[flow_seq as usize], PktState::Pending);
        let sub_seq = self.reactive.assign(flow_seq);
        self.rseq_of[flow_seq as usize] = Some(sub_seq);
        self.states[flow_seq as usize] = PktState::SentReactive;
        sorted_insert(&mut self.sent_reactive, flow_seq);
        let pay = payload_of_packet(self.spec.size, flow_seq);
        self.stats.data_pkts += 1;
        self.stats.data_bytes += pay.get();
        ctx.send(self.data_packet(flow_seq, Subflow::Reactive, sub_seq, false));
        self.update_rto(ctx);
        self.update_reactive_rto(ctx);
    }

    /// Pumps the reactive window: new data only (the reactive sub-flow is
    /// never used for retransmission, §4.2).
    fn pump_reactive(&mut self, ctx: &mut EndpointCtx) {
        let cwnd = self.rwin.cwnd_pkts();
        while self.reactive.inflight < cwnd {
            let seq = match self.cfg.split {
                SplitPolicy::Shared => self.next_head_pending(),
                SplitPolicy::Rc3Tail => self.next_tail_pending(),
            };
            match seq {
                Some(s) => self.send_reactive(s, ctx),
                None => break,
            }
        }
    }

    /// Handles a credit: transmit on the proactive sub-flow in the paper's
    /// priority order — Lost, then Pending, then Sent-as-reactive.
    fn on_credit(&mut self, _credit: CreditInfo, ctx: &mut EndpointCtx) {
        self.stats.credits_received += 1;
        if self.done {
            self.stats.credits_wasted += 1;
            trace::credit_wasted(self.spec.id);
            ctx.send(Packet::new(
                self.spec.id,
                self.spec.src,
                self.spec.dst,
                CTRL_WIRE,
                TrafficClass::NewCtrl,
                Payload::CreditStop,
            ));
            return;
        }
        enum Kind {
            LossRecovery,
            NewData,
            ProactiveRetx,
        }
        let (flow_seq, kind) = if let Some(s) = self.first_lost() {
            (s, Kind::LossRecovery)
        } else if let Some(s) = self.next_head_pending() {
            (s, Kind::NewData)
        } else if self.cfg.proactive_retx {
            match self.first_sent_reactive() {
                Some(s) => (s, Kind::ProactiveRetx),
                None => {
                    self.stats.credits_wasted += 1;
                    trace::credit_wasted(self.spec.id);
                    return;
                }
            }
        } else {
            self.stats.credits_wasted += 1;
            trace::credit_wasted(self.spec.id);
            return;
        };

        let pay = payload_of_packet(self.spec.size, flow_seq);
        let retx = !matches!(kind, Kind::NewData);
        match kind {
            Kind::LossRecovery => {
                self.stats.retx_pkts += 1;
                self.stats.redundant_bytes += pay.get();
                trace::retransmit(self.spec.id, flow_seq);
            }
            Kind::ProactiveRetx => {
                self.stats.proactive_retx_pkts += 1;
                self.stats.redundant_bytes += pay.get();
                trace::retransmit(self.spec.id, flow_seq);
            }
            Kind::NewData => {}
        }
        let sub_seq = self.proactive.assign(flow_seq);
        self.pseq_of[flow_seq as usize] = Some(sub_seq);
        sorted_remove(&mut self.lost, flow_seq);
        sorted_remove(&mut self.sent_reactive, flow_seq);
        self.states[flow_seq as usize] = PktState::SentProactive;
        self.stats.data_pkts += 1;
        self.stats.data_bytes += pay.get();
        ctx.send(self.data_packet(flow_seq, Subflow::Proactive, sub_seq, retx));
        self.update_rto(ctx);
        // A proactive send may have consumed a `SentReactive` packet; the
        // reactive timer keys off open slots, which are unchanged here, so
        // no reactive update is needed.
    }

    /// Marks `flow_seq` acknowledged, closing any open sub-flow slots that
    /// carried it.
    fn ack_flow_seq(&mut self, flow_seq: u32) {
        if self.states[flow_seq as usize] == PktState::Acked {
            return;
        }
        self.states[flow_seq as usize] = PktState::Acked;
        sorted_remove(&mut self.lost, flow_seq);
        sorted_remove(&mut self.sent_reactive, flow_seq);
        self.acked += 1;
        if let Some(r) = self.rseq_of[flow_seq as usize] {
            self.reactive.close(r);
        }
        if let Some(p) = self.pseq_of[flow_seq as usize] {
            self.proactive.close(p);
        }
    }

    /// Applies an ACK to one sub-flow's bookkeeping; fills `newly`
    /// (cleared first) with newly closed slots that were acknowledged (not
    /// merely swept). The buffer is caller-owned scratch so per-ACK
    /// processing allocates nothing once warm.
    fn apply_subflow_ack(sub: &mut SubflowTx, ack: &AckInfo, newly: &mut Vec<u32>) {
        newly.clear();
        let upper = ack.cum.min(sub.next_seq());
        let mut s = sub.clean;
        while s < upper {
            if sub.close(s) {
                newly.push(s);
            }
            s += 1;
        }
        for r in 0..ack.sack_n as usize {
            let (lo, hi) = ack.sack[r];
            for s in lo..hi.min(sub.next_seq()) {
                if sub.close(s) {
                    newly.push(s);
                }
            }
            if hi > 0 {
                sub.high_acked = sub.high_acked.max(hi - 1);
            }
        }
        if ack.cum > 0 {
            sub.high_acked = sub.high_acked.max(ack.cum - 1);
        }
    }

    fn on_reactive_ack(&mut self, ack: &AckInfo, ctx: &mut EndpointCtx) {
        let mut seqs = std::mem::take(&mut self.seq_scratch);
        Self::apply_subflow_ack(&mut self.reactive, ack, &mut seqs);
        let n_new = seqs.len() as u64;
        for &sub_seq in &seqs {
            let flow_seq = self.reactive.map[sub_seq as usize];
            self.ack_flow_seq(flow_seq);
        }
        // SACK-based loss detection: open slots with >= 3 acked above.
        self.reactive.sweep_lost(3, &mut seqs);
        let had_loss = !seqs.is_empty();
        for &sub_seq in &seqs {
            self.reactive.close(sub_seq);
            let flow_seq = self.reactive.map[sub_seq as usize];
            if self.states[flow_seq as usize] == PktState::SentReactive {
                // Recovery happens on the proactive sub-flow (§4.2).
                self.states[flow_seq as usize] = PktState::Lost;
                sorted_remove(&mut self.sent_reactive, flow_seq);
                sorted_insert(&mut self.lost, flow_seq);
            }
        }
        seqs.clear();
        self.seq_scratch = seqs;
        if n_new > 0 {
            self.last_progress = ctx.now;
            self.r_last_progress = ctx.now;
            self.rto_backoff = 0;
            self.rwin.on_ack(
                n_new,
                self.reactive.high_acked,
                ack.ece,
                self.reactive.next_seq(),
            );
        } else if ack.ece {
            // Window update from a duplicate ACK still carries the mark.
            self.rwin
                .on_ack(0, self.reactive.high_acked, true, self.reactive.next_seq());
        }
        if had_loss {
            self.rwin
                .on_loss(self.reactive.high_acked, self.reactive.next_seq());
        }
        self.check_done(ctx);
        if !self.done {
            self.pump_reactive(ctx);
        }
        self.update_rto(ctx);
        self.update_reactive_rto(ctx);
    }

    fn on_proactive_ack(&mut self, ack: &AckInfo, ctx: &mut EndpointCtx) {
        let mut seqs = std::mem::take(&mut self.seq_scratch);
        Self::apply_subflow_ack(&mut self.proactive, ack, &mut seqs);
        if !seqs.is_empty() {
            self.last_progress = ctx.now;
            self.rto_backoff = 0;
        }
        for &sub_seq in &seqs {
            let flow_seq = self.proactive.map[sub_seq as usize];
            self.ack_flow_seq(flow_seq);
        }
        // Proactive losses are non-congestive (e.g. failures) but must be
        // recovered with the highest priority (§4.3).
        self.proactive.sweep_lost(3, &mut seqs);
        for &sub_seq in &seqs {
            self.proactive.close(sub_seq);
            let flow_seq = self.proactive.map[sub_seq as usize];
            if self.states[flow_seq as usize] == PktState::SentProactive {
                self.states[flow_seq as usize] = PktState::Lost;
                sorted_insert(&mut self.lost, flow_seq);
            }
        }
        seqs.clear();
        self.seq_scratch = seqs;
        self.check_done(ctx);
        self.update_rto(ctx);
        // A proactive ACK can close stale reactive slots via `ack_flow_seq`.
        self.update_reactive_rto(ctx);
    }

    fn check_done(&mut self, ctx: &mut EndpointCtx) {
        if self.acked >= self.n && !self.done {
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: self.stats,
            });
        }
    }

    /// Reactive tail-loss handling: if the reactive sub-flow made no
    /// progress for a full RTO while slots are outstanding, the tail of its
    /// window was dropped with no later ACKs to reveal it. Close every open
    /// slot (recovery rides the proactive sub-flow, §4.2) and restart the
    /// window conservatively.
    fn on_reactive_rto(&mut self, ctx: &mut EndpointCtx) {
        self.r_rto_deadline = None;
        if self.done || self.reactive.inflight == 0 {
            return;
        }
        let mut s = self.reactive.clean;
        while (s as usize) < self.reactive.map.len() {
            if !self.reactive.closed[s as usize] {
                self.reactive.close(s);
                let flow_seq = self.reactive.map[s as usize];
                if self.states[flow_seq as usize] == PktState::SentReactive {
                    self.states[flow_seq as usize] = PktState::Lost;
                    sorted_remove(&mut self.sent_reactive, flow_seq);
                    sorted_insert(&mut self.lost, flow_seq);
                }
            }
            s += 1;
        }
        self.rwin.on_timeout(self.reactive.next_seq());
        self.r_last_progress = ctx.now;
        self.pump_reactive(ctx);
        self.update_rto(ctx);
        self.update_reactive_rto(ctx);
    }

    fn on_rto(&mut self, ctx: &mut EndpointCtx) {
        self.rto_deadline = None;
        if self.done {
            return;
        }
        // Full stall: presume all in-flight packets lost, re-request
        // credits, and restart the reactive window from one packet. Only
        // count a timeout when data was actually outstanding.
        self.rto_backoff += 1;
        trace::rto(self.spec.id, self.rto_backoff);
        let mut any_lost = false;
        for s in 0..self.n as usize {
            if self.states[s].in_flight() {
                any_lost = true;
                if let Some(r) = self.rseq_of[s] {
                    self.reactive.close(r);
                }
                if let Some(p) = self.pseq_of[s] {
                    self.proactive.close(p);
                }
                self.states[s] = PktState::Lost;
                sorted_remove(&mut self.sent_reactive, s as u32);
                sorted_insert(&mut self.lost, s as u32);
            }
        }
        if any_lost {
            self.stats.timeouts += 1;
        }
        self.rwin.on_timeout(self.reactive.next_seq());
        self.last_progress = ctx.now;
        self.send_request(ctx);
        // All reactive slots were closed above; retire the tail-loss timer.
        self.update_reactive_rto(ctx);
    }
}

impl Endpoint for FlexPassSender {
    fn activate(&mut self, ctx: &mut EndpointCtx) {
        self.last_progress = ctx.now;
        self.r_last_progress = ctx.now;
        self.send_request(ctx);
        if self.cfg.reactive_first_rtt {
            // Unlike the proactive sub-flow (which waits one RTT for
            // credits), the reactive sub-flow may transmit immediately.
            self.pump_reactive(ctx);
        }
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        match pkt.payload {
            Payload::Credit(c) => self.on_credit(c, ctx),
            Payload::Ack(a) => match a.sub {
                Subflow::Reactive => self.on_reactive_ack(&a, ctx),
                Subflow::Proactive => self.on_proactive_ack(&a, ctx),
                Subflow::Only => {}
            },
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        match timer_kind(token) {
            TK_RTO => self.on_rto(ctx),
            TK_R_RTO => self.on_reactive_rto(ctx),
            _ => {}
        }
    }

    fn finished(&self) -> bool {
        // Both timers are cancelled on completion (see `check_done`
        // callers), so the endpoint can be dropped immediately.
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::Bytes;
    use flexpass_simnet::packet::Color;

    fn env() -> NetEnv {
        NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        }
    }

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            id: 5,
            src: 0,
            dst: 1,
            size: Bytes::new(size),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        }
    }

    /// Test harness holding the ctx output buffers between calls.
    #[derive(Default)]
    struct H {
        arena: flexpass_simnet::arena::PacketArena,
        tx_ids: Vec<flexpass_simnet::arena::PacketId>,
        tx: Vec<Packet>,
        tm: Vec<flexpass_simnet::endpoint::TimerCmd>,
        app: Vec<AppEvent>,
    }

    impl H {
        fn with<R>(&mut self, now: Time, f: impl FnOnce(&mut EndpointCtx) -> R) -> R {
            let r = {
                let mut ctx = EndpointCtx::new(
                    now,
                    &mut self.arena,
                    &mut self.tx_ids,
                    &mut self.tm,
                    &mut self.app,
                );
                f(&mut ctx)
            };
            // Staged ids become packets in emission order, as the driver's
            // flush would see them.
            self.arena.drain_into(&mut self.tx_ids, &mut self.tx);
            r
        }
        fn data_sent(&self) -> Vec<DataInfo> {
            self.tx
                .iter()
                .filter_map(|p| match p.payload {
                    Payload::Data(d) => Some(d),
                    _ => None,
                })
                .collect()
        }
    }

    fn credit(idx: u32) -> Packet {
        Packet::new(
            5,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx }),
        )
    }

    fn ack(sub: Subflow, cum: u32, ece: bool) -> Packet {
        Packet::new(
            5,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::Ack(AckInfo {
                sub,
                cum,
                sack: [(0, 0); 3],
                sack_n: 0,
                ece,
                acked_flow_seq: cum.saturating_sub(1),
            }),
        )
    }

    fn sack_ack(sub: Subflow, cum: u32, lo: u32, hi: u32) -> Packet {
        Packet::new(
            5,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::Ack(AckInfo {
                sub,
                cum,
                sack: [(lo, hi), (0, 0), (0, 0)],
                sack_n: 1,
                ece: false,
                acked_flow_seq: hi.saturating_sub(1),
            }),
        )
    }

    #[test]
    fn first_rtt_reactive_burst_and_credit_request() {
        let mut s = FlexPassSender::new(spec(100 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // One CreditReq + init_cwnd (10) reactive packets.
        assert_eq!(h.tx.len(), 11);
        assert!(matches!(h.tx[0].payload, Payload::CreditReq { pkts: 100 }));
        for p in &h.tx[1..] {
            match p.payload {
                Payload::Data(d) => {
                    assert_eq!(d.sub, Subflow::Reactive);
                    assert!(p.ecn_capable);
                    assert_eq!(p.color, Color::Red);
                }
                _ => panic!("expected reactive data"),
            }
        }
        assert_eq!(s.reactive.inflight, 10);
    }

    #[test]
    fn credit_sends_pending_then_proactive_retx() {
        let cfg = FlexPassConfig::new(0.5);
        let mut s = FlexPassSender::new(spec(3 * 1460), cfg, &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // All 3 packets went reactive (cwnd 10 > 3). A credit now has no
        // Lost/Pending left: proactive retransmission of packet 0.
        let before = h.tx.len();
        h.with(Time::ZERO, |ctx| s.on_packet(&credit(0), ctx));
        assert_eq!(h.tx.len(), before + 1);
        match h.tx.last().unwrap().payload {
            Payload::Data(d) => {
                assert_eq!(d.sub, Subflow::Proactive);
                assert_eq!(d.flow_seq, 0);
                assert!(d.retx);
            }
            _ => panic!("expected proactive data"),
        }
        assert_eq!(s.stats().proactive_retx_pkts, 1);
        assert_eq!(s.states[0], PktState::SentProactive);
    }

    #[test]
    fn proactive_retx_disabled_wastes_credit() {
        let mut cfg = FlexPassConfig::new(0.5);
        cfg.proactive_retx = false;
        let mut s = FlexPassSender::new(spec(3 * 1460), cfg, &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        h.with(Time::ZERO, |ctx| s.on_packet(&credit(0), ctx));
        assert_eq!(s.stats().credits_wasted, 1);
    }

    #[test]
    fn lost_has_highest_credit_priority() {
        let mut s = FlexPassSender::new(spec(50 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // Reactive sent 0..10. SACK far above rseq 2 implies it was lost.
        h.with(Time::ZERO, |ctx| {
            s.on_packet(&sack_ack(Subflow::Reactive, 2, 5, 9), ctx)
        });
        assert_eq!(s.states[2], PktState::Lost);
        // Next credit must carry packet 2 (loss recovery beats new data).
        let before = h.tx.len();
        h.with(Time::ZERO, |ctx| s.on_packet(&credit(0), ctx));
        match h.tx[before..]
            .iter()
            .find(|p| p.is_data())
            .expect("data sent")
            .payload
        {
            Payload::Data(d) => {
                assert_eq!(d.flow_seq, 2);
                assert_eq!(d.sub, Subflow::Proactive);
                assert!(d.retx);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reactive_never_retransmits() {
        let mut s = FlexPassSender::new(spec(30 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // Loss detected on rseq 0 via sacks above; window opens on 7 acks.
        h.with(Time::ZERO, |ctx| {
            s.on_packet(&sack_ack(Subflow::Reactive, 0, 1, 8), ctx)
        });
        assert_eq!(s.states[0], PktState::Lost);
        for d in h.data_sent() {
            if d.sub == Subflow::Reactive {
                assert!(!d.retx, "reactive retransmission is forbidden");
            }
        }
        // And the lost packet never reappears with a reactive header.
        let reactive0 = h
            .data_sent()
            .iter()
            .filter(|d| d.sub == Subflow::Reactive && d.flow_seq == 0)
            .count();
        assert_eq!(reactive0, 1);
    }

    #[test]
    fn proactive_ack_clears_stale_reactive_slot() {
        let mut s = FlexPassSender::new(spec(3 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        assert_eq!(s.reactive.inflight, 3);
        // Credit triggers proactive retx of packet 0; its proactive ACK must
        // release the reactive slot so the window is not pinned.
        h.with(Time::ZERO, |ctx| s.on_packet(&credit(0), ctx));
        h.with(Time::ZERO, |ctx| {
            s.on_packet(&ack(Subflow::Proactive, 1, false), ctx)
        });
        assert_eq!(s.states[0], PktState::Acked);
        assert_eq!(s.reactive.inflight, 2);
    }

    #[test]
    fn completes_via_mixed_acks() {
        let mut s = FlexPassSender::new(spec(4 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        h.with(Time::ZERO, |ctx| {
            s.on_packet(&ack(Subflow::Reactive, 4, false), ctx)
        });
        assert!(s.done);
        assert_eq!(h.app.len(), 1);
        match h.app[0] {
            AppEvent::SenderDone { stats, .. } => {
                assert_eq!(stats.data_pkts, 4);
                assert_eq!(stats.timeouts, 0);
            }
            _ => panic!("expected SenderDone"),
        }
    }

    #[test]
    fn ece_shrinks_reactive_window() {
        let mut s = FlexPassSender::new(spec(500 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // Ack everything outstanding with marks, repeatedly; the window must
        // stay bounded rather than doubling away.
        let mut cum = 0;
        for _ in 0..12 {
            let upto = s.reactive.next_seq();
            while cum < upto {
                cum += 1;
                h.with(Time::ZERO, |ctx| {
                    s.on_packet(&ack(Subflow::Reactive, cum, true), ctx)
                });
            }
        }
        assert!(
            s.reactive_cwnd() < 64.0,
            "cwnd {} should be suppressed by marks",
            s.reactive_cwnd()
        );
    }

    #[test]
    fn rc3_tail_allocation() {
        let cfg = FlexPassConfig::rc3_splitting(0.5);
        let mut s = FlexPassSender::new(spec(100 * 1460), cfg, &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // Reactive packets come from the end of the flow.
        let reactive_seqs: Vec<u32> = h
            .data_sent()
            .iter()
            .filter(|d| d.sub == Subflow::Reactive)
            .map(|d| d.flow_seq)
            .collect();
        assert_eq!(reactive_seqs, (90..100).rev().collect::<Vec<_>>());
        // Credits pull from the head.
        h.with(Time::ZERO, |ctx| s.on_packet(&credit(0), ctx));
        match h.tx.last().unwrap().payload {
            Payload::Data(d) => {
                assert_eq!(d.flow_seq, 0);
                assert_eq!(d.sub, Subflow::Proactive);
            }
            _ => panic!("expected proactive head packet"),
        }
    }

    #[test]
    fn rto_marks_all_inflight_lost_and_rerequests() {
        let mut s = FlexPassSender::new(spec(20 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| s.activate(ctx));
        // Fire the timer well past the deadline.
        h.with(Time::from_millis(100), |ctx| {
            s.on_timer(timer_token(5, TK_RTO), ctx)
        });
        assert_eq!(s.stats().timeouts, 1);
        assert!(s.states.iter().take(10).all(|st| *st == PktState::Lost));
        assert_eq!(s.reactive.inflight, 0);
        // A second CreditReq went out.
        let reqs =
            h.tx.iter()
                .filter(|p| matches!(p.payload, Payload::CreditReq { .. }))
                .count();
        assert_eq!(reqs, 2);
    }

    #[test]
    fn subflow_tx_sweep_lost() {
        let mut t = SubflowTx::default();
        for fs in 0..10 {
            t.assign(fs);
        }
        // Slots 5..9 acked: slots 0..4 have >= 3 acks above once high_acked
        // reaches 8, so everything below 6 is sweepable.
        for s in 5..10 {
            t.close(s);
        }
        t.high_acked = 9;
        let mut lost = Vec::new();
        t.sweep_lost(3, &mut lost);
        assert_eq!(lost, vec![0, 1, 2, 3, 4]);
    }
}
