//! The Layering (LY) comparison scheme [Wei 2019, "ExpressPass+"]:
//! ExpressPass credits gated by a DCTCP-adjusted window.
//!
//! A data packet is sent only when a credit arrives *and* the window allows
//! it; the window reacts to ECN marks on the (shared) data queue. This
//! mitigates starvation of legacy traffic but, as §6.2 shows, the window
//! needlessly throttles transmission even when no legacy traffic competes.

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simnet::consts::{data_wire_bytes, packets_for, payload_of_packet, CTRL_WIRE};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, TxStats};
use flexpass_simnet::packet::{AckInfo, CreditInfo, DataInfo, FlowSpec, Packet, Payload, Subflow};
use flexpass_simnet::sim::{timer_kind, timer_token, NetEnv};
use flexpass_simnet::trace;
use flexpass_transport::common::{DctcpWindow, PktState, RttEstimator};
use flexpass_transport::expresspass::EpConfig;

/// Timer kind: sender retransmission backstop.
const TK_RTO: u16 = 13;

/// The Layering sender: ExpressPass clocking + DCTCP window limit.
pub struct LySender {
    spec: FlowSpec,
    cfg: EpConfig,
    n: u32,
    states: Vec<PktState>,
    win: DctcpWindow,
    inflight: u32,
    snd_una: u32,
    next_pending: u32,
    acked: u32,
    dupacks: u32,
    rtt: RttEstimator,
    last_progress: Time,
    /// Deadline of the currently armed (cancellable) RTO, if any.
    rto_deadline: Option<Time>,
    rto_backoff: u32,
    /// Packets currently marked `Lost`.
    lost: std::collections::BTreeSet<u32>,
    stats: TxStats,
    done: bool,
}

impl LySender {
    /// Creates a sender for `spec`.
    pub fn new(spec: FlowSpec, cfg: EpConfig, _env: &NetEnv) -> Self {
        let n = packets_for(spec.size).get();
        LySender {
            spec,
            cfg,
            n,
            states: vec![PktState::Pending; n as usize],
            win: DctcpWindow::new(10.0, 1.0 / 16.0, 4096.0),
            inflight: 0,
            snd_una: 0,
            next_pending: 0,
            acked: 0,
            dupacks: 0,
            rtt: RttEstimator::new(cfg.min_rto),
            last_progress: Time::ZERO,
            rto_deadline: None,
            rto_backoff: 0,
            lost: std::collections::BTreeSet::new(),
            stats: TxStats::default(),
            done: false,
        }
    }

    /// Current window (introspection).
    pub fn cwnd(&self) -> f64 {
        self.win.cwnd()
    }

    fn rto(&self) -> TimeDelta {
        self.rtt.rto() * (1u64 << self.rto_backoff.min(8))
    }

    /// Keeps the armed RTO tracking `last_progress + rto()` via
    /// cancel-and-replace arming (monotone-maximum deadline, matching the
    /// envelope of the old lazy fire-and-recheck chain); cancelled on done.
    fn update_rto(&mut self, ctx: &mut EndpointCtx) {
        let token = timer_token(self.spec.id, TK_RTO);
        if self.done {
            if self.rto_deadline.take().is_some() {
                ctx.cancel_timer(token);
            }
            return;
        }
        let at = match self.rto_deadline {
            Some(d) => (self.last_progress + self.rto()).max(d),
            None => ctx.now + self.rto(),
        };
        if self.rto_deadline != Some(at) {
            self.rto_deadline = Some(at);
            ctx.arm_timer(at, token);
        }
    }

    fn send_request(&mut self, ctx: &mut EndpointCtx) {
        ctx.send(Packet::new(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            CTRL_WIRE,
            self.cfg.ctrl_class,
            Payload::CreditReq { pkts: self.n },
        ));
        self.update_rto(ctx);
    }

    fn pick(&mut self) -> Option<u32> {
        if let Some(&s) = self.lost.iter().next() {
            return Some(s);
        }
        while self.next_pending < self.n
            && self.states[self.next_pending as usize] != PktState::Pending
        {
            self.next_pending += 1;
        }
        if self.next_pending < self.n {
            let s = self.next_pending;
            self.next_pending += 1;
            return Some(s);
        }
        None
    }

    fn on_credit(&mut self, credit: CreditInfo, ctx: &mut EndpointCtx) {
        self.stats.credits_received += 1;
        if self.done {
            self.stats.credits_wasted += 1;
            trace::credit_wasted(self.spec.id);
            return;
        }
        // The layering gate: credits beyond the DCTCP window are wasted.
        if self.inflight >= self.win.cwnd_pkts() {
            self.stats.credits_wasted += 1;
            trace::credit_wasted(self.spec.id);
            return;
        }
        match self.pick() {
            Some(seq) => {
                let retx = self.states[seq as usize] == PktState::Lost;
                self.lost.remove(&seq);
                self.states[seq as usize] = PktState::Sent;
                self.inflight += 1;
                let pay = payload_of_packet(self.spec.size, seq);
                self.stats.data_pkts += 1;
                self.stats.data_bytes += pay.get();
                if retx {
                    self.stats.retx_pkts += 1;
                    self.stats.redundant_bytes += pay.get();
                    trace::retransmit(self.spec.id, seq);
                }
                ctx.send(
                    Packet::new(
                        self.spec.id,
                        self.spec.src,
                        self.spec.dst,
                        data_wire_bytes(pay),
                        self.cfg.data_class,
                        Payload::Data(DataInfo {
                            flow_seq: seq,
                            sub_seq: credit.idx,
                            sub: Subflow::Only,
                            payload: pay,
                            retx,
                        }),
                    )
                    .ecn(),
                );
                self.update_rto(ctx);
            }
            None => {
                self.stats.credits_wasted += 1;
                trace::credit_wasted(self.spec.id);
            }
        }
    }

    fn on_ack(&mut self, ack: &AckInfo, ctx: &mut EndpointCtx) {
        let prev_una = self.snd_una;
        let mut newly = 0u64;
        let mark = |states: &mut Vec<PktState>, seq: u32, acked: &mut u32, inflight: &mut u32| {
            let st = &mut states[seq as usize];
            if *st == PktState::Acked {
                return 0u64;
            }
            if st.in_flight() {
                *inflight -= 1;
            }
            *st = PktState::Acked;
            *acked += 1;
            1
        };
        while self.snd_una < ack.cum.min(self.n) {
            let got = mark(
                &mut self.states,
                self.snd_una,
                &mut self.acked,
                &mut self.inflight,
            );
            if got > 0 {
                self.lost.remove(&self.snd_una);
            }
            newly += got;
            self.snd_una += 1;
        }
        for r in 0..ack.sack_n as usize {
            let (lo, hi) = ack.sack[r];
            for s in lo..hi.min(self.n) {
                let got = mark(&mut self.states, s, &mut self.acked, &mut self.inflight);
                if got > 0 {
                    self.lost.remove(&s);
                }
                newly += got;
            }
        }
        if newly > 0 {
            self.last_progress = ctx.now;
            self.rto_backoff = 0;
            self.dupacks = 0;
            self.win
                .on_ack(newly, ack.acked_flow_seq, ack.ece, self.next_pending);
        } else if ack.cum == prev_una && ack.cum < self.n {
            self.dupacks += 1;
            if self.dupacks == 3 {
                self.dupacks = 0;
                if self.states[self.snd_una as usize] == PktState::Sent {
                    self.states[self.snd_una as usize] = PktState::Lost;
                    self.lost.insert(self.snd_una);
                    self.inflight -= 1;
                }
                self.win.on_loss(ack.cum, self.next_pending);
            }
        }
        if self.acked >= self.n && !self.done {
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: self.stats,
            });
        }
        self.update_rto(ctx);
    }
}

impl Endpoint for LySender {
    fn activate(&mut self, ctx: &mut EndpointCtx) {
        self.last_progress = ctx.now;
        self.send_request(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        match pkt.payload {
            Payload::Credit(c) => self.on_credit(c, ctx),
            Payload::Ack(a) => self.on_ack(&a, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        if timer_kind(token) != TK_RTO {
            return;
        }
        self.rto_deadline = None;
        if self.done {
            return;
        }
        self.rto_backoff += 1;
        trace::rto(self.spec.id, self.rto_backoff);
        let mut any_lost = false;
        for s in self.snd_una..self.next_pending.min(self.n) {
            if self.states[s as usize] == PktState::Sent {
                self.states[s as usize] = PktState::Lost;
                self.lost.insert(s);
                self.inflight -= 1;
                any_lost = true;
            }
        }
        if any_lost {
            self.stats.timeouts += 1;
        }
        self.win.on_timeout(self.next_pending);
        self.last_progress = ctx.now;
        self.send_request(ctx);
    }

    fn finished(&self) -> bool {
        // The RTO is cancelled on completion — no stale fire to wait out.
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::Bytes;
    use flexpass_simnet::packet::TrafficClass;

    fn env() -> NetEnv {
        NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        }
    }

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            id: 3,
            src: 0,
            dst: 1,
            size: Bytes::new(size),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        }
    }

    fn credit(idx: u32) -> Packet {
        Packet::new(
            3,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx }),
        )
    }

    #[test]
    fn window_gates_credits() {
        let mut s = LySender::new(spec(100 * 1460), EpConfig::default(), &env());
        let mut arena = flexpass_simnet::arena::PacketArena::new();
        let mut tx_ids = Vec::new();
        let mut tx = Vec::new();
        let mut tm = Vec::new();
        let mut app = Vec::new();
        {
            let mut ctx = EndpointCtx::new(Time::ZERO, &mut arena, &mut tx_ids, &mut tm, &mut app);
            s.activate(&mut ctx);
            // Initial window is 10: the 11th credit is wasted.
            for i in 0..12 {
                s.on_packet(&credit(i), &mut ctx);
            }
        }
        arena.drain_into(&mut tx_ids, &mut tx);
        assert_eq!(s.stats.data_pkts, 10);
        assert_eq!(s.stats.credits_wasted, 2);
        let data = tx.iter().filter(|p| p.is_data()).count();
        assert_eq!(data, 10);
        // LY data must be ECN-capable (the window needs marks).
        assert!(tx.iter().filter(|p| p.is_data()).all(|p| p.ecn_capable));
    }

    #[test]
    fn acks_open_window_for_more_credits() {
        let mut s = LySender::new(spec(100 * 1460), EpConfig::default(), &env());
        let mut arena = flexpass_simnet::arena::PacketArena::new();
        let mut tx_ids = Vec::new();
        let mut tm = Vec::new();
        let mut app = Vec::new();
        let mut ctx = EndpointCtx::new(Time::ZERO, &mut arena, &mut tx_ids, &mut tm, &mut app);
        s.activate(&mut ctx);
        for i in 0..10 {
            s.on_packet(&credit(i), &mut ctx);
        }
        assert_eq!(s.inflight, 10);
        let ack = AckInfo {
            sub: Subflow::Only,
            cum: 5,
            sack: [(0, 0); 3],
            sack_n: 0,
            ece: false,
            acked_flow_seq: 4,
        };
        s.on_packet(
            &Packet::new(3, 1, 0, CTRL_WIRE, TrafficClass::NewCtrl, Payload::Ack(ack)),
            &mut ctx,
        );
        assert_eq!(s.inflight, 5);
        s.on_packet(&credit(10), &mut ctx);
        assert_eq!(s.stats.data_pkts, 11);
    }
}
