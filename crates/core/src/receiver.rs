//! The FlexPass receiver: reassembly across both sub-flows, per-sub-flow
//! acknowledgment, and the ExpressPass credit loop scaled to `w_q`.

use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::consts::{packets_for, CTRL_WIRE};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats};
use flexpass_simnet::packet::{
    AckInfo, CreditInfo, DataInfo, FlowSpec, Packet, Payload, Subflow, TrafficClass,
};
use flexpass_simnet::sim::{timer_kind, timer_token, NetEnv};
use flexpass_simnet::trace;
use flexpass_transport::common::{AckBuilder, Reassembly};
use flexpass_transport::expresspass::CreditEngine;

use crate::config::{CreditPolicy, FlexPassConfig};

/// Timer kind: credit pacing tick.
const TK_CREDIT: u16 = 10;
/// Timer kind: credit feedback update.
const TK_FEEDBACK: u16 = 11;
/// Timer kind: linger teardown.
const TK_LINGER: u16 = 12;

/// The FlexPass receiver endpoint.
pub struct FlexPassReceiver {
    spec: FlowSpec,
    cfg: FlexPassConfig,
    reasm: Reassembly,
    /// ACK scoreboard of the reactive sub-flow (rseq space).
    racks: AckBuilder,
    /// ACK scoreboard of the proactive sub-flow (pseq space).
    packs: AckBuilder,
    engine: CreditEngine,
    credit_idx: u32,
    crediting: bool,
    credit_chain_live: bool,
    update_period: TimeDelta,
    completed: bool,
    torn_down: bool,
    /// Total credits sent (introspection).
    pub credits_sent: u64,
}

impl FlexPassReceiver {
    /// Creates a receiver for `spec`. The credit engine's maximum rate is
    /// the host line rate scaled by `cfg.wq` (§4.1: credits are allocated
    /// against the minimum guaranteed bandwidth only).
    pub fn new(spec: FlowSpec, cfg: FlexPassConfig, env: &NetEnv) -> Self {
        let n = packets_for(spec.size);
        let reasm = Reassembly::new(spec.size, n);
        let n = n.get();
        let mut ep = cfg.ep;
        if cfg.credit_policy == CreditPolicy::FixedRate {
            // pHost-style: pace at the guaranteed rate from the start and
            // never adapt (the feedback timer is disabled in `on_timer`).
            ep.init_rate_frac = 1.0;
        }
        let engine = CreditEngine::new(ep, env, spec.id);
        FlexPassReceiver {
            spec,
            cfg,
            reasm,
            racks: AckBuilder::new(n),
            packs: AckBuilder::new(n),
            engine,
            credit_idx: 0,
            crediting: false,
            credit_chain_live: false,
            update_period: env.base_rtt.max(TimeDelta::micros(20)),
            completed: false,
            torn_down: false,
            credits_sent: 0,
        }
    }

    /// Unique packets received so far (introspection).
    pub fn received(&self) -> u32 {
        self.reasm.received_count()
    }

    fn ctrl(&self, payload: Payload) -> Packet {
        Packet::new(
            self.spec.id,
            self.spec.dst,
            self.spec.src,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            payload,
        )
    }

    fn start_crediting(&mut self, ctx: &mut EndpointCtx) {
        if self.crediting || self.completed {
            return;
        }
        self.crediting = true;
        if !self.credit_chain_live {
            self.credit_chain_live = true;
            ctx.arm_timer(ctx.now, timer_token(self.spec.id, TK_CREDIT));
            ctx.arm_timer(
                ctx.now + self.update_period,
                timer_token(self.spec.id, TK_FEEDBACK),
            );
        }
    }

    fn send_credit(&mut self, ctx: &mut EndpointCtx) {
        let idx = self.credit_idx;
        self.credit_idx += 1;
        self.credits_sent += 1;
        self.engine.credits_sent_period += 1;
        trace::credit_sent(self.spec.id, u64::from(idx));
        ctx.send(Packet::new(
            self.spec.id,
            self.spec.dst,
            self.spec.src,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx }),
        ));
    }

    fn on_data(&mut self, pkt: &Packet, d: DataInfo, ctx: &mut EndpointCtx) {
        // Reassemble on the per-flow sequence; duplicates (e.g. a reactive
        // original racing its proactive retransmission) are discarded here.
        self.reasm.on_packet(d.flow_seq);

        // Acknowledge on the sub-flow the copy actually arrived on.
        let info: AckInfo = match d.sub {
            Subflow::Reactive => {
                self.racks.on_packet(d.sub_seq);
                self.racks
                    .build(Subflow::Reactive, pkt.ecn_ce, d.flow_seq, d.sub_seq)
            }
            Subflow::Proactive | Subflow::Only => {
                self.engine.data_rcvd_period += 1;
                self.packs.on_packet(d.sub_seq);
                self.packs
                    .build(Subflow::Proactive, pkt.ecn_ce, d.flow_seq, d.sub_seq)
            }
        };
        ctx.send(self.ctrl(Payload::Ack(info)));

        if self.reasm.complete() && !self.completed {
            self.completed = true;
            self.crediting = false;
            // Completion is final (`start_crediting` refuses once
            // completed), so both pacing chains can be cancelled outright.
            // A mid-flow `CreditStop` must instead let the chain fire and
            // observe `!crediting` — restart relies on that termination.
            ctx.cancel_timer(timer_token(self.spec.id, TK_CREDIT));
            ctx.cancel_timer(timer_token(self.spec.id, TK_FEEDBACK));
            ctx.emit(AppEvent::FlowCompleted {
                flow: self.spec.id,
                stats: RxStats {
                    pkts_received: self.reasm.received_count() as u64 + self.reasm.duplicates(),
                    dup_pkts: self.reasm.duplicates(),
                    reorder_peak_bytes: self.reasm.reorder_peak().get(),
                },
            });
            ctx.set_timer(
                ctx.now + self.cfg.linger,
                timer_token(self.spec.id, TK_LINGER),
            );
        }
    }
}

impl Endpoint for FlexPassReceiver {
    fn activate(&mut self, _ctx: &mut EndpointCtx) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        match pkt.payload {
            Payload::CreditReq { .. } => self.start_crediting(ctx),
            Payload::CreditStop => self.crediting = false,
            Payload::Data(d) => self.on_data(pkt, d, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        match timer_kind(token) {
            TK_CREDIT => {
                if self.crediting && !self.completed {
                    self.send_credit(ctx);
                    ctx.arm_timer(
                        ctx.now + self.engine.credit_interval(),
                        timer_token(self.spec.id, TK_CREDIT),
                    );
                } else {
                    self.credit_chain_live = false;
                }
            }
            TK_FEEDBACK
                if self.crediting
                    && !self.completed
                    && self.cfg.credit_policy == CreditPolicy::EpFeedback =>
            {
                self.engine.feedback_update();
                ctx.arm_timer(
                    ctx.now + self.update_period,
                    timer_token(self.spec.id, TK_FEEDBACK),
                );
            }
            TK_LINGER => self.torn_down = true,
            _ => {}
        }
    }

    fn finished(&self) -> bool {
        self.torn_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::time::{Rate, Time};
    use flexpass_simcore::units::Bytes;
    use flexpass_simnet::consts::data_wire_bytes;

    fn env() -> NetEnv {
        NetEnv {
            host_rate: Rate::from_gbps(10),
            base_rtt: TimeDelta::micros(20),
            n_hosts: 2,
        }
    }

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            id: 7,
            src: 0,
            dst: 1,
            size: Bytes::new(size),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        }
    }

    #[derive(Default)]
    struct H {
        arena: flexpass_simnet::arena::PacketArena,
        tx_ids: Vec<flexpass_simnet::arena::PacketId>,
        tx: Vec<Packet>,
        tm: Vec<flexpass_simnet::endpoint::TimerCmd>,
        app: Vec<AppEvent>,
    }

    impl H {
        fn with<R>(&mut self, now: Time, f: impl FnOnce(&mut EndpointCtx) -> R) -> R {
            let r = {
                let mut ctx = EndpointCtx::new(
                    now,
                    &mut self.arena,
                    &mut self.tx_ids,
                    &mut self.tm,
                    &mut self.app,
                );
                f(&mut ctx)
            };
            // Staged ids become packets in emission order, as the driver's
            // flush would see them.
            self.arena.drain_into(&mut self.tx_ids, &mut self.tx);
            r
        }

        /// First buffered Set/Arm request as `(at, token)`.
        fn armed(&self, i: usize) -> (Time, u64) {
            match self.tm[i] {
                flexpass_simnet::endpoint::TimerCmd::Set(at, tok)
                | flexpass_simnet::endpoint::TimerCmd::Arm(at, tok) => (at, tok),
                flexpass_simnet::endpoint::TimerCmd::Cancel(_) => {
                    panic!("expected an arming command at index {i}")
                }
            }
        }
    }

    fn data(flow_seq: u32, sub: Subflow, sub_seq: u32, ce: bool) -> Packet {
        let mut p = Packet::new(
            7,
            0,
            1,
            data_wire_bytes(Bytes::new(1460)),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq,
                sub_seq,
                sub,
                payload: Bytes::new(1460),
                retx: false,
            }),
        );
        p.ecn_ce = ce;
        p
    }

    fn req() -> Packet {
        Packet::new(
            7,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::CreditReq { pkts: 4 },
        )
    }

    #[test]
    fn credit_request_starts_pacing() {
        let mut r = FlexPassReceiver::new(spec(4 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| r.on_packet(&req(), ctx));
        // Pacing + feedback timers armed.
        assert_eq!(h.tm.len(), 2);
        // Fire the pacing timer: a credit goes out.
        let (at, tok) = h.armed(0);
        h.with(at, |ctx| r.on_timer(tok, ctx));
        let credits =
            h.tx.iter()
                .filter(|p| matches!(p.payload, Payload::Credit(_)))
                .count();
        assert_eq!(credits, 1);
        assert_eq!(h.tx[0].class, TrafficClass::Credit);
        assert_eq!(r.credits_sent, 1);
    }

    #[test]
    fn acks_ride_correct_subflow_and_echo_ce() {
        let mut r = FlexPassReceiver::new(spec(4 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| {
            r.on_packet(&data(0, Subflow::Reactive, 0, true), ctx)
        });
        h.with(Time::ZERO, |ctx| {
            r.on_packet(&data(1, Subflow::Proactive, 0, false), ctx)
        });
        assert_eq!(h.tx.len(), 2);
        match h.tx[0].payload {
            Payload::Ack(a) => {
                assert_eq!(a.sub, Subflow::Reactive);
                assert!(a.ece);
                assert_eq!(a.cum, 1);
            }
            _ => panic!("expected reactive ack"),
        }
        match h.tx[1].payload {
            Payload::Ack(a) => {
                assert_eq!(a.sub, Subflow::Proactive);
                assert!(!a.ece);
                assert_eq!(a.cum, 1);
            }
            _ => panic!("expected proactive ack"),
        }
    }

    #[test]
    fn duplicate_copies_discarded_in_reassembly() {
        let mut r = FlexPassReceiver::new(spec(2 * 1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        // Packet 0 arrives reactive, then again as a proactive retx.
        h.with(Time::ZERO, |ctx| {
            r.on_packet(&data(0, Subflow::Reactive, 0, false), ctx)
        });
        h.with(Time::ZERO, |ctx| {
            r.on_packet(&data(0, Subflow::Proactive, 0, false), ctx)
        });
        h.with(Time::ZERO, |ctx| {
            r.on_packet(&data(1, Subflow::Proactive, 1, false), ctx)
        });
        assert!(r.reasm_complete_for_test());
        let done: Vec<_> = h
            .app
            .iter()
            .filter_map(|e| match e {
                AppEvent::FlowCompleted { stats, .. } => Some(*stats),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].dup_pkts, 1);
        assert_eq!(done[0].pkts_received, 3);
    }

    #[test]
    fn completion_stops_crediting() {
        let mut r = FlexPassReceiver::new(spec(1460), FlexPassConfig::new(0.5), &env());
        let mut h = H::default();
        h.with(Time::ZERO, |ctx| r.on_packet(&req(), ctx));
        h.with(Time::ZERO, |ctx| {
            r.on_packet(&data(0, Subflow::Reactive, 0, false), ctx)
        });
        assert!(!r.crediting);
        // The pacing timer fires once more and dies without sending.
        let before =
            h.tx.iter()
                .filter(|p| matches!(p.payload, Payload::Credit(_)))
                .count();
        let (at, tok) = h.armed(0);
        h.with(at, |ctx| r.on_timer(tok, ctx));
        let after =
            h.tx.iter()
                .filter(|p| matches!(p.payload, Payload::Credit(_)))
                .count();
        assert_eq!(before, after);
        // Linger tears down.
        let linger_tok = timer_token(7, TK_LINGER);
        h.with(Time::from_millis(20), |ctx| r.on_timer(linger_tok, ctx));
        assert!(r.finished());
    }

    impl FlexPassReceiver {
        fn reasm_complete_for_test(&self) -> bool {
            self.reasm.complete()
        }
    }
}
