//! FlexPass protocol configuration.

use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::packet::TrafficClass;
use flexpass_transport::expresspass::EpConfig;

/// How the proactive sub-flow's credits are allocated (§4.3
/// "Extensibility of FlexPass": the credit allocation algorithm is
/// pluggable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreditPolicy {
    /// ExpressPass feedback control: probe for the highest credit rate
    /// whose loss at the shaped credit queues stays under a target
    /// (the paper's default — works in oversubscribed cores).
    EpFeedback,
    /// pHost-style fixed-rate tokens: pace credits at the guaranteed rate
    /// without a feedback loop. Suits non-blocking fabrics where the only
    /// contention is at the edge; simpler but wasteful in the core.
    FixedRate,
}

/// How the reactive sub-flow allocates packets from the shared send buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// FlexPass: both sub-flows pull the lowest pending packet at
    /// transmission time (MPTCP-style shared buffer, §4.2).
    Shared,
    /// RC3-style: the reactive ("recursive low priority") loop transmits
    /// from the *end* of the flow while the proactive loop transmits from
    /// the beginning (§4.3 "Alternative flow splitting schemes").
    Rc3Tail,
}

/// All FlexPass knobs with the paper's defaults.
#[derive(Clone, Copy, Debug)]
pub struct FlexPassConfig {
    /// Queue weight `w_q` reserved for FlexPass (Q1); also scales the credit
    /// allocation rate (§4.1).
    pub wq: f64,
    /// Reactive sub-flow initial window, in packets.
    pub init_cwnd: f64,
    /// Reactive DCTCP gain `g`.
    pub g: f64,
    /// Reactive maximum window, in packets.
    pub max_cwnd: f64,
    /// Sender RTO floor.
    pub min_rto: TimeDelta,
    /// Credit feedback-loop knobs (`max_rate_frac` is overwritten by `wq`).
    pub ep: EpConfig,
    /// Enable "proactive retransmission" of unacked reactive packets
    /// (§4.2 optimizing for tail latency). Disable for ablations.
    pub proactive_retx: bool,
    /// Let the reactive sub-flow transmit during the first RTT, before any
    /// credit arrives (Aeolus-style pre-credit transmission).
    pub reactive_first_rtt: bool,
    /// Traffic class of reactive data. `NewData` shares Q1 with proactive
    /// data (FlexPass); `Legacy` sends it to Q2 (the rejected "alternative
    /// queueing scheme" of Figure 5b).
    pub reactive_class: TrafficClass,
    /// Packet allocation policy for the reactive sub-flow.
    pub split: SplitPolicy,
    /// Credit allocation algorithm for the proactive sub-flow.
    pub credit_policy: CreditPolicy,
    /// Receiver linger before teardown.
    pub linger: TimeDelta,
}

impl FlexPassConfig {
    /// The paper's configuration for a given queue weight `w_q`.
    pub fn new(wq: f64) -> Self {
        assert!(wq > 0.0 && wq < 1.0, "w_q must be in (0, 1)");
        let ep = EpConfig {
            max_rate_frac: wq,
            ..EpConfig::default()
        };
        FlexPassConfig {
            wq,
            init_cwnd: 10.0,
            g: 1.0 / 16.0,
            max_cwnd: 4096.0,
            min_rto: TimeDelta::millis(4),
            ep,
            proactive_retx: true,
            reactive_first_rtt: true,
            reactive_class: TrafficClass::NewData,
            split: SplitPolicy::Shared,
            credit_policy: CreditPolicy::EpFeedback,
            linger: TimeDelta::millis(16),
        }
    }

    /// The Figure 5(a) comparison variant: RC3-style tail allocation.
    pub fn rc3_splitting(wq: f64) -> Self {
        FlexPassConfig {
            split: SplitPolicy::Rc3Tail,
            ..Self::new(wq)
        }
    }

    /// The Figure 5(b) comparison variant: reactive sub-flow in the legacy
    /// queue (Q2) instead of sharing Q1.
    pub fn alternative_queueing(wq: f64) -> Self {
        FlexPassConfig {
            reactive_class: TrafficClass::Legacy,
            ..Self::new(wq)
        }
    }
}

#[cfg(test)]
// Test expectations compare floats that are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = FlexPassConfig::new(0.5);
        assert_eq!(c.wq, 0.5);
        assert_eq!(c.ep.max_rate_frac, 0.5);
        assert!(c.proactive_retx);
        assert!(c.reactive_first_rtt);
        assert_eq!(c.split, SplitPolicy::Shared);
        assert_eq!(c.reactive_class, TrafficClass::NewData);
        assert_eq!(c.min_rto, TimeDelta::millis(4));
    }

    #[test]
    fn credit_policy_default_is_feedback() {
        assert_eq!(
            FlexPassConfig::new(0.5).credit_policy,
            CreditPolicy::EpFeedback
        );
    }

    #[test]
    fn variants() {
        assert_eq!(
            FlexPassConfig::rc3_splitting(0.5).split,
            SplitPolicy::Rc3Tail
        );
        assert_eq!(
            FlexPassConfig::alternative_queueing(0.5).reactive_class,
            TrafficClass::Legacy
        );
    }

    #[test]
    #[should_panic(expected = "w_q must be in")]
    fn rejects_bad_wq() {
        FlexPassConfig::new(1.0);
    }
}
