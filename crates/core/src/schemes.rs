//! The gradual-deployment model and the scheme-mixing transport factory.
//!
//! A deployment upgrades hosts rack by rack (§4.3 "Deployment scenario");
//! a flow uses the new transport only when *both* endpoints are upgraded
//! (§6.2). Everything else stays on DCTCP.

use flexpass_simcore::rng::SimRng;
use flexpass_simcore::units::Bytes;
use flexpass_simnet::endpoint::Endpoint;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::{NetEnv, TransportFactory};
use flexpass_simnet::switch::SwitchProfile;
use flexpass_transport::dctcp::{DctcpConfig, DctcpReceiver, DctcpSender};
use flexpass_transport::expresspass::{EpConfig, EpReceiver, EpSender};

use crate::config::FlexPassConfig;
use crate::layering::LySender;
use crate::profiles::{
    flexpass_profile, layering_profile, naive_profile, owf_profile, ProfileParams,
};
use crate::receiver::FlexPassReceiver;
use crate::sender::FlexPassSender;

/// Flow tag for legacy (DCTCP) flows in metrics.
pub const TAG_LEGACY: u32 = 0;
/// Flow tag for upgraded (new-transport) flows in metrics.
pub const TAG_UPGRADED: u32 = 1;

/// The deployment schemes compared in §6.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Naïve ExpressPass rollout: shared queue, full-rate credits.
    Naive,
    /// Oracle weighted fair queueing: per-queue isolation with weights set
    /// from the known upgraded-traffic fraction.
    OracleWfq,
    /// Layering: ExpressPass + DCTCP window overlay in a shared queue.
    Layering,
    /// FlexPass.
    FlexPass,
}

impl Scheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Naive,
        Scheme::OracleWfq,
        Scheme::Layering,
        Scheme::FlexPass,
    ];

    /// Display label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Naive => "naive",
            Scheme::OracleWfq => "owf",
            Scheme::Layering => "ly",
            Scheme::FlexPass => "flexpass",
        }
    }

    /// The switch/NIC profile for this scheme. `upgraded_frac` is the
    /// oracle's knowledge of the upgraded traffic share (only oWF uses it).
    pub fn profile(&self, p: &ProfileParams, upgraded_frac: f64) -> SwitchProfile {
        match self {
            Scheme::Naive => naive_profile(p),
            Scheme::OracleWfq => owf_profile(p, upgraded_frac),
            Scheme::Layering => layering_profile(p),
            Scheme::FlexPass => flexpass_profile(p),
        }
    }
}

/// Which hosts have been upgraded to the new transport.
#[derive(Clone, Debug)]
pub struct Deployment {
    upgraded: Vec<bool>,
}

impl Deployment {
    /// No host upgraded.
    pub fn none(n_hosts: usize) -> Self {
        Deployment {
            upgraded: vec![false; n_hosts],
        }
    }

    /// Every host upgraded.
    pub fn full(n_hosts: usize) -> Self {
        Deployment {
            upgraded: vec![true; n_hosts],
        }
    }

    /// An explicit per-host upgrade map.
    pub fn from_hosts(upgraded: Vec<bool>) -> Self {
        Deployment { upgraded }
    }

    /// Upgrades a fraction of racks (the paper's per-rack rollout): racks
    /// are chosen by a deterministic shuffle of `rng`.
    pub fn by_rack_ratio(rack_of: &[usize], ratio: f64, rng: &mut SimRng) -> Self {
        assert!((0.0..=1.0).contains(&ratio));
        let n_racks = rack_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut racks: Vec<usize> = (0..n_racks).collect();
        // Fisher-Yates with the deterministic RNG.
        for i in (1..racks.len()).rev() {
            let j = rng.index(i + 1);
            racks.swap(i, j);
        }
        let k = (ratio * n_racks as f64).round() as usize;
        let chosen: std::collections::BTreeSet<usize> = racks.into_iter().take(k).collect();
        Deployment {
            upgraded: rack_of.iter().map(|r| chosen.contains(r)).collect(),
        }
    }

    /// Whether a host is upgraded.
    pub fn host_upgraded(&self, host: usize) -> bool {
        self.upgraded[host]
    }

    /// A flow is upgraded when both endpoints are (§6.2).
    pub fn flow_upgraded(&self, spec: &FlowSpec) -> bool {
        self.upgraded[spec.src] && self.upgraded[spec.dst]
    }

    /// Number of upgraded hosts.
    pub fn upgraded_hosts(&self) -> usize {
        self.upgraded.iter().filter(|&&u| u).count()
    }

    /// Metrics tag for a flow under this deployment.
    pub fn tag_for(&self, spec: &FlowSpec) -> u32 {
        if self.flow_upgraded(spec) {
            TAG_UPGRADED
        } else {
            TAG_LEGACY
        }
    }

    /// Fraction of the given flows' bytes that would ride the new
    /// transport — the oracle input for oWF queue weights.
    pub fn upgraded_byte_fraction(&self, flows: &[FlowSpec]) -> f64 {
        let mut total = Bytes::ZERO;
        let mut upgraded = Bytes::ZERO;
        for f in flows {
            total += f.size;
            if self.flow_upgraded(f) {
                upgraded += f.size;
            }
        }
        if total.is_zero() {
            0.0
        } else {
            upgraded.as_f64() / total.as_f64()
        }
    }
}

/// A transport factory that mixes legacy DCTCP flows with upgraded flows of
/// the configured scheme.
pub struct SchemeFactory {
    scheme: Scheme,
    deployment: Deployment,
    dctcp: DctcpConfig,
    ep: EpConfig,
    fp: FlexPassConfig,
}

impl SchemeFactory {
    /// Builds the factory for `scheme` under `deployment`.
    ///
    /// * Naïve / Layering: ExpressPass credits at the full link rate.
    /// * oWF: credits scaled to the oracle's `upgraded_frac`.
    /// * FlexPass: `fp_cfg` (usually [`FlexPassConfig::new`] with w_q).
    pub fn new(
        scheme: Scheme,
        deployment: Deployment,
        fp_cfg: FlexPassConfig,
        upgraded_frac: f64,
    ) -> Self {
        let mut ep = EpConfig::default();
        if scheme == Scheme::OracleWfq {
            ep.max_rate_frac = upgraded_frac.clamp(0.02, 0.98);
        }
        SchemeFactory {
            scheme,
            deployment,
            dctcp: DctcpConfig::default(),
            ep,
            fp: fp_cfg,
        }
    }

    /// Overrides the DCTCP (legacy) configuration.
    pub fn with_dctcp(mut self, cfg: DctcpConfig) -> Self {
        self.dctcp = cfg;
        self
    }

    /// The deployment in effect (e.g. to tag flows consistently).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }
}

impl TransportFactory for SchemeFactory {
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        if !self.deployment.flow_upgraded(flow) {
            return Box::new(DctcpSender::new(*flow, self.dctcp, env));
        }
        match self.scheme {
            Scheme::Naive | Scheme::OracleWfq => Box::new(EpSender::new(*flow, self.ep, env)),
            Scheme::Layering => Box::new(LySender::new(*flow, self.ep, env)),
            Scheme::FlexPass => Box::new(FlexPassSender::new(*flow, self.fp, env)),
        }
    }

    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        if !self.deployment.flow_upgraded(flow) {
            return Box::new(DctcpReceiver::new(*flow, self.dctcp, env));
        }
        match self.scheme {
            Scheme::Naive | Scheme::OracleWfq | Scheme::Layering => {
                Box::new(EpReceiver::new(*flow, self.ep, env))
            }
            Scheme::FlexPass => Box::new(FlexPassReceiver::new(*flow, self.fp, env)),
        }
    }

    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        // Scheme dispatch reads only immutable configuration and the
        // deployment map: endpoint construction is a pure function of
        // (flow, env), so per-domain clones never diverge.
        Some(Box::new(SchemeFactory {
            scheme: self.scheme,
            deployment: self.deployment.clone(),
            dctcp: self.dctcp,
            ep: self.ep,
            fp: self.fp,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_simcore::time::Time;

    fn spec(src: usize, dst: usize) -> FlowSpec {
        FlowSpec {
            id: 1,
            src,
            dst,
            size: Bytes::new(1000),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        }
    }

    #[test]
    fn rack_deployment_upgrades_whole_racks() {
        let rack_of: Vec<usize> = (0..24).map(|h| h / 6).collect(); // 4 racks
        let mut rng = SimRng::new(1);
        let d = Deployment::by_rack_ratio(&rack_of, 0.5, &mut rng);
        assert_eq!(d.upgraded_hosts(), 12);
        // Hosts of the same rack share upgrade status.
        for h in 0..24 {
            assert_eq!(d.host_upgraded(h), d.host_upgraded(6 * (h / 6)));
        }
    }

    #[test]
    fn flow_upgraded_requires_both_ends() {
        let rack_of: Vec<usize> = (0..12).map(|h| h / 6).collect(); // 2 racks
        let mut rng = SimRng::new(2);
        let d = Deployment::by_rack_ratio(&rack_of, 0.5, &mut rng);
        let up: Vec<usize> = (0..12).filter(|&h| d.host_upgraded(h)).collect();
        let down: Vec<usize> = (0..12).filter(|&h| !d.host_upgraded(h)).collect();
        assert!(d.flow_upgraded(&spec(up[0], up[1])));
        assert!(!d.flow_upgraded(&spec(up[0], down[0])));
        assert!(!d.flow_upgraded(&spec(down[0], down[1])));
        assert_eq!(d.tag_for(&spec(up[0], up[1])), TAG_UPGRADED);
        assert_eq!(d.tag_for(&spec(down[0], down[1])), TAG_LEGACY);
    }

    #[test]
    fn ratio_extremes() {
        let rack_of: Vec<usize> = (0..12).map(|h| h / 6).collect();
        let mut rng = SimRng::new(3);
        assert_eq!(
            Deployment::by_rack_ratio(&rack_of, 0.0, &mut rng).upgraded_hosts(),
            0
        );
        assert_eq!(
            Deployment::by_rack_ratio(&rack_of, 1.0, &mut rng).upgraded_hosts(),
            12
        );
        assert_eq!(Deployment::none(5).upgraded_hosts(), 0);
        assert_eq!(Deployment::full(5).upgraded_hosts(), 5);
    }

    #[test]
    fn upgraded_byte_fraction() {
        let d = Deployment {
            upgraded: vec![true, true, false],
        };
        let flows = vec![
            FlowSpec {
                size: Bytes::new(3000),
                ..spec(0, 1)
            },
            FlowSpec {
                size: Bytes::new(1000),
                ..spec(0, 2)
            },
        ];
        assert!((d.upgraded_byte_fraction(&flows) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(Scheme::FlexPass.label(), "flexpass");
    }
}
