//! FlexPass: a flexible credit-based transport for datacenter networks
//! (Lim et al., EuroSys 2023) — the paper's primary contribution.
//!
//! A FlexPass flow is split into two cooperating sub-flows sharing one send
//! buffer:
//!
//! * a **proactive sub-flow** — ExpressPass credits allocated against the
//!   *minimum guaranteed* bandwidth (`w_q` of line rate), delivering
//!   predictable, loss-free scheduled packets;
//! * a **reactive sub-flow** — DCTCP-windowed unscheduled packets that
//!   opportunistically soak up spare bandwidth left by legacy traffic; its
//!   packets are colored *red* so switches can selectively drop them the
//!   moment they would build a queue.
//!
//! The sender keeps the paper's per-packet state machine (Figure 4):
//! `Pending → SentReactive/SentProactive → Acked`, with `Lost` detected per
//! sub-flow; credits drain in the priority order **Lost → Pending → Sent as
//! reactive** (the last being the tail-latency-saving "proactive
//! retransmission"). The reactive sub-flow never retransmits: recovery
//! always rides the reliable proactive channel.
//!
//! Modules:
//!
//! * [`config`] — all protocol knobs with the paper's defaults.
//! * [`sender`] / [`receiver`] — the FlexPass endpoints.
//! * [`profiles`] — switch/NIC queue configurations for every deployment
//!   scheme (FlexPass, Naïve, Oracle WFQ, Layering, Homa-mix, DCTCP-only).
//! * [`schemes`] — the deployment model (per-rack upgrades) and the
//!   [`schemes::SchemeFactory`] mixing legacy and upgraded flows.
//! * [`layering`] — the Layering (LY) comparison scheme: ExpressPass with a
//!   DCTCP window overlay.
//!
//! # Examples
//!
//! ```
//! use flexpass::config::FlexPassConfig;
//! use flexpass::profiles::{flexpass_profile, ProfileParams};
//! use flexpass::FlexPassFactory;
//! use flexpass_simcore::time::{Rate, Time, TimeDelta};
//! use flexpass_simcore::units::Bytes;
//! use flexpass_simnet::packet::FlowSpec;
//! use flexpass_simnet::sim::{NullObserver, Sim};
//! use flexpass_simnet::topology::Topology;
//!
//! let params = ProfileParams::testbed(Rate::from_gbps(10));
//! let profile = flexpass_profile(&params);
//! let topo = Topology::star(3, params.rate, TimeDelta::micros(5), &profile, &profile);
//! let cfg = FlexPassConfig::new(0.5);
//! let mut sim = Sim::new(topo, Box::new(FlexPassFactory::new(cfg)), NullObserver);
//! sim.schedule_flow(FlowSpec {
//!     id: 1, src: 0, dst: 2, size: Bytes::new(100_000), start: Time::ZERO, tag: 0, fg: false,
//! });
//! sim.run_to_completion(TimeDelta::millis(5));
//! assert_eq!(sim.flows_completed(), 1);
//! ```

pub mod config;
pub mod layering;
pub mod profiles;
pub mod receiver;
pub mod schemes;
pub mod sender;

pub use config::{CreditPolicy, FlexPassConfig};
pub use receiver::FlexPassReceiver;
pub use schemes::{Deployment, Scheme, SchemeFactory};
pub use sender::FlexPassSender;

use flexpass_simnet::endpoint::Endpoint;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::{NetEnv, TransportFactory};

/// Factory producing pure FlexPass flows (every host upgraded).
pub struct FlexPassFactory {
    /// Configuration applied to every flow.
    pub cfg: FlexPassConfig,
}

impl FlexPassFactory {
    /// Creates a factory from a configuration.
    pub fn new(cfg: FlexPassConfig) -> Self {
        FlexPassFactory { cfg }
    }
}

impl TransportFactory for FlexPassFactory {
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(FlexPassSender::new(*flow, self.cfg, env))
    }
    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(FlexPassReceiver::new(*flow, self.cfg, env))
    }
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        // Endpoints are a pure function of (flow, cfg, env): safe to clone
        // per partition domain.
        Some(Box::new(FlexPassFactory { cfg: self.cfg }))
    }
}
