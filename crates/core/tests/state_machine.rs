//! Property tests for the FlexPass sender's Figure-4 state machine, driven
//! directly with synthetic credits and acknowledgments.

use flexpass::config::FlexPassConfig;
use flexpass::FlexPassSender;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::arena::PacketArena;
use flexpass_simnet::consts::CTRL_WIRE;
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, TimerCmd};
use flexpass_simnet::packet::{
    AckInfo, CreditInfo, DataInfo, FlowSpec, Packet, Payload, Subflow, TrafficClass,
};
use flexpass_simnet::sim::NetEnv;
use proptest::prelude::*;
use std::collections::HashMap;

fn env() -> NetEnv {
    NetEnv {
        host_rate: Rate::from_gbps(10),
        base_rtt: TimeDelta::micros(20),
        n_hosts: 2,
    }
}

fn spec(n_pkts: u32) -> FlowSpec {
    FlowSpec {
        id: 9,
        src: 0,
        dst: 1,
        size: Bytes::new(1460) * u64::from(n_pkts),
        start: Time::ZERO,
        tag: 0,
        fg: false,
    }
}

fn credit(idx: u32) -> Packet {
    Packet::new(
        9,
        1,
        0,
        CTRL_WIRE,
        TrafficClass::Credit,
        Payload::Credit(CreditInfo { idx }),
    )
}

fn ack(sub: Subflow, cum: u32, lo: u32, hi: u32) -> Packet {
    let sack_n = u8::from(hi > lo);
    Packet::new(
        9,
        1,
        0,
        CTRL_WIRE,
        TrafficClass::NewCtrl,
        Payload::Ack(AckInfo {
            sub,
            cum,
            sack: [(lo, hi), (0, 0), (0, 0)],
            sack_n,
            ece: false,
            acked_flow_seq: hi.max(cum).saturating_sub(1),
        }),
    )
}

/// A synthetic "network + receiver" that delivers a configurable fraction
/// of packets and acknowledges per sub-flow, in order.
struct FakeReceiver {
    /// Received sub-seqs per sub-flow.
    got: HashMap<Subflow, Vec<bool>>,
}

impl FakeReceiver {
    fn new() -> Self {
        let mut got = HashMap::new();
        got.insert(Subflow::Reactive, Vec::new());
        got.insert(Subflow::Proactive, Vec::new());
        FakeReceiver { got }
    }

    /// Records delivery of a data packet; returns the ACK to feed back.
    fn deliver(&mut self, d: DataInfo) -> Packet {
        let v = self.got.get_mut(&d.sub).expect("subflow");
        if d.sub_seq as usize >= v.len() {
            v.resize(d.sub_seq as usize + 1, false);
        }
        v[d.sub_seq as usize] = true;
        let cum = v.iter().position(|&g| !g).unwrap_or(v.len()) as u32;
        // Single SACK range around the newest arrival.
        let mut lo = d.sub_seq;
        while lo > cum && v[(lo - 1) as usize] {
            lo -= 1;
        }
        let mut hi = d.sub_seq + 1;
        while (hi as usize) < v.len() && v[hi as usize] {
            hi += 1;
        }
        ack(d.sub, cum, lo.max(cum), hi.max(cum))
    }
}

/// Applies buffered timer commands to a one-slot-per-token table and
/// returns the tokens due at `now`, mimicking the simulator's arm/cancel
/// bookkeeping (Set and Arm both land in the table; Cancel clears it).
fn drain_timers(
    armed: &mut std::collections::BTreeMap<u64, Time>,
    tm: &mut Vec<TimerCmd>,
    now: Time,
) -> Vec<u64> {
    for cmd in tm.drain(..) {
        match cmd {
            TimerCmd::Set(at, tok) | TimerCmd::Arm(at, tok) => {
                armed.insert(tok, at);
            }
            TimerCmd::Cancel(tok) => {
                armed.remove(&tok);
            }
        }
    }
    let due: Vec<u64> = armed
        .iter()
        .filter(|&(_, &at)| at <= now)
        .map(|(&tok, _)| tok)
        .collect();
    for tok in &due {
        armed.remove(tok);
    }
    due
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any pattern of packet drops, enough credits eventually deliver
    /// the whole flow: the state machine never deadlocks, never double
    /// counts, and reports SenderDone exactly once with consistent stats.
    #[test]
    fn sender_completes_under_random_drops(
        seed in 0u64..100_000,
        n in 1u32..120,
        drop_rate in 0.0f64..0.6,
    ) {
        let mut s = FlexPassSender::new(spec(n), FlexPassConfig::new(0.5), &env());
        let mut rx = FakeReceiver::new();
        let mut rng = SimRng::new(seed);
        let mut arena = PacketArena::new();
        let mut tx_ids = Vec::new();
        let mut tx = Vec::new();
        let mut tm = Vec::new();
        let mut app = Vec::new();
        let mut armed = std::collections::BTreeMap::new();
        let mut now = Time::ZERO;
        {
            let mut ctx = EndpointCtx::new(now, &mut arena, &mut tx_ids, &mut tm, &mut app);
            s.activate(&mut ctx);
        }
        arena.drain_into(&mut tx_ids, &mut tx);
        let mut credit_idx = 0u32;
        let mut rounds = 0;
        while !s.finished() && rounds < 50_000 {
            rounds += 1;
            now += TimeDelta::micros(3);
            // Process everything the sender emitted last step: data packets
            // are delivered or dropped; delivered ones produce acks that we
            // feed back immediately (plus the next credit).
            let outgoing: Vec<Packet> = std::mem::take(&mut tx);
            let mut inbound: Vec<Packet> = Vec::new();
            for p in outgoing {
                if let Payload::Data(d) = p.payload {
                    // Proactive packets are never congestion-dropped (§4.1);
                    // reactive packets drop at the given rate.
                    let dropped = d.sub == Subflow::Reactive && rng.chance(drop_rate);
                    if !dropped {
                        inbound.push(rx.deliver(d));
                    }
                }
            }
            // One credit per round keeps the proactive loop clocked.
            inbound.push(credit(credit_idx));
            credit_idx += 1;
            {
                let mut ctx = EndpointCtx::new(now, &mut arena, &mut tx_ids, &mut tm, &mut app);
                for p in inbound {
                    s.on_packet(&p, &mut ctx);
                }
            }
            arena.drain_into(&mut tx_ids, &mut tx);
            // Fire any due timers through the arm/cancel table.
            let due = drain_timers(&mut armed, &mut tm, now);
            {
                let mut ctx = EndpointCtx::new(now, &mut arena, &mut tx_ids, &mut tm, &mut app);
                for token in due {
                    s.on_timer(token, &mut ctx);
                }
            }
            arena.drain_into(&mut tx_ids, &mut tx);
        }
        prop_assert!(s.finished(), "sender wedged after {rounds} rounds (n={n})");
        let dones: Vec<_> = app
            .iter()
            .filter(|e| matches!(e, AppEvent::SenderDone { .. }))
            .collect();
        prop_assert_eq!(dones.len(), 1, "SenderDone emitted {} times", dones.len());
        if let AppEvent::SenderDone { stats, .. } = dones[0] {
            prop_assert!(stats.data_pkts >= n as u64);
            prop_assert!(stats.data_bytes >= n as u64 * 1460);
            // Redundant bytes are bounded by total sent bytes.
            prop_assert!(stats.redundant_bytes <= stats.data_bytes);
        }
    }

    /// With a lossless network, the flow completes with zero
    /// retransmissions and zero redundancy.
    #[test]
    fn lossless_run_has_no_redundancy(seed in 0u64..10_000, n in 1u32..100) {
        let mut s = FlexPassSender::new(spec(n), FlexPassConfig::new(0.5), &env());
        let mut rx = FakeReceiver::new();
        let _ = seed;
        let mut arena = PacketArena::new();
        let mut tx_ids = Vec::new();
        let mut tx = Vec::new();
        let mut tm = Vec::new();
        let mut app = Vec::new();
        let mut armed = std::collections::BTreeMap::new();
        let mut now = Time::ZERO;
        {
            let mut ctx = EndpointCtx::new(now, &mut arena, &mut tx_ids, &mut tm, &mut app);
            s.activate(&mut ctx);
        }
        arena.drain_into(&mut tx_ids, &mut tx);
        let mut credit_idx = 0u32;
        let mut rounds = 0;
        while !s.finished() && rounds < 10_000 {
            rounds += 1;
            now += TimeDelta::micros(2);
            let outgoing: Vec<Packet> = std::mem::take(&mut tx);
            let mut inbound = Vec::new();
            for p in outgoing {
                if let Payload::Data(d) = p.payload {
                    inbound.push(rx.deliver(d));
                }
            }
            // Only issue a credit while data remains; acks answer instantly,
            // so the sender should finish without ever needing recovery.
            inbound.push(credit(credit_idx));
            credit_idx += 1;
            {
                let mut ctx = EndpointCtx::new(now, &mut arena, &mut tx_ids, &mut tm, &mut app);
                for p in inbound {
                    s.on_packet(&p, &mut ctx);
                }
            }
            arena.drain_into(&mut tx_ids, &mut tx);
            // Fire due timers through the arm/cancel table.
            let due = drain_timers(&mut armed, &mut tm, now);
            {
                let mut ctx = EndpointCtx::new(now, &mut arena, &mut tx_ids, &mut tm, &mut app);
                for token in due {
                    s.on_timer(token, &mut ctx);
                }
            }
            arena.drain_into(&mut tx_ids, &mut tx);
        }
        prop_assert!(s.finished());
        prop_assert_eq!(s.stats().retx_pkts, 0);
        prop_assert_eq!(s.stats().timeouts, 0);
    }
}
