//! §6.2 "Bounded queue" + §4.2 redundancy: Q1 occupancy statistics during
//! the rollout, the share of red (reactive) bytes in it, the selective-drop
//! rate, and the proactive-retransmission redundancy fraction.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::topology::Topology;
use flexpass_workload::FlowSizeCdf;

use std::sync::Arc;

use flexpass_simcore::ProgressProbe;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{run_flows_probed, RunScale, ScenarioResult};
use crate::sweep::{build_flows, SweepSpec};

/// One deployment point with queue sampling enabled.
fn run_queue_point(ratio: f64, scale: RunScale, probe: Option<Arc<ProgressProbe>>) -> Recorder {
    let spec = SweepSpec {
        schemes: vec![Scheme::FlexPass],
        ratios: vec![ratio],
        cdf: FlowSizeCdf::web_search(),
        load: 0.5,
        mixed: false,
        scale,
        seed: 41,
        wq: 0.5,
        sel_drop: 150_000,
        n_flows: None,
        seeds: 1,
    };
    let clos = scale.clos();
    let n_hosts = clos.n_hosts();
    let rack_of: Vec<usize> = (0..n_hosts).map(|h| h / clos.hosts_per_tor).collect();
    let mut rng = SimRng::new(99);
    let deployment = Deployment::by_rack_ratio(&rack_of, ratio, &mut rng);
    let flows = build_flows(&spec, &deployment, n_hosts);
    let frac = deployment.upgraded_byte_fraction(&flows);
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = Scheme::FlexPass.profile(&params, frac);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, FlexPassConfig::new(0.5), frac);
    run_flows_probed(
        topo,
        Box::new(factory),
        Recorder::new().with_queue_watch(1),
        &flows,
        Some(TimeDelta::micros(100)),
        TimeDelta::millis(20),
        probe,
    )
}

/// The queue-occupancy and redundancy study at 50 % and 100 % deployment.
pub fn queue_study(scale: RunScale) -> ScenarioResult {
    let mut csv = Csv::new(&[
        "deploy_ratio",
        "q1_avg_kb",
        "q1_p90_kb",
        "q1_busy_avg_kb",
        "q1_busy_p90_kb",
        "q1_red_avg_kb",
        "q1_red_p90_kb",
        "q1_peak_kb",
        "red_drop_pkts",
        "redundancy_frac",
        "timeouts",
    ]);
    let ratios = [0.5, 1.0];
    let tasks: Vec<Task<Recorder>> = ratios
        .iter()
        .map(|&ratio| {
            Task::new(format!("r{ratio:.2}"), move |ctx: &TaskCtx| {
                run_queue_point(ratio, scale, Some(Arc::clone(&ctx.probe)))
            })
        })
        .collect();
    for (&ratio, r) in ratios
        .iter()
        .zip(orchestrate::run_tasks("queue_study", tasks))
    {
        let mut rec = r.unwrap_or_else(|_| Recorder::new());
        let avg = rec.q_bytes.mean();
        let p90 = rec.q_bytes.quantile(0.9);
        let busy_avg = rec.q_busy_bytes.mean();
        let busy_p90 = rec.q_busy_bytes.quantile(0.9);
        let ravg = rec.q_red_bytes.mean();
        let rp90 = rec.q_red_bytes.quantile(0.9);
        csv.row(&[
            format!("{ratio:.2}"),
            f(avg / 1e3),
            f(p90 / 1e3),
            f(busy_avg / 1e3),
            f(busy_p90 / 1e3),
            f(ravg / 1e3),
            f(rp90 / 1e3),
            f(rec.q_peak as f64 / 1e3),
            rec.red_drops.to_string(),
            f(rec.redundancy_fraction()),
            rec.total_timeouts().to_string(),
        ]);
    }
    ScenarioResult::new("queue_study", csv)
}
