//! The `scale` scenario: a parameterized Clos driven to O(10k) hosts
//! (ROADMAP item 3), built on the streaming recorder so metrics memory
//! stays O(live flows) instead of O(flows).
//!
//! Unlike the paper figures (192-host fabric, exact per-flow records),
//! this scenario exists to prove the substrate scales: a dense 40-host
//! rack / 8-ToR-pod fabric from [`ClosParams::with_hosts`], a Poisson
//! background workload, a fully-upgraded FlexPass deployment, and a
//! [`Recorder`] in streaming mode. It runs through
//! [`crate::orchestrate`] (so `--par-sim N` partitions the fabric and
//! the heartbeat reports events/sec, arena growth, and process RSS) and
//! writes one CSV of per-(tag, size-decade) sketch statistics.
//!
//! Invoked explicitly (`--fig scale`), never as part of `--fig all`:
//! the default point simulates 10,240 hosts.

use std::sync::Arc;

use flexpass::config::FlexPassConfig;
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
use flexpass_metrics::Recorder;
use flexpass_simcore::time::TimeDelta;
use flexpass_simcore::ProgressProbe;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::TransportFactory;
use flexpass_simnet::topology::{ClosParams, Topology};
use flexpass_workload::{background, BackgroundParams, FlowSizeCdf};

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{run_flows_probed, RunScale, ScenarioResult};

/// Parameters of one scale point.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSpec {
    /// Requested host count (rounded up to whole pods by
    /// [`ClosParams::with_hosts`]).
    pub hosts: usize,
    /// Background flows to schedule.
    pub n_flows: usize,
    /// Flow-size truncation cap, bytes (bounds the run length).
    pub size_cap: f64,
    /// Target core load.
    pub load: f64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl ScaleSpec {
    /// The preset for a `--scale` level: smoke stays CI-sized, default
    /// and full drive the 10k-host fabric with growing flow counts.
    pub fn preset(scale: RunScale) -> ScaleSpec {
        match scale {
            RunScale::Smoke => ScaleSpec {
                hosts: 2_560,
                n_flows: 5_000,
                size_cap: 100_000.0,
                load: 0.1,
                seed: 1,
            },
            RunScale::Default => ScaleSpec {
                hosts: 10_240,
                n_flows: 20_000,
                size_cap: 1_000_000.0,
                load: 0.1,
                seed: 1,
            },
            RunScale::Full => ScaleSpec {
                hosts: 10_240,
                n_flows: 200_000,
                size_cap: 10_000_000.0,
                load: 0.1,
                seed: 1,
            },
        }
    }
}

/// Builds the topology, transport factory, and workload of one scale
/// point. Shared with the substrate bench so the gated measurement runs
/// exactly the scenario's simulation.
pub fn build_point(spec: &ScaleSpec) -> (Topology, Box<dyn TransportFactory>, Vec<FlowSpec>) {
    let clos = ClosParams::with_hosts(spec.hosts);
    let n_hosts = clos.n_hosts();
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = Scheme::FlexPass.profile(&params, 1.0);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);

    let deployment = Deployment::from_hosts(vec![true; n_hosts]);
    let cdf = FlowSizeCdf::web_search().truncate(spec.size_cap);
    let mut flows = background(
        &cdf,
        &BackgroundParams {
            n_hosts,
            host_rate: clos.link_rate,
            oversub: 3.0,
            load: spec.load,
            n_flows: spec.n_flows,
            seed: spec.seed,
            first_id: 0,
        },
    );
    for fl in &mut flows {
        fl.tag = deployment.tag_for(fl);
    }
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, FlexPassConfig::new(0.5), 1.0);
    (topo, Box::new(factory), flows)
}

/// Runs one scale point with a streaming recorder (exact mode would
/// retain `n_flows` records — the failure mode this scenario exists to
/// avoid).
pub fn run_point(spec: &ScaleSpec, probe: Option<Arc<ProgressProbe>>) -> Recorder {
    let (topo, factory, flows) = build_point(spec);
    run_flows_probed(
        topo,
        factory,
        Recorder::new().with_streaming(),
        &flows,
        None,
        TimeDelta::millis(20),
        probe,
    )
}

/// Renders the per-(tag, size-decade) sketch table: counts are exact,
/// mean/max exact, p50/p99 within the sketch's documented relative
/// error. Deterministic row order (BTreeMap key order).
pub fn sketch_csv(rec: &Recorder) -> Csv {
    let mut csv = Csv::new(&[
        "tag",
        "size_decade",
        "flows",
        "avg_fct_ms",
        "p50_fct_ms",
        "p99_fct_ms",
        "max_fct_ms",
    ]);
    for ((tag, decade), s) in rec.sketches() {
        csv.row(&[
            tag.to_string(),
            decade.to_string(),
            s.count().to_string(),
            f(s.mean() * 1e3),
            f(s.p50() * 1e3),
            f(s.p99() * 1e3),
            f(s.max() * 1e3),
        ]);
    }
    csv
}

/// The full scenario: one point at the preset for `scale`, run through
/// the worker pool so the heartbeat (events/sec, arena growth, RSS)
/// covers it. A failed point renders as an empty table.
pub fn scenario(scale: RunScale) -> Vec<ScenarioResult> {
    let spec = ScaleSpec::preset(scale);
    let label = format!("{}h-{}f", spec.hosts, spec.n_flows);
    let mut results = orchestrate::run_tasks(
        "scale",
        vec![Task::new(label, move |ctx: &TaskCtx| {
            run_point(&spec, Some(Arc::clone(&ctx.probe)))
        })],
    )
    .into_iter();
    let rec = results
        .next()
        .expect("one result per scale point")
        .unwrap_or_else(|_| Recorder::new().with_streaming());

    let peak = flexpass_simcore::mem::peak_rss_bytes()
        .map(|b| format!("{} MiB", b / (1024 * 1024)))
        .unwrap_or_else(|| "n/a".to_string());
    eprintln!(
        "scale: {} flows completed | live {} | retained samples {} | \
         p99(<100kB) {:.3} ms | avg {:.3} ms | peak rss {}",
        rec.completed(),
        rec.live_flows(),
        rec.retained_samples(),
        rec.p99_small(None) * 1e3,
        rec.avg_fct(None) * 1e3,
        peak,
    );

    vec![ScenarioResult::new("scale_fct_sketch", sketch_csv(&rec))]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole differential: the same fig9-scale (tiny Clos)
    /// simulation run once exact and once streaming must agree — count,
    /// mean, max exactly; p50/p99 within the sketch's documented error.
    #[test]
    fn streaming_matches_exact_on_a_real_simulation() {
        let spec = ScaleSpec {
            hosts: 48,
            n_flows: 200,
            size_cap: 100_000.0,
            load: 0.1,
            seed: 7,
        };
        // Small-fabric override: with_hosts rounds 48 up to a whole pod
        // (320 hosts); that is fine — the point is exact-vs-streaming on
        // identical inputs, not the fabric size.
        let run = |streaming: bool| {
            let (topo, factory, flows) = build_point(&spec);
            let rec = if streaming {
                Recorder::new().with_streaming()
            } else {
                Recorder::new()
            };
            run_flows_probed(
                topo,
                factory,
                rec,
                &flows,
                None,
                TimeDelta::millis(20),
                None,
            )
        };
        let exact = run(false);
        let stream = run(true);
        assert!(exact.completed() > 0, "simulation completed no flows");
        assert_eq!(stream.completed(), exact.completed());
        assert_eq!(stream.retained_samples(), 0);
        assert!((stream.avg_fct(None) - exact.avg_fct(None)).abs() < 1e-12);
        let (sp, ep) = (stream.p99_small(None), exact.p99_small(None));
        assert!(
            (sp - ep).abs() <= flexpass_simcore::FctSketch::RELATIVE_ERROR * ep,
            "streaming p99 {sp} vs exact {ep}"
        );
        let ss = stream.streaming_stats(None, false);
        let es = exact.fct_stats(|_| true);
        assert_eq!(ss.count, es.count);
        assert!((ss.max - es.max).abs() < 1e-12);
        assert!(
            (ss.p50 - es.p50).abs() <= flexpass_simcore::FctSketch::RELATIVE_ERROR * es.p50,
            "streaming p50 {} vs exact {}",
            ss.p50,
            es.p50
        );
    }

    /// Sketch-merge determinism across `--par-sim` domain merges: a
    /// partitioned run's merged streaming recorder must be bit-identical
    /// across repeats, and its exact side statistics must match the
    /// serial run (quantiles too — bin counts are permutation-invariant,
    /// so even event reordering across domains cannot move them).
    #[test]
    #[allow(clippy::float_cmp)] // bit-identical determinism is the claim
    fn par_sim_domain_merge_is_deterministic() {
        use flexpass_simnet::{partition, ParSim};

        let spec = ScaleSpec {
            hosts: 48,
            n_flows: 150,
            size_cap: 100_000.0,
            load: 0.1,
            seed: 11,
        };
        let run_par = || {
            let (topo, factory, flows) = build_point(&spec);
            let mut factories = Vec::new();
            for _ in 0..2 {
                factories.push(factory.try_clone().expect("scheme factory clones"));
            }
            let part = match partition(topo, 2) {
                Ok(p) => p,
                Err(_) => panic!("a multi-pod clos must partition"),
            };
            let base = Recorder::new().with_streaming();
            let observers: Vec<Recorder> =
                (0..part.n_domains()).map(|_| base.fresh_like()).collect();
            let mut par = ParSim::new(part, factories, observers, flows.len());
            for fl in &flows {
                par.schedule_flow(*fl);
            }
            par.run_to_completion(TimeDelta::millis(20));
            let mut merged = base;
            for obs in par.into_observers() {
                merged.absorb(obs);
            }
            merged
        };
        let a = run_par();
        let b = run_par();
        assert!(a.completed() > 0);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.live_flows(), 0, "split flows must retire after absorb");
        // Bit-identical quantiles and side stats across repeats.
        assert_eq!(a.p99_small(None), b.p99_small(None));
        assert_eq!(a.avg_fct(None), b.avg_fct(None));
        let qa: Vec<f64> = a.sketches().values().map(|s| s.quantile(0.75)).collect();
        let qb: Vec<f64> = b.sketches().values().map(|s| s.quantile(0.75)).collect();
        assert_eq!(qa, qb);

        // And the exact-side aggregates agree with a serial streaming run.
        let (topo, factory, flows) = build_point(&spec);
        let serial = run_flows_probed(
            topo,
            factory,
            Recorder::new().with_streaming(),
            &flows,
            None,
            TimeDelta::millis(20),
            None,
        );
        assert_eq!(a.completed(), serial.completed());
    }

    #[test]
    fn sketch_csv_is_deterministic_and_labelled() {
        use flexpass_simcore::time::Time;
        use flexpass_simcore::units::Bytes;
        use flexpass_simnet::endpoint::RxStats;
        use flexpass_simnet::packet::FlowSpec;
        use flexpass_simnet::sim::NetObserver;
        let mut r = Recorder::new().with_streaming();
        for (i, size) in [5_000u64, 50_000, 5_000_000].iter().enumerate() {
            let spec = FlowSpec {
                id: i as u64,
                src: 0,
                dst: 1,
                size: Bytes::new(*size),
                start: Time::ZERO,
                tag: 1,
                fg: false,
            };
            r.on_flow_start(&spec, Time::ZERO);
            r.on_app_event(
                &flexpass_simnet::endpoint::AppEvent::FlowCompleted {
                    flow: i as u64,
                    stats: RxStats::default(),
                },
                Time::from_micros(100 * (i as u64 + 1)),
            );
        }
        let csv = sketch_csv(&r);
        assert_eq!(csv.len(), 3);
        let text = csv.render();
        assert!(text.starts_with("tag,size_decade,flows,"), "{text}");
        assert!(text.contains("1,3,1,"), "{text}");
        assert!(text.contains("1,4,1,"), "{text}");
        assert!(text.contains("1,6,1,"), "{text}");
    }
}
