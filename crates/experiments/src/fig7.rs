//! Figure 7: per-sub-flow throughput of FlexPass on the testbed topology
//! (10 Gbps, w_q = 0.5): (a) one FlexPass flow alone, (b) two FlexPass
//! flows, (c) one DCTCP + one FlexPass flow.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, ProfileParams};
use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::packet::{FlowSpec, Subflow};

use std::sync::Arc;

use flexpass_simcore::ProgressProbe;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, TaskCtx};
use crate::runner::{run_window_probed, star_topo, ScenarioResult};

fn long_flow(id: u64, src: usize, dst: usize, tag: u32) -> FlowSpec {
    FlowSpec {
        id,
        src,
        dst,
        size: Bytes::new(500_000_000),
        start: Time::ZERO,
        tag,
        fg: false,
    }
}

fn run(
    flows: Vec<FlowSpec>,
    upgraded_hosts: &[usize],
    window_ms: u64,
    probe: Option<Arc<ProgressProbe>>,
) -> Recorder {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let topo = star_topo(3, &profile);
    let mut up = vec![false; 3];
    for &h in upgraded_hosts {
        up[h] = true;
    }
    let deployment = Deployment::from_hosts(up);
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, FlexPassConfig::new(0.5), 0.5);
    run_window_probed(
        topo,
        Box::new(factory),
        Recorder::new().with_throughput(TimeDelta::millis(1)),
        &flows,
        Time::from_millis(window_ms),
        probe,
    )
}

fn subflow_csv(rec: &Recorder, window_ms: u64) -> Csv {
    let mut csv = Csv::new(&["time_ms", "proactive_gbps", "reactive_gbps", "dctcp_gbps"]);
    let zero = Vec::new();
    let pro = rec
        .series((1, Subflow::Proactive))
        .map(|s| s.bins().to_vec())
        .unwrap_or(zero.clone());
    let rea = rec
        .series((1, Subflow::Reactive))
        .map(|s| s.bins().to_vec())
        .unwrap_or(zero.clone());
    let leg = rec.throughput_gbps(0);
    let to_gbps = |v: &[f64], t: usize| v.get(t).copied().unwrap_or(0.0) * 8.0 / 1e6;
    for t in 0..window_ms as usize {
        csv.row(&[
            t.to_string(),
            f(to_gbps(&pro, t)),
            f(to_gbps(&rea, t)),
            f(leg.get(t).copied().unwrap_or(0.0)),
        ]);
    }
    csv
}

/// Figure 7(a): one FlexPass flow alone — proactive takes w_q of the link,
/// reactive soaks up the rest.
pub fn fig7a() -> ScenarioResult {
    let rec = orchestrate::run_isolated("fig7a", "one_flexpass", Recorder::new, |ctx: &TaskCtx| {
        run(
            vec![long_flow(1, 0, 2, 1)],
            &[0, 1, 2],
            45,
            Some(Arc::clone(&ctx.probe)),
        )
    });
    ScenarioResult::new("fig7a_one_flexpass", subflow_csv(&rec, 45))
}

/// Figure 7(b): two FlexPass flows — proactive sub-flows share the
/// guaranteed half; reactive sub-flows starve.
pub fn fig7b() -> ScenarioResult {
    let rec = orchestrate::run_isolated("fig7b", "two_flexpass", Recorder::new, |ctx: &TaskCtx| {
        run(
            vec![long_flow(1, 0, 2, 1), long_flow(2, 1, 2, 1)],
            &[0, 1, 2],
            90,
            Some(Arc::clone(&ctx.probe)),
        )
    });
    ScenarioResult::new("fig7b_two_flexpass", subflow_csv(&rec, 90))
}

/// Figure 7(c): one DCTCP + one FlexPass flow — each transport gets its
/// guaranteed half; the reactive sub-flow finds no spare bandwidth.
pub fn fig7c() -> ScenarioResult {
    let rec =
        orchestrate::run_isolated("fig7c", "dctcp_flexpass", Recorder::new, |ctx: &TaskCtx| {
            run(
                vec![long_flow(1, 0, 2, 0), long_flow(2, 1, 2, 1)],
                &[1, 2],
                90,
                Some(Arc::clone(&ctx.probe)),
            )
        });
    ScenarioResult::new("fig7c_dctcp_flexpass", subflow_csv(&rec, 90))
}

/// Helper for tests: steady-state mean of a sub-flow series over the last
/// half of the window, in Gbps.
pub fn steady_subflow_gbps(rec: &Recorder, sub: Subflow, window_ms: usize) -> f64 {
    let bins = match rec.series((1, sub)) {
        Some(s) => s.bins(),
        None => return 0.0,
    };
    let lo = window_ms / 2;
    let hi = window_ms.min(bins.len());
    if lo >= hi {
        return 0.0;
    }
    bins[lo..hi].iter().map(|b| b * 8.0 / 1e6).sum::<f64>() / (hi - lo) as f64
}
