//! Ablation study of FlexPass's design choices (DESIGN.md calls these out;
//! the paper motivates each in §4.2–4.3 but does not isolate them):
//!
//! * **proactive retransmission** (the Lost → Pending → Sent-as-reactive
//!   credit priority) — without it, reactive tail losses wait for timers;
//! * **first-RTT reactive transmission** — without it, FlexPass waits a
//!   full RTT for credits like plain ExpressPass;
//! * **credit allocation policy** — ExpressPass feedback vs pHost-style
//!   fixed-rate tokens (§4.3 extensibility).

use flexpass::config::{CreditPolicy, FlexPassConfig};
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory, TAG_UPGRADED};
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::topology::Topology;
use flexpass_workload::FlowSizeCdf;

use std::sync::Arc;

use flexpass_simcore::ProgressProbe;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{run_flows_probed, RunScale, ScenarioResult};
use crate::sweep::{build_flows, SweepSpec};

/// One ablation variant.
struct Variant {
    name: &'static str,
    cfg: FlexPassConfig,
}

fn variants() -> Vec<Variant> {
    let base = FlexPassConfig::new(0.5);
    vec![
        Variant {
            name: "full",
            cfg: base,
        },
        Variant {
            name: "no_proactive_retx",
            cfg: FlexPassConfig {
                proactive_retx: false,
                ..base
            },
        },
        Variant {
            name: "no_first_rtt",
            cfg: FlexPassConfig {
                reactive_first_rtt: false,
                ..base
            },
        },
        Variant {
            name: "fixed_rate_credits",
            cfg: FlexPassConfig {
                credit_policy: CreditPolicy::FixedRate,
                ..base
            },
        },
    ]
}

/// Runs one FlexPass variant at `ratio` deployment; returns
/// `(p99 small upgraded, avg upgraded, timeouts, redundancy)`.
fn run_variant(
    cfg: FlexPassConfig,
    ratio: f64,
    scale: RunScale,
    probe: Option<Arc<ProgressProbe>>,
) -> (f64, f64, u64, f64) {
    let spec = SweepSpec {
        schemes: vec![Scheme::FlexPass],
        ratios: vec![ratio],
        cdf: FlowSizeCdf::web_search(),
        load: 0.5,
        mixed: false,
        scale,
        seed: 61,
        wq: 0.5,
        sel_drop: 150_000,
        n_flows: if scale == RunScale::Default {
            Some(600)
        } else {
            None
        },
        seeds: 1,
    };
    let clos = scale.clos();
    let n_hosts = clos.n_hosts();
    let rack_of: Vec<usize> = (0..n_hosts).map(|h| h / clos.hosts_per_tor).collect();
    let mut rng = SimRng::new(13);
    let deployment = Deployment::by_rack_ratio(&rack_of, ratio, &mut rng);
    let flows = build_flows(&spec, &deployment, n_hosts);
    let frac = deployment.upgraded_byte_fraction(&flows);
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = Scheme::FlexPass.profile(&params, frac);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, cfg, frac);
    let rec = run_flows_probed(
        topo,
        Box::new(factory),
        Recorder::new(),
        &flows,
        None,
        TimeDelta::millis(20),
        probe,
    );
    (
        rec.p99_small(Some(TAG_UPGRADED)),
        rec.avg_fct(Some(TAG_UPGRADED)),
        rec.total_timeouts(),
        rec.redundancy_fraction(),
    )
}

/// The ablation table: each design choice toggled off, at 50 % and 100 %
/// deployment.
pub fn ablation(scale: RunScale) -> ScenarioResult {
    let mut csv = Csv::new(&[
        "variant",
        "deploy_ratio",
        "p99_small_upgraded_ms",
        "avg_upgraded_ms",
        "timeouts",
        "redundancy_frac",
    ]);
    let ratios = [0.5, 1.0];
    let mut tasks: Vec<Task<(f64, f64, u64, f64)>> = Vec::new();
    for v in variants() {
        for &ratio in &ratios {
            let cfg = v.cfg;
            tasks.push(Task::new(
                format!("{}:r{ratio:.2}", v.name),
                move |ctx: &TaskCtx| run_variant(cfg, ratio, scale, Some(Arc::clone(&ctx.probe))),
            ));
        }
    }
    let mut results = orchestrate::run_tasks("ablation", tasks).into_iter();
    for v in variants() {
        for &ratio in &ratios {
            match results.next().expect("one result per (variant, ratio)") {
                Ok((p99, avg, timeouts, red)) => csv.row(&[
                    v.name.into(),
                    format!("{ratio:.2}"),
                    f(p99 * 1e3),
                    f(avg * 1e3),
                    timeouts.to_string(),
                    f(red),
                ]),
                Err(_) => csv.row(&[
                    v.name.into(),
                    format!("{ratio:.2}"),
                    f(f64::NAN),
                    f(f64::NAN),
                    "nan".into(),
                    f(f64::NAN),
                ]),
            }
        }
    }
    ScenarioResult::new("ablation_design_choices", csv)
}
