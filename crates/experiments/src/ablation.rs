//! Ablation study of FlexPass's design choices (DESIGN.md calls these out;
//! the paper motivates each in §4.2–4.3 but does not isolate them):
//!
//! * **proactive retransmission** (the Lost → Pending → Sent-as-reactive
//!   credit priority) — without it, reactive tail losses wait for timers;
//! * **first-RTT reactive transmission** — without it, FlexPass waits a
//!   full RTT for credits like plain ExpressPass;
//! * **credit allocation policy** — ExpressPass feedback vs pHost-style
//!   fixed-rate tokens (§4.3 extensibility).

use flexpass::config::{CreditPolicy, FlexPassConfig};
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory, TAG_UPGRADED};
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::topology::Topology;
use flexpass_workload::FlowSizeCdf;

use crate::csvout::{f, Csv};
use crate::runner::{run_flows, RunScale, ScenarioResult};
use crate::sweep::{build_flows, SweepSpec};

/// One ablation variant.
struct Variant {
    name: &'static str,
    cfg: FlexPassConfig,
}

fn variants() -> Vec<Variant> {
    let base = FlexPassConfig::new(0.5);
    vec![
        Variant {
            name: "full",
            cfg: base,
        },
        Variant {
            name: "no_proactive_retx",
            cfg: FlexPassConfig {
                proactive_retx: false,
                ..base
            },
        },
        Variant {
            name: "no_first_rtt",
            cfg: FlexPassConfig {
                reactive_first_rtt: false,
                ..base
            },
        },
        Variant {
            name: "fixed_rate_credits",
            cfg: FlexPassConfig {
                credit_policy: CreditPolicy::FixedRate,
                ..base
            },
        },
    ]
}

/// Runs one FlexPass variant at `ratio` deployment; returns
/// `(p99 small upgraded, avg upgraded, timeouts, redundancy)`.
fn run_variant(cfg: FlexPassConfig, ratio: f64, scale: RunScale) -> (f64, f64, u64, f64) {
    let spec = SweepSpec {
        schemes: vec![Scheme::FlexPass],
        ratios: vec![ratio],
        cdf: FlowSizeCdf::web_search(),
        load: 0.5,
        mixed: false,
        scale,
        seed: 61,
        wq: 0.5,
        sel_drop: 150_000,
        n_flows: if scale == RunScale::Default {
            Some(600)
        } else {
            None
        },
        seeds: 1,
    };
    let clos = scale.clos();
    let n_hosts = clos.n_hosts();
    let rack_of: Vec<usize> = (0..n_hosts).map(|h| h / clos.hosts_per_tor).collect();
    let mut rng = SimRng::new(13);
    let deployment = Deployment::by_rack_ratio(&rack_of, ratio, &mut rng);
    let flows = build_flows(&spec, &deployment, n_hosts);
    let frac = deployment.upgraded_byte_fraction(&flows);
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = Scheme::FlexPass.profile(&params, frac);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, cfg, frac);
    let rec = run_flows(
        topo,
        Box::new(factory),
        Recorder::new(),
        &flows,
        None,
        TimeDelta::millis(20),
    );
    (
        rec.p99_small(Some(TAG_UPGRADED)),
        rec.avg_fct(Some(TAG_UPGRADED)),
        rec.total_timeouts(),
        rec.redundancy_fraction(),
    )
}

/// The ablation table: each design choice toggled off, at 50 % and 100 %
/// deployment.
pub fn ablation(scale: RunScale) -> ScenarioResult {
    let mut csv = Csv::new(&[
        "variant",
        "deploy_ratio",
        "p99_small_upgraded_ms",
        "avg_upgraded_ms",
        "timeouts",
        "redundancy_frac",
    ]);
    for v in variants() {
        for &ratio in &[0.5, 1.0] {
            eprintln!("  ablation: {} ratio={ratio}", v.name);
            let (p99, avg, timeouts, red) = run_variant(v.cfg, ratio, scale);
            csv.row(&[
                v.name.into(),
                format!("{ratio:.2}"),
                f(p99 * 1e3),
                f(avg * 1e3),
                timeouts.to_string(),
                f(red),
            ]);
        }
    }
    ScenarioResult::new("ablation_design_choices", csv)
}
