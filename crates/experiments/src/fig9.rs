//! Figure 9: coexistence with legacy traffic on the testbed topology.
//! (a) ExpressPass starves a competing DCTCP flow under the naive rollout;
//! (b) FlexPass and DCTCP share the link evenly;
//! (c) starvation time — the fraction of time a transport held < 20 % of
//! the link.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, naive_profile, ProfileParams};
use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::packet::FlowSpec;

use crate::csvout::{f, Csv};
use crate::fig1::TagFactory;
use crate::runner::{run_window, star_topo, ScenarioResult};
use flexpass_transport::expresspass::EpConfig;

const WINDOW_MS: u64 = 90;

fn long_flow(id: u64, src: usize, dst: usize, tag: u32) -> FlowSpec {
    FlowSpec {
        id,
        src,
        dst,
        size: Bytes::new(500_000_000),
        start: Time::ZERO,
        tag,
        fg: false,
    }
}

/// Runs ExpressPass vs DCTCP (naive rollout).
pub fn run_ep_vs_dctcp() -> Recorder {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = naive_profile(&params);
    let topo = star_topo(3, &profile);
    let factory = TagFactory::dctcp_vs_ep(EpConfig::default());
    run_window(
        topo,
        Box::new(factory),
        Recorder::new().with_throughput(TimeDelta::millis(1)),
        &[long_flow(1, 0, 2, 0), long_flow(2, 1, 2, 1)],
        Time::from_millis(WINDOW_MS),
    )
}

/// Runs FlexPass vs DCTCP (FlexPass switch configuration, w_q = 0.5).
pub fn run_fp_vs_dctcp() -> Recorder {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let topo = star_topo(3, &profile);
    // Hosts 1 and 2 upgraded: flow 2 runs FlexPass, flow 1 stays DCTCP.
    let deployment = Deployment::from_hosts(vec![false, true, true]);
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, FlexPassConfig::new(0.5), 0.5);
    run_window(
        topo,
        Box::new(factory),
        Recorder::new().with_throughput(TimeDelta::millis(1)),
        &[long_flow(1, 0, 2, 0), long_flow(2, 1, 2, 1)],
        Time::from_millis(WINDOW_MS),
    )
}

/// Starvation fraction of a tag over the steady window (threshold 20 % of
/// the 10 G link, skipping the first 5 ms of ramp-up).
pub fn starvation(rec: &Recorder, tag: u32) -> f64 {
    rec.starvation_fraction(
        tag,
        10.0,
        0.2,
        Time::from_millis(5),
        Time::from_millis(WINDOW_MS),
    )
}

/// The full Figure 9: two throughput time series plus the starvation bar.
/// The two coexistence runs are independent, so they share the worker
/// pool; a failed run falls back to an empty recorder (all-zero series)
/// and is reported at exit.
pub fn fig9() -> Vec<ScenarioResult> {
    let mut results = crate::orchestrate::run_tasks(
        "fig9",
        vec![
            crate::orchestrate::Task::new("ep_vs_dctcp", |_: &crate::orchestrate::TaskCtx| {
                run_ep_vs_dctcp()
            }),
            crate::orchestrate::Task::new("fp_vs_dctcp", |_: &crate::orchestrate::TaskCtx| {
                run_fp_vs_dctcp()
            }),
        ],
    )
    .into_iter();
    let mut next = || {
        results
            .next()
            .expect("one result per coexistence run")
            .unwrap_or_else(|_| Recorder::new())
    };
    let ep = next();
    let fp = next();

    let series = |rec: &Recorder, new_label: &str| {
        let mut csv = Csv::new(&["time_ms", "dctcp_gbps", new_label]);
        let a = rec.throughput_gbps(0);
        let b = rec.throughput_gbps(1);
        for t in 0..WINDOW_MS as usize {
            csv.row(&[
                t.to_string(),
                f(a.get(t).copied().unwrap_or(0.0)),
                f(b.get(t).copied().unwrap_or(0.0)),
            ]);
        }
        csv
    };

    let mut bars = Csv::new(&["scheme", "dctcp_starved_frac", "new_starved_frac"]);
    bars.row(&[
        "expresspass".into(),
        f(starvation(&ep, 0)),
        f(starvation(&ep, 1)),
    ]);
    bars.row(&[
        "flexpass".into(),
        f(starvation(&fp, 0)),
        f(starvation(&fp, 1)),
    ]);

    vec![
        ScenarioResult::new("fig9a_ep_vs_dctcp", series(&ep, "expresspass_gbps")),
        ScenarioResult::new("fig9b_fp_vs_dctcp", series(&fp, "flexpass_gbps")),
        ScenarioResult::new("fig9c_starvation", bars),
    ]
}
