//! The deployment-ratio sweep engine behind Figures 10–16: a scheme is
//! rolled out rack by rack from 0 % to 100 % and FCT statistics are
//! collected per flow type (legacy vs upgraded).
//!
//! Every (scheme, ratio, seed) triple is an independent deterministic
//! simulation, so [`run_sweep`] fans them across the worker pool in
//! [`crate::orchestrate`] and reassembles results in spec order — output
//! is byte-identical for any `--jobs` value. A point that panics is
//! isolated: surviving seeds of the cell still aggregate, and the failure
//! is reported at exit.
//!
//! **Seed-averaging semantics** (`SweepSpec::seeds > 1`, CSV columns):
//! every mean-like column — FCT means/percentiles, `reorder_mean_kb`,
//! `timeouts`, `redundancy_frac`, `flows` — is the arithmetic mean over
//! seeds, so `timeouts`/`flows` are *per-run means*, not sums.
//! `stddev_small_*` pools variances (square root of the mean per-seed
//! variance): arithmetically averaging standard deviations would bias
//! Figure 13 low, since the sqrt of a mean exceeds the mean of sqrts.

use std::sync::Arc;

use flexpass::config::FlexPassConfig;
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory, TAG_LEGACY, TAG_UPGRADED};
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simcore::ProgressProbe;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::topology::Topology;
use flexpass_workload::FlowSizeCdf;
use flexpass_workload::{background, foreground_incast, BackgroundParams, ForegroundParams};

use crate::csvout::{count, f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{run_flows_probed, RunScale, ScenarioResult};

/// What to sweep.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Schemes to compare.
    pub schemes: Vec<Scheme>,
    /// Deployment ratios (fraction of upgraded racks).
    pub ratios: Vec<f64>,
    /// Background flow-size distribution.
    pub cdf: FlowSizeCdf,
    /// Target core load.
    pub load: f64,
    /// Add 10 % foreground incast traffic (Figure 11).
    pub mixed: bool,
    /// Scale preset.
    pub scale: RunScale,
    /// RNG seed.
    pub seed: u64,
    /// Queue weight w_q (paper default 0.5).
    pub wq: f64,
    /// Selective-dropping threshold, bytes (paper default 150 kB).
    pub sel_drop: u64,
    /// Overrides the scale preset's background flow count (benches).
    pub n_flows: Option<usize>,
    /// Number of independent seeds to average each point over (tail
    /// percentiles at reduced flow counts are noisy order statistics).
    pub seeds: u32,
}

impl SweepSpec {
    /// The Figure-10 configuration: all four schemes, web search at 50 %
    /// core load, background traffic only.
    pub fn fig10(scale: RunScale) -> Self {
        SweepSpec {
            schemes: Scheme::ALL.to_vec(),
            ratios: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            cdf: FlowSizeCdf::web_search(),
            load: 0.5,
            mixed: false,
            scale,
            seed: 1,
            wq: 0.5,
            sel_drop: 150_000,
            n_flows: None,
            seeds: 1,
        }
    }
}

/// Results of one (scheme, ratio) point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Scheme label.
    pub scheme: &'static str,
    /// Deployment ratio.
    pub ratio: f64,
    /// p99 FCT of small flows (< 100 kB), all / legacy / upgraded, seconds.
    pub p99_small: [f64; 3],
    /// Average FCT over all sizes, all / legacy / upgraded, seconds.
    pub avg: [f64; 3],
    /// Std dev of small-flow FCT, all / legacy / upgraded, seconds.
    /// Seed-averaged points pool variances (see [`aggregate_seeds`]).
    pub stddev_small: [f64; 3],
    /// Mean reorder-buffer peak over upgraded flows, bytes.
    pub reorder_mean: f64,
    /// Sender timeouts: per-run count, or the mean over seeds.
    pub timeouts: f64,
    /// Redundant bytes / sent bytes.
    pub redundancy: f64,
    /// Flows completed: per-run count, or the mean over seeds.
    pub flows: f64,
}

/// Generates the workload for one sweep point and tags flows by deployment.
pub fn build_flows(spec: &SweepSpec, deployment: &Deployment, n_hosts: usize) -> Vec<FlowSpec> {
    // The heavy data-mining tail is truncated to keep reduced-scale runs
    // bounded (see DESIGN.md); full scale keeps 100 MB flows.
    let cap = match spec.scale {
        RunScale::Smoke => 10_000_000.0,
        RunScale::Default => 30_000_000.0,
        RunScale::Full => 100_000_000.0,
    };
    let cdf = spec.cdf.truncate(cap);
    let p = BackgroundParams {
        n_hosts,
        host_rate: spec.scale.clos().link_rate,
        oversub: 3.0,
        load: spec.load,
        n_flows: spec.n_flows.unwrap_or_else(|| spec.scale.flows()),
        seed: spec.seed,
        first_id: 0,
    };
    let mut flows = background(&cdf, &p);
    if spec.mixed {
        // Foreground = 10 % of total volume; per paper each event has every
        // other host send four 8 kB flows (fanout shrinks with smoke scale).
        let bg_bytes: flexpass_simcore::units::Bytes = flows.iter().map(|fl| fl.size).sum();
        let span = flows.last().map_or(1.0, |fl| fl.start.as_secs_f64());
        let fg_bps = bg_bytes.as_f64() * 8.0 / span / 9.0;
        let fanout = (n_hosts - 1).min(47);
        let event_bytes = (fanout * 4) as f64 * 8_000.0;
        let n_events = ((fg_bps / 8.0 * span) / event_bytes).ceil() as usize;
        let fg = foreground_incast(&ForegroundParams {
            n_hosts,
            fanout,
            flows_per_sender: 4,
            resp_bytes: 8_000,
            volume_bps: fg_bps,
            n_events: n_events.max(1),
            seed: spec.seed ^ 0xF0F0,
            first_id: flows.len() as u64,
        });
        flows.extend(fg);
    }
    for fl in &mut flows {
        fl.tag = deployment.tag_for(fl);
    }
    flows
}

/// The seed used for replicate `k` of a point (replicates must not share
/// the workload RNG stream, hence the prime stride).
fn seed_for(spec: &SweepSpec, k: u32) -> u64 {
    spec.seed.wrapping_add(k as u64 * 7919)
}

/// Aggregates the per-seed results of one (scheme, ratio) cell.
///
/// Mean-like statistics — FCT means and percentiles, `reorder_mean`,
/// `redundancy`, `timeouts`, `flows` — take the arithmetic mean over
/// seeds (historically `timeouts`/`flows` were *summed* across seeds
/// while everything else was averaged, so multi-seed tables mixed
/// per-run and per-sweep units in one row). `stddev_small` pools
/// variances — sqrt of the mean per-seed variance — because standard
/// deviations do not average: the mean of sqrts under-estimates the
/// pooled spread Figure 13 plots.
pub fn aggregate_seeds(points: &[SweepPoint]) -> SweepPoint {
    let first = points.first().expect("at least one seed result");
    let nf = points.len() as f64;
    let mut agg = SweepPoint {
        scheme: first.scheme,
        ratio: first.ratio,
        p99_small: [0.0; 3],
        avg: [0.0; 3],
        stddev_small: [0.0; 3],
        reorder_mean: 0.0,
        timeouts: 0.0,
        redundancy: 0.0,
        flows: 0.0,
    };
    for p in points {
        for i in 0..3 {
            agg.p99_small[i] += p.p99_small[i];
            agg.avg[i] += p.avg[i];
            agg.stddev_small[i] += p.stddev_small[i] * p.stddev_small[i];
        }
        agg.reorder_mean += p.reorder_mean;
        agg.timeouts += p.timeouts;
        agg.redundancy += p.redundancy;
        agg.flows += p.flows;
    }
    for i in 0..3 {
        agg.p99_small[i] /= nf;
        agg.avg[i] /= nf;
        agg.stddev_small[i] = (agg.stddev_small[i] / nf).sqrt();
    }
    agg.reorder_mean /= nf;
    agg.timeouts /= nf;
    agg.redundancy /= nf;
    agg.flows /= nf;
    agg
}

/// Runs one (scheme, ratio) point serially on the calling thread,
/// averaging over `spec.seeds` seeds (see [`aggregate_seeds`]). Library
/// consumers (benches, examples, figure 17/18 cells) use this directly;
/// [`run_sweep`] runs the same per-seed simulations through the worker
/// pool instead.
pub fn run_point(scheme: Scheme, ratio: f64, spec: &SweepSpec) -> SweepPoint {
    let per_seed: Vec<SweepPoint> = (0..spec.seeds.max(1))
        .map(|k| {
            let mut s = spec.clone();
            s.seed = seed_for(spec, k);
            run_point_once(scheme, ratio, &s, None)
        })
        .collect();
    aggregate_seeds(&per_seed)
}

fn run_point_once(
    scheme: Scheme,
    ratio: f64,
    spec: &SweepSpec,
    probe: Option<Arc<ProgressProbe>>,
) -> SweepPoint {
    let clos = spec.scale.clos();
    let n_hosts = clos.n_hosts();
    let rack_of: Vec<usize> = (0..n_hosts).map(|h| h / clos.hosts_per_tor).collect();
    let mut rng = SimRng::new(spec.seed.wrapping_mul(0x9E37).wrapping_add(7));
    let deployment = Deployment::by_rack_ratio(&rack_of, ratio, &mut rng);
    let flows = build_flows(spec, &deployment, n_hosts);
    let frac = deployment.upgraded_byte_fraction(&flows);

    let mut params = ProfileParams::simulation(clos.link_rate);
    params.wq = spec.wq;
    params.fp_red = flexpass_simcore::units::WireBytes::new(spec.sel_drop);
    let profile = scheme.profile(&params, frac);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);

    let fp_cfg = FlexPassConfig::new(spec.wq);
    let factory = SchemeFactory::new(scheme, deployment, fp_cfg, frac);
    let rec = run_flows_probed(
        topo,
        Box::new(factory),
        Recorder::new(),
        &flows,
        None,
        TimeDelta::millis(20),
        probe,
    );
    point_from_recorder(scheme, ratio, &rec)
}

fn point_from_recorder(scheme: Scheme, ratio: f64, rec: &Recorder) -> SweepPoint {
    let tags = [None, Some(TAG_LEGACY), Some(TAG_UPGRADED)];
    let mut p99_small = [0.0; 3];
    let mut avg = [0.0; 3];
    let mut stddev_small = [0.0; 3];
    for (i, t) in tags.iter().enumerate() {
        p99_small[i] = rec.p99_small(*t);
        avg[i] = rec.avg_fct(*t);
        stddev_small[i] = rec.stddev_small(*t);
    }
    let upgraded: Vec<&flexpass_metrics::FlowRecord> =
        rec.flows.iter().filter(|r| r.tag == TAG_UPGRADED).collect();
    let reorder_mean = if upgraded.is_empty() {
        0.0
    } else {
        upgraded.iter().map(|r| r.reorder_peak as f64).sum::<f64>() / upgraded.len() as f64
    };
    SweepPoint {
        scheme: scheme.label(),
        ratio,
        p99_small,
        avg,
        stddev_small,
        reorder_mean,
        timeouts: rec.total_timeouts() as f64,
        redundancy: rec.redundancy_fraction(),
        flows: rec.completed() as f64,
    }
}

/// Runs the full sweep on the worker pool (see [`run_sweep_jobs`]) with
/// the globally configured `--jobs` count under the generic group label
/// `sweep`.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepPoint> {
    run_sweep_jobs(orchestrate::jobs(), "sweep", spec)
}

/// Runs the full sweep with an explicit worker count: the flattened
/// (scheme, ratio, seed) triples are independent tasks on the work queue,
/// and results reassemble in spec order, so the output is byte-identical
/// for every `jobs` value (`jobs = 1` reproduces the historical serial
/// order exactly). A seed whose simulation panics is dropped from its
/// cell (surviving seeds still aggregate) and surfaces through
/// [`orchestrate::take_failures`]; a cell that loses *every* seed renders
/// as NaN statistics rather than fabricated zeros.
pub fn run_sweep_jobs(jobs: usize, group: &str, spec: &SweepSpec) -> Vec<SweepPoint> {
    let n_seeds = spec.seeds.max(1);
    let mut tasks: Vec<Task<SweepPoint>> = Vec::new();
    for &scheme in &spec.schemes {
        for &ratio in &spec.ratios {
            for k in 0..n_seeds {
                let mut s = spec.clone();
                s.seed = seed_for(spec, k);
                tasks.push(Task::new(
                    format!("{}:r{ratio:.2}:s{k}", scheme.label()),
                    move |ctx: &TaskCtx| {
                        run_point_once(scheme, ratio, &s, Some(Arc::clone(&ctx.probe)))
                    },
                ));
            }
        }
    }
    let mut results = orchestrate::run_tasks_on(jobs, group, tasks).into_iter();
    let mut out = Vec::new();
    for &scheme in &spec.schemes {
        for &ratio in &spec.ratios {
            let cell: Vec<SweepPoint> = (0..n_seeds)
                .filter_map(|_| results.next().expect("one result per seed task").ok())
                .collect();
            out.push(if cell.is_empty() {
                eprintln!(
                    "  [{group}] cell {}:r{ratio:.2} lost all {n_seeds} seed(s); emitting NaN row",
                    scheme.label()
                );
                SweepPoint {
                    scheme: scheme.label(),
                    ratio,
                    p99_small: [f64::NAN; 3],
                    avg: [f64::NAN; 3],
                    stddev_small: [f64::NAN; 3],
                    reorder_mean: f64::NAN,
                    timeouts: f64::NAN,
                    redundancy: f64::NAN,
                    flows: f64::NAN,
                }
            } else {
                aggregate_seeds(&cell)
            });
        }
    }
    out
}

/// Renders sweep points as the CSVs behind Figures 10–13 (or 11 with
/// mixed traffic): one wide table carrying every series.
///
/// Column semantics when `seeds > 1`: every column is averaged over
/// seeds — `timeouts` and `flows` are per-run means (not sums across
/// seeds), and the `stddev_small_*` columns are pooled standard
/// deviations (sqrt of the mean per-seed variance). See
/// [`aggregate_seeds`].
pub fn to_csv(points: &[SweepPoint]) -> Csv {
    let mut csv = Csv::new(&[
        "scheme",
        "deploy_ratio",
        "p99_small_all_ms",
        "p99_small_legacy_ms",
        "p99_small_upgraded_ms",
        "avg_all_ms",
        "avg_legacy_ms",
        "avg_upgraded_ms",
        "stddev_small_all_ms",
        "stddev_small_legacy_ms",
        "stddev_small_upgraded_ms",
        "reorder_mean_kb",
        "timeouts",
        "redundancy_frac",
        "flows",
    ]);
    for p in points {
        csv.row(&[
            p.scheme.to_string(),
            format!("{:.2}", p.ratio),
            f(p.p99_small[0] * 1e3),
            f(p.p99_small[1] * 1e3),
            f(p.p99_small[2] * 1e3),
            f(p.avg[0] * 1e3),
            f(p.avg[1] * 1e3),
            f(p.avg[2] * 1e3),
            f(p.stddev_small[0] * 1e3),
            f(p.stddev_small[1] * 1e3),
            f(p.stddev_small[2] * 1e3),
            f(p.reorder_mean / 1e3),
            count(p.timeouts),
            f(p.redundancy),
            count(p.flows),
        ]);
    }
    csv
}

/// Reshapes sweep points into the per-scheme, per-flow-type series of
/// Figure 12 (p99) or Figure 13 (stddev).
pub fn by_type_csv(points: &[SweepPoint], stddev: bool) -> Csv {
    let metric = if stddev { "stddev_small" } else { "p99_small" };
    let mut csv = Csv::new(&[
        "scheme",
        "deploy_ratio",
        &format!("{metric}_legacy_ms"),
        &format!("{metric}_upgraded_ms"),
    ]);
    for p in points {
        let v = if stddev {
            &p.stddev_small
        } else {
            &p.p99_small
        };
        csv.row(&[
            p.scheme.to_string(),
            format!("{:.2}", p.ratio),
            f(v[1] * 1e3),
            f(v[2] * 1e3),
        ]);
    }
    csv
}

/// Figure 10 (background only) or Figure 11 (mixed), plus the Figure 12/13
/// per-type reshapes when running the background-only sweep.
pub fn fig10_or_11(scale: RunScale, mixed: bool) -> Vec<ScenarioResult> {
    let mut spec = SweepSpec::fig10(scale);
    spec.mixed = mixed;
    let group = if mixed { "fig11" } else { "fig10" };
    let points = run_sweep_jobs(orchestrate::jobs(), group, &spec);
    if mixed {
        vec![ScenarioResult::new("fig11_sweep", to_csv(&points))]
    } else {
        vec![
            ScenarioResult::new("fig10_sweep", to_csv(&points)),
            ScenarioResult::new("fig12_p99_by_type", by_type_csv(&points, false)),
            ScenarioResult::new("fig13_stddev_by_type", by_type_csv(&points, true)),
        ]
    }
}

/// Figure 14: p99 small-flow FCT vs deployment under loads 10/40/70 % for
/// naive ExpressPass vs FlexPass.
pub fn fig14(scale: RunScale) -> ScenarioResult {
    let mut csv = Csv::new(&[
        "scheme",
        "load",
        "deploy_ratio",
        "p99_small_all_ms",
        "p99_small_legacy_ms",
        "p99_small_upgraded_ms",
    ]);
    for &load in &[0.1, 0.4, 0.7] {
        let mut spec = SweepSpec::fig10(scale);
        spec.load = load;
        spec.schemes = vec![Scheme::Naive, Scheme::FlexPass];
        spec.ratios = vec![0.0, 0.5, 1.0];
        if scale == RunScale::Default {
            spec.n_flows = Some(600);
        }
        for p in run_sweep_jobs(orchestrate::jobs(), "fig14", &spec) {
            csv.row(&[
                p.scheme.to_string(),
                format!("{load:.1}"),
                format!("{:.2}", p.ratio),
                f(p.p99_small[0] * 1e3),
                f(p.p99_small[1] * 1e3),
                f(p.p99_small[2] * 1e3),
            ]);
        }
    }
    ScenarioResult::new("fig14_load_sweep", csv)
}

/// Figures 15/16: the sweep over all four realistic workloads.
pub fn fig15_16(scale: RunScale) -> ScenarioResult {
    let mut csv = Csv::new(&[
        "workload",
        "scheme",
        "deploy_ratio",
        "p99_small_all_ms",
        "avg_all_ms",
        "p99_gain_vs_0",
    ]);
    for cdf in FlowSizeCdf::all() {
        let mut spec = SweepSpec::fig10(scale);
        spec.cdf = cdf.clone();
        spec.ratios = vec![0.0, 0.5, 1.0];
        if scale == RunScale::Default {
            spec.n_flows = Some(600);
        }
        let points = run_sweep_jobs(orchestrate::jobs(), "fig15_16", &spec);
        // Gain relative to the 0 % (all-DCTCP) point of the same scheme.
        for &scheme in &spec.schemes {
            let base = points
                .iter()
                .find(|p| p.scheme == scheme.label() && p.ratio == 0.0)
                .map(|p| p.p99_small[0])
                .unwrap_or(0.0);
            for p in points.iter().filter(|p| p.scheme == scheme.label()) {
                let gain = if base > 0.0 {
                    1.0 - p.p99_small[0] / base
                } else {
                    0.0
                };
                csv.row(&[
                    cdf.name().to_string(),
                    p.scheme.to_string(),
                    format!("{:.2}", p.ratio),
                    f(p.p99_small[0] * 1e3),
                    f(p.avg[0] * 1e3),
                    f(gain),
                ]);
            }
        }
    }
    ScenarioResult::new("fig15_16_workloads", csv)
}

#[cfg(test)]
mod tests {
    // Exact float equality is the point here: the inputs are
    // hand-built dyadic values and aggregation must not perturb them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn point(stddev: f64, timeouts: f64, flows: f64) -> SweepPoint {
        SweepPoint {
            scheme: "x",
            ratio: 0.5,
            p99_small: [1.0; 3],
            avg: [2.0; 3],
            stddev_small: [stddev; 3],
            reorder_mean: 4.0,
            timeouts,
            redundancy: 0.2,
            flows,
        }
    }

    /// The seed-aggregation bugfixes: timeouts/flows are means (the old
    /// code summed them), and stddevs pool variances (the old code took
    /// the arithmetic mean of per-seed stddevs).
    #[test]
    fn aggregate_means_counts_and_pools_variance() {
        let agg = aggregate_seeds(&[point(3.0, 10.0, 100.0), point(4.0, 20.0, 200.0)]);
        assert_eq!(agg.timeouts, 15.0);
        assert_eq!(agg.flows, 150.0);
        let pooled = ((9.0 + 16.0) / 2.0f64).sqrt();
        for i in 0..3 {
            assert!((agg.stddev_small[i] - pooled).abs() < 1e-12);
            assert_eq!(agg.p99_small[i], 1.0);
            assert_eq!(agg.avg[i], 2.0);
        }
        assert_eq!(agg.reorder_mean, 4.0);
        assert!((agg.redundancy - 0.2).abs() < 1e-12);
    }

    /// A single seed aggregates to itself (pooling one variance is the
    /// identity), so `seeds = 1` tables are unchanged by the fix.
    #[test]
    fn aggregate_single_seed_is_identity() {
        let p = point(3.0, 7.0, 30.0);
        let agg = aggregate_seeds(std::slice::from_ref(&p));
        assert_eq!(agg.stddev_small, p.stddev_small);
        assert_eq!(agg.timeouts, p.timeouts);
        assert_eq!(agg.flows, p.flows);
    }
}
