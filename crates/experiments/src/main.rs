//! `flexpass-experiments` — regenerates every table and figure of the
//! FlexPass paper as CSV files.
//!
//! Usage:
//!
//! ```text
//! flexpass-experiments --fig all            [--out results] [--scale default] [--jobs N]
//! flexpass-experiments --fig fig10          # one figure
//! ```
//!
//! Figures: fig1a fig1b fig5a fig5b fig7 fig8 fig9 fig10 fig11 fig14
//! fig15 fig17 fig18 queue ablation  (fig10 also produces the per-type
//! data of figs 12–13; fig15 covers fig16's average-FCT series; ablation
//! is this reproduction's design-choice study). `--fig custom --trace F`
//! replays a user flow trace (`src,dst,size_bytes,start_us`). `--fig
//! scale` (explicit-only, never part of `all`) drives an O(10k)-host
//! Clos with the streaming bounded-memory recorder; combine with
//! `--par-sim N` for the partitioned engine and watch the heartbeat for
//! events/sec, arena growth, and process RSS.
//!
//! `--trace[=FILTER]` (no file argument) arms packet-lifecycle tracing:
//! every simulation point writes `<out>/traces/<group>-<label>.jsonl`
//! (events + telemetry summary; `FILTER` is a comma-separated event-kind
//! list, default all). Summarize with `cargo xtask trace-report`. Tracing
//! is observation-only: CSVs stay byte-identical with it on or off.
//!
//! `--par-sim N` partitions each simulation into `N` parallel domains
//! (rack-granular fabric cut, conservative windowed synchronization; see
//! DESIGN.md §14). `--par-sim 1` (the default) is the serial engine,
//! byte-identical to previous releases; topologies too small to cut
//! (e.g. single-rack stars) silently fall back to serial.
//!
//! `--jobs N` sets the worker-thread count for the experiment pool
//! (default: available parallelism; `--jobs 1` runs serially). Output is
//! byte-identical for every value — each simulation point is its own
//! deterministic single-threaded run, and results reassemble in spec
//! order. A point that panics is isolated: the rest of the sweep
//! completes, the failed cells are listed at exit, and the exit code is
//! nonzero. `--inject-panic LABEL` deliberately fails the named task
//! (labels as printed in failure reports, e.g. `fig10:naive:r0.50:s0`)
//! to exercise that path end to end.

use std::path::PathBuf;
// lint:allow(wall-clock): per-figure elapsed-time reporting only.
use std::time::Instant;

use flexpass_experiments::custom::{run_trace_file, CustomSpec};
use flexpass_experiments::orchestrate;
use flexpass_experiments::runner::RunScale;
use flexpass_experiments::{
    ablation, fig1, fig17, fig18, fig5, fig7, fig8, fig9, queue_study, sweep,
};

fn main() {
    let mut fig = String::from("all");
    let mut out = PathBuf::from("results");
    let mut scale = RunScale::Default;
    let mut trace: Option<PathBuf> = None;
    let mut packet_trace: Option<String> = None;
    let mut plot = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig = args[i + 1].clone();
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--plot" => {
                plot = true;
                i += 1;
            }
            // `--trace FILE` (replay input for --fig custom) predates
            // `--trace[=FILTER]` (packet-lifecycle tracing). A following
            // non-flag argument keeps the legacy replay meaning; bare
            // `--trace` (last arg or followed by a flag) arms tracing.
            "--trace" => {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    trace = Some(PathBuf::from(&args[i + 1]));
                    i += 2;
                } else {
                    packet_trace = Some(String::new());
                    i += 1;
                }
            }
            s if s.starts_with("--trace=") => {
                packet_trace = Some(s["--trace=".len()..].to_string());
                i += 1;
            }
            "--scale" => {
                scale = RunScale::parse(&args[i + 1]).unwrap_or_else(|| {
                    eprintln!("unknown scale {} (smoke|default|full)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--jobs" => {
                let n: usize = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("--jobs takes a positive integer, got {}", args[i + 1]);
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("--jobs must be >= 1");
                    std::process::exit(2);
                }
                orchestrate::set_jobs(n);
                i += 2;
            }
            "--par-sim" => {
                let n: usize = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("--par-sim takes a positive integer, got {}", args[i + 1]);
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("--par-sim must be >= 1");
                    std::process::exit(2);
                }
                orchestrate::set_par_sim(n);
                i += 2;
            }
            "--inject-panic" => {
                orchestrate::inject_panic(Some(args[i + 1].clone()));
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: flexpass-experiments [--fig NAME|all] [--out DIR] [--scale smoke|default|full] [--jobs N] [--par-sim N] [--trace[=FILTER]] [--inject-panic LABEL]");
                std::process::exit(2);
            }
        }
    }

    if let Some(spec) = &packet_trace {
        if let Err(e) = flexpass_experiments::tracecfg::enable(spec, &out) {
            eprintln!("--trace: {e}");
            std::process::exit(2);
        }
        eprintln!("packet tracing armed -> {}/traces/", out.display());
    }

    let all = fig == "all";
    // `--fig none --plot` renders charts from existing CSVs only.
    let want = |name: &str| all || fig == name;
    let mut ran = 0;

    let emit = |results: Vec<flexpass_experiments::ScenarioResult>| {
        for r in results {
            r.csv.write(&out, &r.name).expect("write CSV");
            println!(
                "wrote {}/{}.csv ({} rows)",
                out.display(),
                r.name,
                r.csv.len()
            );
        }
    };

    macro_rules! run {
        ($name:expr, $body:expr) => {
            if want($name) {
                // lint:allow(wall-clock): figure wall-time banner.
                let t = Instant::now();
                eprintln!("== {} ==", $name);
                emit($body);
                eprintln!("== {} done in {:.1?} ==", $name, t.elapsed());
                ran += 1;
            }
        };
    }

    run!("fig1a", vec![fig1::fig1a()]);
    run!("fig1b", vec![fig1::fig1b()]);
    run!("fig5a", vec![fig5::fig5a(scale)]);
    run!("fig5b", vec![fig5::fig5b(scale)]);
    run!("fig7", vec![fig7::fig7a(), fig7::fig7b(), fig7::fig7c()]);
    run!("fig8", vec![fig8::fig8()]);
    run!("fig9", fig9::fig9());
    run!("fig10", sweep::fig10_or_11(scale, false));
    run!("fig11", sweep::fig10_or_11(scale, true));
    run!("fig14", vec![sweep::fig14(scale)]);
    run!("fig15", vec![sweep::fig15_16(scale)]);
    run!("fig17", vec![fig17::fig17(scale)]);
    run!("fig18", vec![fig18::fig18(scale)]);
    run!("queue", vec![queue_study::queue_study(scale)]);
    run!("ablation", vec![ablation::ablation(scale)]);
    // Explicit-only (not part of `all`): the default point simulates a
    // 10,240-host fabric.
    if fig == "scale" {
        // lint:allow(wall-clock): figure wall-time banner.
        let t = Instant::now();
        eprintln!("== scale ==");
        emit(flexpass_experiments::scale::scenario(scale));
        eprintln!("== scale done in {:.1?} ==", t.elapsed());
        ran += 1;
    }
    if fig == "custom" {
        let path = trace.unwrap_or_else(|| {
            eprintln!("--fig custom requires --trace FILE (src,dst,size_bytes,start_us)");
            std::process::exit(2);
        });
        let spec = CustomSpec {
            scale,
            ..CustomSpec::default()
        };
        let (rec, result) = run_trace_file(&path, &spec).unwrap_or_else(|e| {
            eprintln!("trace replay failed: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "replayed {} flows: avg {:.3} ms, p99(<100kB) {:.3} ms",
            rec.completed(),
            rec.avg_fct(None) * 1e3,
            rec.p99_small(None) * 1e3
        );
        emit(vec![result]);
        ran += 1;
    }

    if plot {
        match flexpass_experiments::plot::plot_results(&out) {
            Ok(n) => println!("rendered {n} SVG charts into {}", out.display()),
            Err(e) => eprintln!("plotting failed: {e}"),
        }
        ran += 1;
    }

    if ran == 0 {
        eprintln!("no figure matched '{fig}'");
        std::process::exit(2);
    }

    let failures = orchestrate::take_failures();
    if !failures.is_empty() {
        eprintln!("{} point(s) FAILED:", failures.len());
        for failure in &failures {
            eprintln!("  {failure}");
        }
        eprintln!("the remaining points completed; failed cells render as NaN/empty rows");
        std::process::exit(1);
    }
}
