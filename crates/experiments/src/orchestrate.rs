//! Work-queue orchestration: fan independent simulation runs across worker
//! threads with per-task fault isolation and a progress heartbeat.
//!
//! The paper's evaluation is a grid of *independent* (scheme, ratio, seed)
//! simulation points — the classic multi-instance scaling case (cf.
//! SimBricks): each point is one deterministic single-threaded simulation,
//! so the only sound parallelism is across points, never within one. This
//! module supplies that layer for every experiment module:
//!
//! * **Work queue** — [`run_tasks`] pops task indexes off a shared atomic
//!   counter and runs each closure on one of `--jobs` scoped worker
//!   threads ([`set_jobs`] / [`jobs`]). Results are reassembled in *spec
//!   order* (task index), so output is byte-identical for any job count:
//!   determinism lives inside each task, ordering lives here.
//! * **Fault isolation** — each task runs under `catch_unwind`. A
//!   panicking task becomes a [`TaskFailure`] carrying its label and the
//!   panic message; the other tasks keep running. Failures are returned to
//!   the caller *and* recorded in a process-wide registry the binary
//!   drains at exit ([`take_failures`]) to report failed cells and exit
//!   nonzero.
//! * **Heartbeat** — while tasks run, a monitor thread reports tasks
//!   done / total, events popped (published by each task's
//!   `EventQueue` via a [`ProgressProbe`]), virtual time reached, and
//!   wall-clock events/sec to stderr.
//!
//! This module is the one place in the workspace where wall-clock time and
//! `std::thread` are legitimate: both stay strictly *outside* the
//! simulations (`cargo xtask lint` enforces that elsewhere; the scoped
//! `lint:allow` comments below are its blessed escape hatch). The
//! `simaudit` runtime auditor is thread-local, so per-point audits keep
//! working on worker threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use flexpass_simcore::ProgressProbe;

/// Heartbeat period. Short experiment groups finish before the first beat
/// and stay silent; long sweeps report a few times a minute.
// lint:allow(wall-clock): heartbeat pacing is orchestration, not simulation.
const HEARTBEAT: std::time::Duration = std::time::Duration::from_secs(5);

/// Requested worker count; 0 = use available parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Requested intra-simulation partition domains; 1 = the serial engine.
static PAR_SIM: AtomicUsize = AtomicUsize::new(1);

/// Process-wide record of every task that panicked, drained by the binary
/// to report failed cells and choose its exit code. Tests use the
/// per-call return value of [`run_tasks`] instead, so they never race on
/// this registry.
static FAILURES: Mutex<Vec<TaskFailure>> = Mutex::new(Vec::new());

/// Fault-injection hook: a task whose qualified label equals this value
/// panics on entry. Used by tests and CI to prove isolation end to end.
static INJECT_PANIC: Mutex<Option<String>> = Mutex::new(None);

/// Sets the worker-thread count used by [`run_tasks`]. `0` restores the
/// default (available parallelism). `1` reproduces the historical serial
/// behavior bit-for-bit.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker-thread count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        // lint:allow(thread-spawn): querying parallelism, not spawning.
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Sets the intra-simulation partition-domain count used by the runner
/// helpers. `1` (the default) keeps the serial engine; `n > 1` asks
/// [`crate::runner`] to cut each fabric into `n` domains and run them on
/// the partitioned engine ([`flexpass_simnet::ParSim`]). Topologies the
/// partitioner rejects (single rack, too few racks) fall back to serial.
pub fn set_par_sim(n: usize) {
    PAR_SIM.store(n, Ordering::SeqCst);
}

/// The effective partition-domain count (never 0).
pub fn par_sim() -> usize {
    PAR_SIM.load(Ordering::SeqCst).max(1)
}

/// Arms the fault-injection hook: the next task whose qualified
/// `group:label` (or bare label) equals `label` panics on entry.
/// `None` disarms it.
pub fn inject_panic(label: Option<String>) {
    *INJECT_PANIC.lock().expect("inject registry poisoned") = label;
}

/// Drains the process-wide failure registry (oldest first).
pub fn take_failures() -> Vec<TaskFailure> {
    std::mem::take(&mut *FAILURES.lock().expect("failure registry poisoned"))
}

/// A task that panicked: which one, and what the panic said.
#[derive(Clone, Debug)]
pub struct TaskFailure {
    /// Qualified label, `group:label`.
    pub label: String,
    /// Panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.label, self.message)
    }
}

/// Context handed to a running task: attach `probe` to the simulation
/// (`Sim::attach_progress`, or the `*_probed` helpers in
/// [`crate::runner`]) so the heartbeat can see live event counts.
pub struct TaskCtx {
    /// Live progress counters for this task's simulation.
    pub probe: Arc<ProgressProbe>,
}

/// One labelled unit of work for [`run_tasks`].
pub struct Task<T> {
    label: String,
    run: Box<dyn FnOnce(&TaskCtx) -> T + Send>,
}

impl<T> Task<T> {
    /// A task with a display label (used in heartbeats and failure
    /// reports) and the closure to run.
    pub fn new(label: impl Into<String>, run: impl FnOnce(&TaskCtx) -> T + Send + 'static) -> Self {
        Task {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The task's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Shared progress state between workers and the heartbeat thread.
struct PoolState {
    group: String,
    total: usize,
    done: AtomicUsize,
    /// Events popped by tasks that already finished (success or panic).
    finished_events: AtomicU64,
    /// `(label, probe)` of tasks currently running.
    active: Mutex<Vec<(String, Arc<ProgressProbe>)>>,
}

impl PoolState {
    /// Sum of finished-task events and every active probe's live count,
    /// plus the maximum virtual time any active task has reached (ns).
    fn snapshot(&self) -> (u64, u64) {
        let mut events = self.finished_events.load(Ordering::Relaxed);
        let mut max_vt = 0u64;
        for (_, probe) in self.active.lock().expect("active registry poisoned").iter() {
            events += probe.events();
            max_vt = max_vt.max(probe.vtime_ns());
        }
        (events, max_vt)
    }
}

/// Runs `tasks` on the configured number of worker threads (see
/// [`set_jobs`]) and returns one result per task **in task order**,
/// regardless of completion order. Panicking tasks yield `Err` and are
/// also recorded in the process-wide failure registry.
pub fn run_tasks<T: Send>(group: &str, tasks: Vec<Task<T>>) -> Vec<Result<T, TaskFailure>> {
    run_tasks_on(jobs(), group, tasks)
}

/// Runs a single closure through the pool so one-run figures get the same
/// heartbeat and fault isolation as sweeps. On panic the failure is
/// registered for the exit code and `fallback()` is returned (typically
/// an empty recorder, so the figure still renders a — visibly empty —
/// table).
pub fn run_isolated<T: Send>(
    group: &str,
    label: &str,
    fallback: impl FnOnce() -> T,
    run: impl FnOnce(&TaskCtx) -> T + Send + 'static,
) -> T {
    run_tasks(group, vec![Task::new(label, run)])
        .pop()
        .expect("one result for one task")
        .unwrap_or_else(|_| fallback())
}

/// [`run_tasks`] with an explicit worker count (tests use this to compare
/// job counts without touching the global setting).
pub fn run_tasks_on<T: Send>(
    jobs: usize,
    group: &str,
    tasks: Vec<Task<T>>,
) -> Vec<Result<T, TaskFailure>> {
    let n = tasks.len();
    let workers = jobs.max(1).min(n.max(1));
    let state = PoolState {
        group: group.to_string(),
        total: n,
        done: AtomicUsize::new(0),
        finished_events: AtomicU64::new(0),
        active: Mutex::new(Vec::new()),
    };

    // One write-once slot per task, claimed via the shared index counter.
    let slots: Vec<Mutex<Option<Result<T, TaskFailure>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Tasks are FnOnce: they are *moved* out of this vector (not cloned)
    // exactly once each, guarded by the `next` counter.
    let queue: Vec<Mutex<Option<Task<T>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();

    // lint:allow(thread-spawn): the pool itself — the one blessed home of
    // threads in this workspace. Simulations stay single-threaded inside.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                if idx >= n {
                    return;
                }
                let task = queue[idx]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task taken twice");
                let outcome = run_one(&state, group, task);
                *slots[idx].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
        // Heartbeat: monitor-only; exits as soon as all workers are done.
        scope.spawn(|| heartbeat(&state, &stop));
        // The scope implicitly joins the workers; the heartbeat needs an
        // explicit stop signal first — emitted by a dedicated closer
        // thread would be overkill, so workers' completion is detected by
        // the scope joining *after* this closure returns. Instead, wait on
        // the counter here.
        while state.done.load(Ordering::SeqCst) < n {
            // lint:allow(thread-spawn, wall-clock): waiting for workers.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
    });

    let results: Vec<Result<T, TaskFailure>> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect();

    let failed: Vec<TaskFailure> = results
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect();
    if !failed.is_empty() {
        FAILURES
            .lock()
            .expect("failure registry poisoned")
            .extend(failed);
    }
    results
}

/// Runs one task under `catch_unwind`, maintaining the pool's progress
/// accounting around it.
fn run_one<T>(state: &PoolState, group: &str, task: Task<T>) -> Result<T, TaskFailure> {
    let label = task.label.clone();
    let qualified = format!("{group}:{label}");
    let probe = Arc::new(ProgressProbe::new());
    state
        .active
        .lock()
        .expect("active registry poisoned")
        .push((label.clone(), Arc::clone(&probe)));

    let armed = INJECT_PANIC
        .lock()
        .expect("inject registry poisoned")
        .as_deref()
        .is_some_and(|l| l == qualified || l == label);
    let ctx = TaskCtx {
        probe: Arc::clone(&probe),
    };
    let run = task.run;
    // Packet tracing (--trace) wraps every point: the tracer is
    // thread-local, so install/collect must bracket the run on this
    // worker thread. Observation-only — results are unaffected.
    crate::tracecfg::install_for_run();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        if armed {
            // lint:allow(panic-path): deliberate fault injection, proving
            // per-point isolation in tests and CI.
            panic!("injected fault (--inject-panic)");
        }
        run(&ctx)
    }));
    crate::tracecfg::finish_run(&qualified);

    state
        .active
        .lock()
        .expect("active registry poisoned")
        .retain(|(_, p)| !Arc::ptr_eq(p, &probe));
    state
        .finished_events
        .fetch_add(probe.events(), Ordering::Relaxed);
    state.done.fetch_add(1, Ordering::SeqCst);

    outcome.map_err(|payload| {
        let failure = TaskFailure {
            label: qualified,
            message: panic_message(payload.as_ref()),
        };
        eprintln!("  [{}] point FAILED — {}", state.group, failure);
        failure
    })
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// payloads in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Periodically reports pool progress to stderr until `stop` is set.
fn heartbeat(state: &PoolState, stop: &AtomicBool) {
    // lint:allow(wall-clock): events/sec is a wall-clock rate over the
    // orchestration layer; virtual time inside each point is untouched.
    let started = std::time::Instant::now();
    let mut last_events = 0u64;
    let mut last_at = started;
    loop {
        // Sleep in short slices so a finishing pool is not held open.
        for _ in 0..(HEARTBEAT.as_millis() / 50).max(1) {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // lint:allow(thread-spawn, wall-clock): heartbeat pacing.
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let done = state.done.load(Ordering::SeqCst);
        let (events, max_vt) = state.snapshot();
        // lint:allow(wall-clock, float-time): wall-clock rate reporting.
        let dt = last_at.elapsed().as_secs_f64();
        let rate = if dt > 0.0 {
            (events.saturating_sub(last_events)) as f64 / dt
        } else {
            0.0
        };
        last_events = events;
        // lint:allow(wall-clock): heartbeat bookkeeping.
        last_at = std::time::Instant::now();
        let active = state.active.lock().expect("active registry poisoned");
        let names: Vec<&str> = active.iter().take(4).map(|(l, _)| l.as_str()).collect();
        eprintln!(
            "  [{}] {}/{} points done | {:.1}M events | vt {:.3}s | {:.2}M ev/s | running: {}{}{}{}",
            state.group,
            done,
            state.total,
            events as f64 / 1e6,
            max_vt as f64 / 1e9,
            rate / 1e6,
            names.join(", "),
            if active.len() > names.len() {
                ", …"
            } else {
                ""
            },
            partition_segment(&active),
            rss_segment(),
        );
    }
}

/// Renders the partitioned-engine suffix of a heartbeat line: per-domain
/// load balance (worst max/min ratio over the active probes that publish
/// domain counters) and summed packet-arena growth statistics. Empty when
/// no active task runs partitioned and the arenas report nothing.
fn partition_segment(active: &[(String, Arc<ProgressProbe>)]) -> String {
    let mut worst: Option<(u64, u64)> = None;
    let mut grows = 0u64;
    let mut high_water = 0u64;
    for (_, probe) in active {
        if let Some((max, min)) = probe.domain_balance() {
            let beats = match worst {
                // Compare max/min ratios without dividing: a/b > c/d
                // iff a*d > c*b for non-negative operands.
                Some((wmax, wmin)) => max.saturating_mul(wmin) > wmax.saturating_mul(min),
                None => true,
            };
            if beats {
                worst = Some((max, min));
            }
        }
        grows += probe.arena_grows();
        high_water = high_water.max(probe.arena_high_water());
    }
    let mut out = String::new();
    if let Some((max, min)) = worst {
        let ratio = if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        };
        out.push_str(&format!(" | domains max/min {ratio:.2}"));
    }
    if grows > 0 || high_water > 0 {
        out.push_str(&format!(" | arena grows {grows} hw {high_water}"));
    }
    // Any growth after construction means the preallocation sizing was
    // wrong for this workload — the exact failure the hinted-cap fix
    // addresses — so make it impossible to miss in the log.
    if grows > 0 {
        out.push_str(" (WARN: arena preallocation undersized)");
    }
    out
}

/// Renders the process-RSS suffix of a heartbeat line (current and peak,
/// MiB). Empty where `/proc/self/status` is unavailable.
fn rss_segment() -> String {
    match (
        flexpass_simcore::mem::current_rss_bytes(),
        flexpass_simcore::mem::peak_rss_bytes(),
    ) {
        (Some(cur), Some(peak)) => format!(
            " | rss {}M peak {}M",
            cur / (1024 * 1024),
            peak / (1024 * 1024)
        ),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Results come back in task order for any job count, even when
    /// completion order is scrambled.
    #[test]
    fn results_in_task_order() {
        for jobs in [1, 4] {
            let tasks: Vec<Task<usize>> = (0..16)
                .map(|i| {
                    Task::new(format!("t{i}"), move |_ctx: &TaskCtx| {
                        // Stagger so later tasks can finish first.
                        std::thread::sleep(std::time::Duration::from_millis(((16 - i) % 5) as u64));
                        i * i
                    })
                })
                .collect();
            let out = run_tasks_on(jobs, "test", tasks);
            let values: Vec<usize> = out.into_iter().map(|r| r.expect("task ok")).collect();
            assert_eq!(values, (0..16).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    /// A panicking task is isolated: the others complete, the failure
    /// carries the label and message.
    #[test]
    fn panicking_task_is_isolated() {
        let tasks: Vec<Task<u32>> = vec![
            Task::new("ok-a", |_: &TaskCtx| 1),
            Task::new("boom", |_: &TaskCtx| panic!("deliberate test panic")),
            Task::new("ok-b", |_: &TaskCtx| 3),
        ];
        let out = run_tasks_on(2, "test", tasks);
        assert_eq!(out.len(), 3);
        assert_eq!(*out[0].as_ref().expect("a ok"), 1);
        assert_eq!(*out[2].as_ref().expect("b ok"), 3);
        let err = out[1].as_ref().expect_err("boom failed");
        assert_eq!(err.label, "test:boom");
        assert!(err.message.contains("deliberate test panic"), "{err}");
    }

    /// The probe handed to a task is live: counts published during the
    /// run are visible afterwards (and folded into pool totals).
    #[test]
    fn task_probe_is_observable() {
        let tasks = vec![Task::new("probe", |ctx: &TaskCtx| {
            ctx.probe.publish(12345, 67890);
            ctx.probe.events()
        })];
        let out = run_tasks_on(1, "test", tasks);
        assert_eq!(*out[0].as_ref().expect("ok"), 12345);
    }

    #[test]
    fn jobs_default_is_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn par_sim_never_reports_zero() {
        assert!(par_sim() >= 1);
    }

    /// The heartbeat's partition suffix reports the worst balance ratio
    /// across active probes and the summed arena stats — and stays empty
    /// for purely serial pools.
    #[test]
    fn partition_segment_formats() {
        let quiet = Arc::new(ProgressProbe::new());
        assert_eq!(partition_segment(&[("a".to_string(), quiet)]), "");

        let balanced = Arc::new(ProgressProbe::new());
        balanced.publish_domain_events(0, 100);
        balanced.publish_domain_events(1, 50);
        let skewed = Arc::new(ProgressProbe::new());
        skewed.publish_domain_events(0, 300);
        skewed.publish_domain_events(1, 100);
        skewed.publish_arena(2, 512);
        let seg = partition_segment(&[("b".to_string(), balanced), ("s".to_string(), skewed)]);
        assert_eq!(
            seg,
            " | domains max/min 3.00 | arena grows 2 hw 512 \
             (WARN: arena preallocation undersized)"
        );

        // High-water alone (a healthy preallocated run) reports without
        // the warning.
        let healthy = Arc::new(ProgressProbe::new());
        healthy.publish_arena(0, 256);
        let seg = partition_segment(&[("h".to_string(), healthy)]);
        assert_eq!(seg, " | arena grows 0 hw 256");
    }

    /// RSS reporting is best-effort but must be well-formed where
    /// available (linux: always).
    #[test]
    fn rss_segment_is_well_formed() {
        let seg = rss_segment();
        if cfg!(target_os = "linux") {
            assert!(seg.starts_with(" | rss "), "{seg}");
            assert!(seg.contains("M peak "), "{seg}");
        } else {
            assert!(seg.is_empty());
        }
    }
}
