//! Figure 1: the motivation experiment. ExpressPass (a) and Homa (b)
//! competing with DCTCP for a shared 10 Gbps link without co-existence
//! measures — the legacy flows starve.

use flexpass::profiles::{homa_mix_profile, naive_profile, ProfileParams};
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::endpoint::Endpoint;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::{NetEnv, TransportFactory};
use flexpass_transport::dctcp::{DctcpConfig, DctcpReceiver, DctcpSender};
use flexpass_transport::expresspass::{EpConfig, EpReceiver, EpSender};
use flexpass_transport::homa::{HomaConfig, HomaReceiver, HomaSender};

use std::sync::Arc;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, TaskCtx};
use crate::runner::{run_window_probed, star_topo, ScenarioResult};

/// Dispatches each flow to one of two transports by its tag
/// (0 = legacy DCTCP, 1 = the new transport).
pub struct TagFactory {
    legacy: DctcpConfig,
    upgraded: UpgradedKind,
}

#[derive(Clone, Copy)]
enum UpgradedKind {
    Ep(EpConfig),
    Homa(HomaConfig),
}

impl TagFactory {
    /// Legacy DCTCP vs plain ExpressPass.
    pub fn dctcp_vs_ep(ep: EpConfig) -> Self {
        TagFactory {
            legacy: DctcpConfig::default(),
            upgraded: UpgradedKind::Ep(ep),
        }
    }

    /// Legacy DCTCP vs Homa-lite.
    pub fn dctcp_vs_homa(h: HomaConfig) -> Self {
        TagFactory {
            legacy: DctcpConfig::default(),
            upgraded: UpgradedKind::Homa(h),
        }
    }
}

impl TransportFactory for TagFactory {
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        if flow.tag == 0 {
            return Box::new(DctcpSender::new(*flow, self.legacy, env));
        }
        match &self.upgraded {
            UpgradedKind::Ep(c) => Box::new(EpSender::new(*flow, *c, env)),
            UpgradedKind::Homa(c) => Box::new(HomaSender::new(*flow, *c, env)),
        }
    }
    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
        if flow.tag == 0 {
            return Box::new(DctcpReceiver::new(*flow, self.legacy, env));
        }
        match &self.upgraded {
            UpgradedKind::Ep(c) => Box::new(EpReceiver::new(*flow, *c, env)),
            UpgradedKind::Homa(c) => Box::new(HomaReceiver::new(*flow, *c, env)),
        }
    }
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        Some(Box::new(TagFactory {
            legacy: self.legacy,
            upgraded: self.upgraded,
        }))
    }
}

/// A long flow (effectively infinite within the measured window).
fn long_flow(id: u64, src: usize, dst: usize, tag: u32) -> FlowSpec {
    FlowSpec {
        id,
        src,
        dst,
        size: Bytes::new(500_000_000),
        start: Time::ZERO,
        tag,
        fg: false,
    }
}

fn series_csv(rec: &Recorder, window_ms: u64, labels: [&str; 2]) -> Csv {
    let mut csv = Csv::new(&["time_ms", labels[0], labels[1]]);
    let a = rec.throughput_gbps(0);
    let b = rec.throughput_gbps(1);
    for t in 0..window_ms as usize {
        csv.row(&[
            t.to_string(),
            f(a.get(t).copied().unwrap_or(0.0)),
            f(b.get(t).copied().unwrap_or(0.0)),
        ]);
    }
    csv
}

/// Figure 1(a): 1 ExpressPass vs 1 DCTCP long flow into one 10 G receiver,
/// naive (shared-queue, full-credit-rate) configuration.
pub fn fig1a() -> ScenarioResult {
    let rec = orchestrate::run_isolated("fig1a", "ep_vs_dctcp", Recorder::new, |ctx: &TaskCtx| {
        let params = ProfileParams::testbed(Rate::from_gbps(10));
        let profile = naive_profile(&params);
        let topo = star_topo(3, &profile);
        let factory = TagFactory::dctcp_vs_ep(EpConfig::default());
        let flows = vec![long_flow(1, 0, 2, 0), long_flow(2, 1, 2, 1)];
        run_window_probed(
            topo,
            Box::new(factory),
            Recorder::new().with_throughput(TimeDelta::millis(1)),
            &flows,
            Time::from_millis(120),
            Some(Arc::clone(&ctx.probe)),
        )
    });
    ScenarioResult::new(
        "fig1a_ep_vs_dctcp",
        series_csv(&rec, 120, ["dctcp_gbps", "expresspass_gbps"]),
    )
}

/// Figure 1(b): 16 Homa + 16 DCTCP flows sharing a 10 G link; DCTCP mapped
/// to the highest-priority queue (paper footnote 3).
pub fn fig1b() -> ScenarioResult {
    let rec =
        orchestrate::run_isolated("fig1b", "homa_vs_dctcp", Recorder::new, |ctx: &TaskCtx| {
            let params = ProfileParams::testbed(Rate::from_gbps(10));
            let profile = homa_mix_profile(&params);
            let topo = star_topo(33, &profile);
            // DCTCP rides the highest-priority queue (footnote 3); Homa's
            // high-priority traffic (unscheduled bursts and its currently granted
            // messages) shares that queue, so the aggregate standing queue of 16
            // granted flows — one RTT of data each — sits in front of DCTCP's ECN
            // marking threshold and collapses its window.
            let homa = HomaConfig {
                unsched_prio: 0,
                sched_prio: 0,
                ..HomaConfig::default()
            };
            let factory = TagFactory::dctcp_vs_homa(homa);
            let mut flows = Vec::new();
            for i in 0..16u64 {
                flows.push(long_flow(i, i as usize, 32, 0)); // DCTCP
                flows.push(long_flow(16 + i, 16 + i as usize, 32, 1)); // Homa
            }
            run_window_probed(
                topo,
                Box::new(factory),
                Recorder::new().with_throughput(TimeDelta::millis(1)),
                &flows,
                Time::from_millis(120),
                Some(Arc::clone(&ctx.probe)),
            )
        });
    ScenarioResult::new(
        "fig1b_homa_vs_dctcp",
        series_csv(&rec, 120, ["dctcp_gbps", "homa_gbps"]),
    )
}

/// Mean throughput of each series over the second half of the window
/// (steady state), in Gbps — used by tests and EXPERIMENTS.md.
pub fn steady_share(rec: &Recorder, tag: u32, window_ms: usize) -> f64 {
    let tp = rec.throughput_gbps(tag);
    let lo = window_ms / 2;
    let hi = window_ms.min(tp.len());
    if lo >= hi {
        return 0.0;
    }
    tp[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
}
