//! Dependency-free SVG line charts for the result CSVs, so the repository
//! regenerates *figures*, not just tables. `flexpass-experiments --plot`
//! renders every known CSV in the output directory.

use std::fmt::Write as _;
use std::path::Path;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

fn nice_ticks(lo: f64, hi: f64) -> Vec<f64> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| span / s <= 6.0)
        .unwrap_or(mag * 10.0);
    let mut t = (lo / step).ceil() * step;
    let mut out = Vec::new();
    while t <= hi + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders a line chart as a standalone SVG document.
///
/// # Examples
///
/// ```
/// use flexpass_experiments::plot::{svg_line_chart, Series};
///
/// let svg = svg_line_chart(
///     "demo",
///     "x",
///     "y",
///     &[Series { name: "a".into(), points: vec![(0.0, 1.0), (1.0, 2.0)] }],
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
pub fn svg_line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let (x_lo, x_hi) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (_, y_max) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    let (x_lo, x_hi) = if pts.is_empty() {
        (0.0, 1.0)
    } else {
        (x_lo, x_hi)
    };
    let y_lo = 0.0;
    let y_hi = if pts.is_empty() || y_max <= 0.0 {
        1.0
    } else {
        y_max * 1.08
    };

    let px = |x: f64| {
        MARGIN_L
            + if x_hi > x_lo {
                (x - x_lo) / (x_hi - x_lo) * (WIDTH - MARGIN_L - MARGIN_R)
            } else {
                0.0
            }
    };
    let py =
        |y: f64| HEIGHT - MARGIN_B - (y - y_lo) / (y_hi - y_lo) * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        title
    );

    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
        l = MARGIN_L,
        r = WIDTH - MARGIN_R,
        t = MARGIN_T,
        b = HEIGHT - MARGIN_B
    );
    for tx in nice_ticks(x_lo, x_hi) {
        let x = px(tx);
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{b}" x2="{x}" y2="{b2}" stroke="black"/><text x="{x}" y="{ty}" text-anchor="middle">{lbl}</text>"#,
            b = HEIGHT - MARGIN_B,
            b2 = HEIGHT - MARGIN_B + 5.0,
            ty = HEIGHT - MARGIN_B + 20.0,
            lbl = fmt_tick(tx)
        );
    }
    for ty_v in nice_ticks(y_lo, y_hi) {
        let y = py(ty_v);
        let _ = write!(
            svg,
            r##"<line x1="{l1}" y1="{y}" x2="{l}" y2="{y}" stroke="black"/><line x1="{l}" y1="{y}" x2="{r}" y2="{y}" stroke="#dddddd"/><text x="{lx}" y="{yy}" text-anchor="end">{lbl}</text>"##,
            l1 = MARGIN_L - 5.0,
            l = MARGIN_L,
            r = WIDTH - MARGIN_R,
            lx = MARGIN_L - 9.0,
            yy = y + 4.0,
            lbl = fmt_tick(ty_v)
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        HEIGHT - 12.0,
        x_label
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
        y_label
    );

    // Series + legend.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"#,
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{lx2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{tly}">{}</text>"#,
            s.name,
            lx = WIDTH - MARGIN_R + 8.0,
            lx2 = WIDTH - MARGIN_R + 28.0,
            tx = WIDTH - MARGIN_R + 33.0,
            tly = ly + 4.0
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Parses one of our result CSVs into `(header, rows)`.
fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = text.lines();
    let header: Vec<String> = lines
        .next()
        .unwrap_or("")
        .split(',')
        .map(str::to_string)
        .collect();
    let rows = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    (header, rows)
}

/// Builds one series per distinct value of `group_col`, plotting
/// `x_col` vs `y_col`.
fn grouped_series(
    header: &[String],
    rows: &[Vec<String>],
    group_col: &str,
    x_col: &str,
    y_col: &str,
) -> Vec<Series> {
    let idx = |name: &str| header.iter().position(|h| h == name);
    let (Some(g), Some(x), Some(y)) = (idx(group_col), idx(x_col), idx(y_col)) else {
        return Vec::new();
    };
    let mut out: Vec<Series> = Vec::new();
    for r in rows {
        let (Ok(xv), Ok(yv)) = (r[x].parse::<f64>(), r[y].parse::<f64>()) else {
            continue;
        };
        let name = &r[g];
        match out.iter_mut().find(|s| &s.name == name) {
            Some(s) => s.points.push((xv, yv)),
            None => out.push(Series {
                name: name.clone(),
                points: vec![(xv, yv)],
            }),
        }
    }
    out
}

/// The CSVs we know how to plot: `(file stem, group col, x col, y col,
/// title, x label, y label)`.
const CHARTS: &[(&str, &str, &str, &str, &str, &str, &str)] = &[
    (
        "fig10_sweep",
        "scheme",
        "deploy_ratio",
        "p99_small_all_ms",
        "Fig 10a: p99 FCT (<100kB) vs deployment",
        "deployment ratio",
        "p99 FCT (ms)",
    ),
    (
        "fig10_sweep",
        "scheme",
        "deploy_ratio",
        "avg_all_ms",
        "Fig 10b: average FCT vs deployment",
        "deployment ratio",
        "avg FCT (ms)",
    ),
    (
        "fig11_sweep",
        "scheme",
        "deploy_ratio",
        "p99_small_all_ms",
        "Fig 11a: p99 FCT (<100kB), mixed traffic",
        "deployment ratio",
        "p99 FCT (ms)",
    ),
    (
        "fig12_p99_by_type",
        "scheme",
        "deploy_ratio",
        "p99_small_upgraded_ms",
        "Fig 12: upgraded-flow p99 by scheme",
        "deployment ratio",
        "p99 FCT (ms)",
    ),
    (
        "fig13_stddev_by_type",
        "scheme",
        "deploy_ratio",
        "stddev_small_legacy_ms",
        "Fig 13: legacy small-flow FCT stddev",
        "deployment ratio",
        "stddev (ms)",
    ),
    (
        "fig8_incast",
        "transport",
        "n_flows",
        "max_fct_ms",
        "Fig 8: incast tail FCT",
        "number of flows",
        "max FCT (ms)",
    ),
    (
        "fig14_load_sweep",
        "scheme",
        "deploy_ratio",
        "p99_small_all_ms",
        "Fig 14: p99 FCT across loads",
        "deployment ratio",
        "p99 FCT (ms)",
    ),
    (
        "fig17_seldrop_threshold",
        "",
        "sel_drop_kb",
        "avg_fct_degradation",
        "Fig 17: selective-drop threshold trade-off",
        "threshold (kB)",
        "value",
    ),
    (
        "fig18_wq_tradeoff",
        "",
        "wq",
        "legacy_p99_max_degradation",
        "Fig 18: w_q trade-off",
        "w_q",
        "value",
    ),
    (
        "fig1a_ep_vs_dctcp",
        "",
        "time_ms",
        "dctcp_gbps",
        "Fig 1a: DCTCP under naive ExpressPass",
        "time (ms)",
        "throughput (Gbps)",
    ),
    (
        "fig9b_fp_vs_dctcp",
        "",
        "time_ms",
        "dctcp_gbps",
        "Fig 9b: DCTCP vs FlexPass",
        "time (ms)",
        "throughput (Gbps)",
    ),
];

/// Renders SVGs for every known CSV present in `dir`. Returns the number
/// of charts written.
pub fn plot_results(dir: &Path) -> std::io::Result<usize> {
    let mut written = 0;
    for &(stem, group, x, y, title, xl, yl) in CHARTS {
        let csv_path = dir.join(format!("{stem}.csv"));
        let Ok(text) = std::fs::read_to_string(&csv_path) else {
            continue;
        };
        let (header, rows) = parse_csv(&text);
        let series = if group.is_empty() || !header.iter().any(|h| h == group) {
            // Ungrouped: every numeric column vs x becomes a series.
            let xi = header.iter().position(|h| h == x);
            let Some(xi) = xi else { continue };
            header
                .iter()
                .enumerate()
                .filter(|(i, h)| {
                    *i != xi
                        && rows.iter().all(|r| r[*i].parse::<f64>().is_ok())
                        && h.as_str() != group
                })
                .map(|(i, h)| Series {
                    name: h.clone(),
                    points: rows
                        .iter()
                        .filter_map(|r| Some((r[xi].parse().ok()?, r[i].parse().ok()?)))
                        .collect(),
                })
                .collect()
        } else {
            grouped_series(&header, &rows, group, x, y)
        };
        if series.is_empty() {
            continue;
        }
        let svg = svg_line_chart(title, xl, yl, &series);
        let out = dir.join(format!("{stem}_{y}.svg"));
        std::fs::write(out, svg)?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_nice_and_cover_range() {
        let t = nice_ticks(0.0, 1.0);
        assert!(t.len() >= 3 && t.len() <= 7, "{t:?}");
        assert!(t.first().copied().unwrap() >= 0.0);
        assert!(t.last().copied().unwrap() <= 1.0 + 1e-9);
        let t = nice_ticks(0.0, 8.7);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn chart_contains_all_series() {
        let svg = svg_line_chart(
            "t",
            "x",
            "y",
            &[
                Series {
                    name: "alpha".into(),
                    points: vec![(0.0, 1.0), (1.0, 3.0)],
                },
                Series {
                    name: "beta".into(),
                    points: vec![(0.0, 2.0), (1.0, 1.0)],
                },
            ],
        );
        assert!(svg.contains("alpha") && svg.contains("beta"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn grouped_series_splits_by_column() {
        let (h, r) = parse_csv("scheme,x,y\na,0,1\na,1,2\nb,0,3\n");
        let s = grouped_series(&h, &r, "scheme", "x", "y");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].points, vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s[1].points, vec![(0.0, 3.0)]);
    }

    #[test]
    fn plot_results_renders_known_csvs() {
        let dir = std::env::temp_dir().join("flexpass_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("fig8_incast.csv"),
            "transport,n_flows,max_fct_ms,timeouts\ndctcp,8,1.0,0\ndctcp,16,2.0,0\nflexpass,8,0.5,0\n",
        )
        .unwrap();
        let n = plot_results(&dir).unwrap();
        assert!(n >= 1);
        let svg = std::fs::read_to_string(dir.join("fig8_incast_max_fct_ms.svg")).unwrap();
        assert!(svg.contains("flexpass"));
    }

    #[test]
    fn empty_series_chart_still_valid() {
        let svg = svg_line_chart("empty", "x", "y", &[]);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
