//! Figure 17: the selective-dropping threshold trade-off at full
//! deployment — a lower threshold improves small-flow tail FCT (tighter
//! queue bound) but degrades overall average FCT (more reactive drops).

use flexpass::schemes::Scheme;
use flexpass_workload::FlowSizeCdf;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{RunScale, ScenarioResult};
use crate::sweep::{run_point, SweepSpec};

/// Runs the threshold sweep at 100 % deployment. The four threshold
/// points are independent simulations, so they go through the worker
/// pool; a failed point renders as NaN and is reported at exit.
pub fn fig17(scale: RunScale) -> ScenarioResult {
    let thresholds: &[u64] = &[50_000, 100_000, 150_000, 200_000];
    let tasks: Vec<Task<(f64, f64)>> = thresholds
        .iter()
        .map(|&thr| {
            let spec = SweepSpec {
                schemes: vec![Scheme::FlexPass],
                ratios: vec![1.0],
                cdf: FlowSizeCdf::web_search(),
                load: 0.5,
                mixed: false,
                scale,
                seed: 21,
                wq: 0.5,
                sel_drop: thr,
                n_flows: None,
                seeds: 1,
            };
            Task::new(format!("thr{}k", thr / 1000), move |_: &TaskCtx| {
                let p = run_point(Scheme::FlexPass, 1.0, &spec);
                (p.p99_small[0], p.avg[0])
            })
        })
        .collect();
    let rows: Vec<(u64, f64, f64)> = thresholds
        .iter()
        .zip(orchestrate::run_tasks("fig17", tasks))
        .map(|(&thr, r)| {
            let (p99, avg) = r.unwrap_or((f64::NAN, f64::NAN));
            (thr, p99, avg)
        })
        .collect();
    // Degradation of overall average FCT relative to the most permissive
    // threshold (largest), as the paper plots it.
    let baseline_avg = rows.last().map(|r| r.2).unwrap_or(1.0);
    let mut csv = Csv::new(&[
        "sel_drop_kb",
        "p99_small_ms",
        "avg_fct_ms",
        "avg_fct_degradation",
    ]);
    for (thr, p99, avg) in rows {
        csv.row(&[
            (thr / 1000).to_string(),
            f(p99 * 1e3),
            f(avg * 1e3),
            f(avg / baseline_avg - 1.0),
        ]);
    }
    ScenarioResult::new("fig17_seldrop_threshold", csv)
}
