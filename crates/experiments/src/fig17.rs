//! Figure 17: the selective-dropping threshold trade-off at full
//! deployment — a lower threshold improves small-flow tail FCT (tighter
//! queue bound) but degrades overall average FCT (more reactive drops).

use flexpass::schemes::Scheme;
use flexpass_workload::FlowSizeCdf;

use crate::csvout::{f, Csv};
use crate::runner::{RunScale, ScenarioResult};
use crate::sweep::{run_point, SweepSpec};

/// Runs the threshold sweep at 100 % deployment.
pub fn fig17(scale: RunScale) -> ScenarioResult {
    let thresholds: &[u64] = &[50_000, 100_000, 150_000, 200_000];
    let mut rows = Vec::new();
    for &thr in thresholds {
        let spec = SweepSpec {
            schemes: vec![Scheme::FlexPass],
            ratios: vec![1.0],
            cdf: FlowSizeCdf::web_search(),
            load: 0.5,
            mixed: false,
            scale,
            seed: 21,
            wq: 0.5,
            sel_drop: thr,
            n_flows: None,
            seeds: 1,
        };
        eprintln!("  fig17: threshold {} kB", thr / 1000);
        let p = run_point(Scheme::FlexPass, 1.0, &spec);
        rows.push((thr, p.p99_small[0], p.avg[0]));
    }
    // Degradation of overall average FCT relative to the most permissive
    // threshold (largest), as the paper plots it.
    let baseline_avg = rows.last().map(|r| r.2).unwrap_or(1.0);
    let mut csv = Csv::new(&[
        "sel_drop_kb",
        "p99_small_ms",
        "avg_fct_ms",
        "avg_fct_degradation",
    ]);
    for (thr, p99, avg) in rows {
        csv.row(&[
            (thr / 1000).to_string(),
            f(p99 * 1e3),
            f(avg * 1e3),
            f(avg / baseline_avg - 1.0),
        ]);
    }
    ScenarioResult::new("fig17_seldrop_threshold", csv)
}
