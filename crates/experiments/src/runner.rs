//! Shared scenario plumbing: scale presets and simulation helpers.

use std::sync::Arc;

use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simcore::ProgressProbe;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::{Sim, TransportFactory};
use flexpass_simnet::switch::SwitchProfile;
use flexpass_simnet::topology::{ClosParams, Topology};
use flexpass_simnet::{partition, ParSim};

use crate::csvout::Csv;
use crate::orchestrate;

/// How large to run a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScale {
    /// Seconds-per-point scale for CI / benches: small Clos, few flows.
    Smoke,
    /// The default: paper topology, reduced flow counts.
    Default,
    /// Paper-scale flow counts (hours of CPU, like the ns-2 artifact).
    Full,
}

impl RunScale {
    /// Background flow count per sweep point.
    pub fn flows(&self) -> usize {
        match self {
            RunScale::Smoke => 300,
            RunScale::Default => 1_000,
            RunScale::Full => 20_000,
        }
    }

    /// Clos fabric to simulate.
    pub fn clos(&self) -> ClosParams {
        match self {
            RunScale::Smoke => ClosParams::small(),
            _ => ClosParams::default(),
        }
    }

    /// Parses `smoke`/`default`/`full`.
    pub fn parse(s: &str) -> Option<RunScale> {
        match s {
            "smoke" => Some(RunScale::Smoke),
            "default" => Some(RunScale::Default),
            "full" => Some(RunScale::Full),
            _ => None,
        }
    }
}

/// A named CSV produced by one scenario.
pub struct ScenarioResult {
    /// Output file stem (e.g. `fig10_p99_small`).
    pub name: String,
    /// The table.
    pub csv: Csv,
}

impl ScenarioResult {
    /// Creates a result.
    pub fn new(name: impl Into<String>, csv: Csv) -> Self {
        ScenarioResult {
            name: name.into(),
            csv,
        }
    }
}

/// Builds a simulator over `topo`, schedules `flows`, runs to completion
/// (with `grace` drain), and returns the recorder.
pub fn run_flows(
    topo: Topology,
    factory: Box<dyn TransportFactory>,
    recorder: Recorder,
    flows: &[FlowSpec],
    sampling: Option<TimeDelta>,
    grace: TimeDelta,
) -> Recorder {
    run_flows_probed(topo, factory, recorder, flows, sampling, grace, None)
}

/// [`run_flows`] with an optional [`ProgressProbe`] attached to the event
/// calendar so the orchestrator's heartbeat can watch the run. Worker
/// closures pass `Some(ctx.probe.clone())` (see [`crate::orchestrate`]);
/// the probe is observational only and cannot change any outcome.
#[allow(clippy::too_many_arguments)]
pub fn run_flows_probed(
    topo: Topology,
    factory: Box<dyn TransportFactory>,
    recorder: Recorder,
    flows: &[FlowSpec],
    sampling: Option<TimeDelta>,
    grace: TimeDelta,
    probe: Option<Arc<ProgressProbe>>,
) -> Recorder {
    let (topo, factory) = match build_par(orchestrate::par_sim(), topo, factory, &recorder, flows) {
        Ok(mut par) => {
            if let Some(p) = probe {
                par.attach_progress(p);
            }
            if let Some(every) = sampling {
                par.enable_sampling(every);
            }
            for f in flows {
                par.schedule_flow(*f);
            }
            par.run_to_completion(grace);
            return merge_domains(recorder, par);
        }
        Err(back) => back,
    };
    let mut sim = Sim::with_flow_capacity(topo, factory, recorder, flows.len());
    if let Some(p) = probe {
        sim.attach_progress(p);
    }
    if let Some(every) = sampling {
        sim.enable_sampling(every);
    }
    for f in flows {
        sim.schedule_flow(*f);
    }
    sim.run_to_completion(grace);
    sim.observer
}

/// Like [`run_flows`] but stops at a wall-clock deadline of virtual time
/// (for long-running-flow microbenchmarks that measure throughput over a
/// window rather than completion).
pub fn run_window(
    topo: Topology,
    factory: Box<dyn TransportFactory>,
    recorder: Recorder,
    flows: &[FlowSpec],
    until: Time,
) -> Recorder {
    run_window_probed(topo, factory, recorder, flows, until, None)
}

/// [`run_window`] with an optional [`ProgressProbe`], as
/// [`run_flows_probed`].
pub fn run_window_probed(
    topo: Topology,
    factory: Box<dyn TransportFactory>,
    recorder: Recorder,
    flows: &[FlowSpec],
    until: Time,
    probe: Option<Arc<ProgressProbe>>,
) -> Recorder {
    let (topo, factory) = match build_par(orchestrate::par_sim(), topo, factory, &recorder, flows) {
        Ok(mut par) => {
            if let Some(p) = probe {
                par.attach_progress(p);
            }
            for f in flows {
                par.schedule_flow(*f);
            }
            par.run_until(until);
            return merge_domains(recorder, par);
        }
        Err(back) => back,
    };
    let mut sim = Sim::with_flow_capacity(topo, factory, recorder, flows.len());
    if let Some(p) = probe {
        sim.attach_progress(p);
    }
    for f in flows {
        sim.schedule_flow(*f);
    }
    sim.run_until(until);
    sim.observer
}

/// Builds the partitioned engine when `--par-sim` asks for more than one
/// domain, the factory supports per-domain cloning, and the topology cuts
/// usefully. Otherwise hands the topology and factory back (`Err`) so the
/// caller runs the serial engine — byte-identically to a build without
/// this branch.
fn build_par(
    n: usize,
    topo: Topology,
    factory: Box<dyn TransportFactory>,
    recorder: &Recorder,
    flows: &[FlowSpec],
) -> Result<ParSim<Recorder>, (Topology, Box<dyn TransportFactory>)> {
    if n < 2 {
        return Err((topo, factory));
    }
    let mut factories = Vec::with_capacity(n);
    for _ in 0..n {
        match factory.try_clone() {
            Some(f) => factories.push(f),
            None => return Err((topo, factory)),
        }
    }
    match partition(topo, n) {
        Ok(part) => {
            // The partitioner may produce fewer domains than requested
            // (fewer racks than `n`); drop the surplus clones.
            factories.truncate(part.n_domains());
            let observers: Vec<Recorder> = (0..part.n_domains())
                .map(|_| recorder.fresh_like())
                .collect();
            Ok(ParSim::new(part, factories, observers, flows.len()))
        }
        Err(topo) => Err((topo, factory)),
    }
}

/// Folds the per-domain recorders back into `base` in domain order
/// (deterministic merge; split-flow specs dedup inside
/// [`Recorder::absorb`]).
fn merge_domains(base: Recorder, par: ParSim<Recorder>) -> Recorder {
    let mut merged = base;
    for obs in par.into_observers() {
        merged.absorb(obs);
    }
    merged
}

/// Star testbed topology helper (§6.1: hosts behind one switch). Host NICs
/// use the unshaped variant of the switch profile (credit shaping is a
/// switch-port function; see `flexpass::profiles::host_variant`).
pub fn star_topo(n_hosts: usize, profile: &SwitchProfile) -> Topology {
    let rate = profile.port.rate;
    let host = flexpass::profiles::host_variant(profile);
    Topology::star(n_hosts, rate, TimeDelta::micros(5), profile, &host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets() {
        assert_eq!(RunScale::parse("smoke"), Some(RunScale::Smoke));
        assert_eq!(RunScale::parse("full"), Some(RunScale::Full));
        assert_eq!(RunScale::parse("x"), None);
        assert!(RunScale::Smoke.flows() < RunScale::Default.flows());
        assert_eq!(RunScale::Smoke.clos().n_hosts(), 48);
        assert_eq!(RunScale::Default.clos().n_hosts(), 192);
    }
}
