//! Figure 8: incast tail FCT. An 8-to-1 incast of 64 kB responses with an
//! increasing number of flows; DCTCP eventually times out while
//! ExpressPass and FlexPass stay timeout-free.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{dctcp_profile, flexpass_profile, naive_profile, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::sim::TransportFactory;
use flexpass_simnet::switch::SwitchProfile;
use flexpass_transport::dctcp::DctcpFactory;
use flexpass_transport::expresspass::ExpressPassFactory;
use flexpass_workload::incast;

use crate::csvout::{f, Csv};
use crate::runner::{run_flows, star_topo, ScenarioResult};

/// One incast run: `n_flows` of 64 kB spread over 8 senders to host 8.
/// Returns `(max FCT seconds, sender timeouts)`.
pub fn run_incast(
    profile: &SwitchProfile,
    factory: Box<dyn TransportFactory>,
    n_flows: usize,
    seed_offset: u64,
) -> (f64, u64) {
    let topo = star_topo(9, profile);
    let senders: Vec<usize> = (0..n_flows).map(|i| i % 8).collect();
    let flows = incast(&senders, 8, 64_000, Time::from_micros(10 + seed_offset), 0);
    let rec = run_flows(
        topo,
        factory,
        Recorder::new(),
        &flows,
        None,
        TimeDelta::millis(20),
    );
    (rec.fct_stats(|_| true).max, rec.total_timeouts())
}

/// The full Figure-8 curve for the three transports.
pub fn fig8() -> ScenarioResult {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let mut csv = Csv::new(&["transport", "n_flows", "max_fct_ms", "timeouts"]);
    for n in [8usize, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96] {
        eprintln!("  fig8: n={n}");
        // Average the longest FCT over two runs, like the paper.
        let run2 = |mk: &dyn Fn() -> (Box<dyn TransportFactory>, SwitchProfile)| {
            let mut fct = 0.0;
            let mut timeouts = 0;
            for r in 0..2 {
                let (factory, profile) = mk();
                let (m, t) = run_incast(&profile, factory, n, r * 3);
                fct += m / 2.0;
                timeouts += t;
            }
            (fct, timeouts)
        };
        let (fct, to) = run2(&|| {
            (
                Box::new(DctcpFactory::new()) as Box<dyn TransportFactory>,
                dctcp_profile(&params),
            )
        });
        csv.row(&["dctcp".into(), n.to_string(), f(fct * 1e3), to.to_string()]);
        let (fct, to) = run2(&|| {
            (
                Box::new(ExpressPassFactory::new()) as Box<dyn TransportFactory>,
                naive_profile(&params),
            )
        });
        csv.row(&[
            "expresspass".into(),
            n.to_string(),
            f(fct * 1e3),
            to.to_string(),
        ]);
        let (fct, to) = run2(&|| {
            (
                Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5)))
                    as Box<dyn TransportFactory>,
                flexpass_profile(&params),
            )
        });
        csv.row(&[
            "flexpass".into(),
            n.to_string(),
            f(fct * 1e3),
            to.to_string(),
        ]);
    }
    ScenarioResult::new("fig8_incast", csv)
}
