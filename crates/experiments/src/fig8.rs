//! Figure 8: incast tail FCT. An 8-to-1 incast of 64 kB responses with an
//! increasing number of flows; DCTCP eventually times out while
//! ExpressPass and FlexPass stay timeout-free.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{dctcp_profile, flexpass_profile, naive_profile, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::sim::TransportFactory;
use flexpass_simnet::switch::SwitchProfile;
use flexpass_transport::dctcp::DctcpFactory;
use flexpass_transport::expresspass::ExpressPassFactory;
use flexpass_workload::incast;

use std::sync::Arc;

use flexpass_simcore::ProgressProbe;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{run_flows_probed, star_topo, ScenarioResult};

/// One incast run: `n_flows` of 64 kB spread over 8 senders to host 8.
/// Returns `(max FCT seconds, sender timeouts)`.
pub fn run_incast(
    profile: &SwitchProfile,
    factory: Box<dyn TransportFactory>,
    n_flows: usize,
    seed_offset: u64,
) -> (f64, u64) {
    run_incast_probed(profile, factory, n_flows, seed_offset, None)
}

fn run_incast_probed(
    profile: &SwitchProfile,
    factory: Box<dyn TransportFactory>,
    n_flows: usize,
    seed_offset: u64,
    probe: Option<Arc<ProgressProbe>>,
) -> (f64, u64) {
    let topo = star_topo(9, profile);
    let senders: Vec<usize> = (0..n_flows).map(|i| i % 8).collect();
    let flows = incast(&senders, 8, 64_000, Time::from_micros(10 + seed_offset), 0);
    let rec = run_flows_probed(
        topo,
        factory,
        Recorder::new(),
        &flows,
        None,
        TimeDelta::millis(20),
        probe,
    );
    (rec.fct_stats(|_| true).max, rec.total_timeouts())
}

const TRANSPORTS: [&str; 3] = ["dctcp", "expresspass", "flexpass"];

/// The full Figure-8 curve for the three transports. Every
/// (flow count, transport) pair is one pool task running the paper's
/// two-run average internally; both runs share the task so their mean is
/// computed where the data is.
pub fn fig8() -> ScenarioResult {
    let ns = [8usize, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96];
    let mut tasks: Vec<Task<(f64, u64)>> = Vec::new();
    for &n in &ns {
        for &tr in &TRANSPORTS {
            tasks.push(Task::new(format!("{tr}:n{n}"), move |ctx: &TaskCtx| {
                let params = ProfileParams::testbed(Rate::from_gbps(10));
                // Average the longest FCT over two runs, like the paper.
                let mut fct = 0.0;
                let mut timeouts = 0;
                for r in 0..2 {
                    let (factory, profile): (Box<dyn TransportFactory>, SwitchProfile) = match tr {
                        "dctcp" => (Box::new(DctcpFactory::new()), dctcp_profile(&params)),
                        "expresspass" => {
                            (Box::new(ExpressPassFactory::new()), naive_profile(&params))
                        }
                        _ => (
                            Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
                            flexpass_profile(&params),
                        ),
                    };
                    let (m, t) = run_incast_probed(
                        &profile,
                        factory,
                        n,
                        r * 3,
                        Some(Arc::clone(&ctx.probe)),
                    );
                    fct += m / 2.0;
                    timeouts += t;
                }
                (fct, timeouts)
            }));
        }
    }
    let mut results = orchestrate::run_tasks("fig8", tasks).into_iter();
    let mut csv = Csv::new(&["transport", "n_flows", "max_fct_ms", "timeouts"]);
    for &n in &ns {
        for &tr in &TRANSPORTS {
            match results.next().expect("one result per (n, transport)") {
                Ok((fct, to)) => csv.row(&[tr.into(), n.to_string(), f(fct * 1e3), to.to_string()]),
                Err(_) => csv.row(&[tr.into(), n.to_string(), f(f64::NAN), "nan".into()]),
            }
        }
    }
    ScenarioResult::new("fig8_incast", csv)
}
