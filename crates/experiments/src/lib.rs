//! Experiment harness reproducing every table and figure of the FlexPass
//! paper (EuroSys '23).
//!
//! Each scenario module builds the exact topology, switch configuration,
//! workload and schemes of one paper figure, runs the simulator, and
//! returns rows matching the figure's series. The `flexpass-experiments`
//! binary writes them as CSV; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | Module | Paper figure | What it reproduces |
//! |--------|--------------|--------------------|
//! | [`fig1`] | Fig. 1 (a, b) | ExpressPass / Homa starving DCTCP on a shared 10 G link |
//! | [`fig5`] | Fig. 5 (a, b) | RC3-style splitting and alternative queueing comparisons |
//! | [`fig7`] | Fig. 7 (a–c) | per-sub-flow throughput on the testbed topology |
//! | [`fig8`] | Fig. 8 | incast tail FCT vs number of flows |
//! | [`fig9`] | Fig. 9 (a–c) | coexistence throughput + starvation time |
//! | [`sweep`] | Figs. 10–16 | deployment-ratio sweeps (schemes × ratios × workloads × loads) |
//! | [`fig17`] | Fig. 17 | selective-dropping threshold trade-off |
//! | [`fig18`] | Fig. 18 | queue weight (w_q) trade-off |
//! | [`queue_study`] | §6.2 text | bounded-queue occupancy and redundancy fraction |
//! | [`ablation`] | (extension) | design-choice ablations: proactive retx, first-RTT reactive, credit policy |
//! | [`scale`] | (extension) | O(10k)-host Clos with streaming (bounded-memory) FCT sketches |

pub mod ablation;
pub mod csvout;
pub mod custom;
pub mod fig1;
pub mod fig17;
pub mod fig18;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod orchestrate;
pub mod plot;
pub mod queue_study;
pub mod runner;
pub mod scale;
pub mod sweep;
pub mod tracecfg;

pub use runner::{RunScale, ScenarioResult};
