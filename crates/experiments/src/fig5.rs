//! Figure 5: design-alternative comparisons.
//! (a) FlexPass vs RC3-style flow splitting: tail FCT and reordering
//! buffer; (b) FlexPass vs the "alternative queueing" scheme (reactive
//! sub-flow in the legacy queue) across deployment ratios.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory, TAG_UPGRADED};
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::topology::Topology;
use flexpass_workload::FlowSizeCdf;

use std::sync::Arc;

use flexpass_simcore::ProgressProbe;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{run_flows_probed, RunScale, ScenarioResult};
use crate::sweep::{build_flows, SweepSpec};

/// Runs FlexPass with a given protocol configuration at one deployment
/// ratio; returns `(p99 small all, p99 small upgraded, mean reorder peak of
/// upgraded flows)`.
pub fn run_variant(cfg: FlexPassConfig, ratio: f64, scale: RunScale) -> (f64, f64, f64) {
    run_variant_probed(cfg, ratio, scale, None)
}

fn run_variant_probed(
    cfg: FlexPassConfig,
    ratio: f64,
    scale: RunScale,
    probe: Option<Arc<ProgressProbe>>,
) -> (f64, f64, f64) {
    let spec = SweepSpec {
        schemes: vec![Scheme::FlexPass],
        ratios: vec![ratio],
        cdf: FlowSizeCdf::web_search(),
        load: 0.5,
        mixed: false,
        scale,
        seed: 11,
        wq: cfg.wq,
        sel_drop: 150_000,
        n_flows: if scale == RunScale::Default {
            Some(600)
        } else {
            None
        },
        seeds: 1,
    };
    let clos = scale.clos();
    let n_hosts = clos.n_hosts();
    let rack_of: Vec<usize> = (0..n_hosts).map(|h| h / clos.hosts_per_tor).collect();
    let mut rng = SimRng::new(77);
    let deployment = Deployment::by_rack_ratio(&rack_of, ratio, &mut rng);
    let flows = build_flows(&spec, &deployment, n_hosts);
    let frac = deployment.upgraded_byte_fraction(&flows);
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = Scheme::FlexPass.profile(&params, frac);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let factory = SchemeFactory::new(Scheme::FlexPass, deployment, cfg, frac);
    let rec = run_flows_probed(
        topo,
        Box::new(factory),
        Recorder::new(),
        &flows,
        None,
        TimeDelta::millis(20),
        probe,
    );
    let upgraded: Vec<f64> = rec
        .flows
        .iter()
        .filter(|r| r.tag == TAG_UPGRADED)
        .map(|r| r.reorder_peak as f64)
        .collect();
    let reorder = if upgraded.is_empty() {
        0.0
    } else {
        upgraded.iter().sum::<f64>() / upgraded.len() as f64
    };
    (
        rec.p99_small(None),
        rec.p99_small(Some(TAG_UPGRADED)),
        reorder,
    )
}

/// Figure 5(a): FlexPass vs RC3-style splitting at 25/50/75/100 %
/// deployment — p99 FCT of small flows vs mean reordering buffer.
pub fn fig5a(scale: RunScale) -> ScenarioResult {
    let grid: Vec<(&str, FlexPassConfig, f64)> = [0.5, 1.0]
        .iter()
        .flat_map(|&ratio| {
            [
                ("flexpass", FlexPassConfig::new(0.5), ratio),
                ("rc3_split", FlexPassConfig::rc3_splitting(0.5), ratio),
            ]
        })
        .collect();
    let tasks: Vec<Task<(f64, f64, f64)>> = grid
        .iter()
        .map(|&(label, cfg, ratio)| {
            Task::new(format!("{label}:r{ratio:.2}"), move |ctx: &TaskCtx| {
                run_variant_probed(cfg, ratio, scale, Some(Arc::clone(&ctx.probe)))
            })
        })
        .collect();
    let mut csv = Csv::new(&["variant", "deploy_ratio", "p99_small_ms", "reorder_mean_kb"]);
    for ((label, _, ratio), r) in grid.iter().zip(orchestrate::run_tasks("fig5a", tasks)) {
        let (p99, _p99u, reorder) = r.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        csv.row(&[
            (*label).into(),
            format!("{ratio:.2}"),
            f(p99 * 1e3),
            f(reorder / 1e3),
        ]);
    }
    ScenarioResult::new("fig5a_rc3_split", csv)
}

/// Figure 5(b): FlexPass vs alternative queueing across deployment ratios.
pub fn fig5b(scale: RunScale) -> ScenarioResult {
    let grid: Vec<(&str, FlexPassConfig, f64)> = [0.25, 0.5, 0.75, 1.0]
        .iter()
        .flat_map(|&ratio| {
            [
                ("flexpass", FlexPassConfig::new(0.5), ratio),
                (
                    "alternative",
                    FlexPassConfig::alternative_queueing(0.5),
                    ratio,
                ),
            ]
        })
        .collect();
    let tasks: Vec<Task<(f64, f64, f64)>> = grid
        .iter()
        .map(|&(label, cfg, ratio)| {
            Task::new(format!("{label}:r{ratio:.2}"), move |ctx: &TaskCtx| {
                run_variant_probed(cfg, ratio, scale, Some(Arc::clone(&ctx.probe)))
            })
        })
        .collect();
    let mut csv = Csv::new(&["variant", "deploy_ratio", "p99_small_ms"]);
    for ((label, _, ratio), r) in grid.iter().zip(orchestrate::run_tasks("fig5b", tasks)) {
        let (p99, _, _) = r.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        csv.row(&[(*label).into(), format!("{ratio:.2}"), f(p99 * 1e3)]);
    }
    ScenarioResult::new("fig5b_alt_queueing", csv)
}
