//! Process-wide packet-tracing configuration for the experiments binary.
//!
//! `--trace[=FILTER]` arms this module once at startup; every simulation
//! point the orchestrator runs then gets a thread-local tracer installed
//! around it ([`install_for_run`] / [`finish_run`] are called by
//! `orchestrate::run_one` on the worker thread). Each point writes
//! `<out>/traces/<group>-<label>.jsonl`: the recorded events in time
//! order, a `"kind":"meta"` line with the ring accounting, and one
//! `"kind":"summary"` telemetry line (`flexpass_metrics::Telemetry`).
//!
//! Tracing is observation-only: the tracer records what the datapath
//! already did and no simulation code branches on it, so experiment CSVs
//! are byte-identical with tracing on or off (`tests/trace_determinism.rs`
//! and the CI byte-diff hold this).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use flexpass_metrics::Telemetry;
use flexpass_simcore::time::TimeDelta;
use flexpass_simtrace::{self as simtrace, TraceFilter};

/// Telemetry bin width for the per-run summary line.
const SUMMARY_BIN: TimeDelta = TimeDelta::micros(100);

struct TraceCfg {
    filter: TraceFilter,
    dir: PathBuf,
}

static CFG: OnceLock<TraceCfg> = OnceLock::new();

/// Arms packet tracing for the rest of the process: `spec` is a
/// comma-separated event-kind list (empty or `all` records everything),
/// traces land under `<out_dir>/traces/`. Errors on a bad spec or a
/// second call.
pub fn enable(spec: &str, out_dir: &Path) -> Result<(), String> {
    let filter = TraceFilter::parse(spec)?;
    let dir = out_dir.join("traces");
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    CFG.set(TraceCfg { filter, dir })
        .map_err(|_| "packet tracing enabled twice".to_string())
}

/// Whether `--trace` was given.
pub fn enabled() -> bool {
    CFG.get().is_some()
}

/// Installs the thread-local tracer for one simulation point, if tracing
/// is armed. Must run on the thread that will run the simulation.
pub fn install_for_run() {
    if let Some(cfg) = CFG.get() {
        simtrace::install(cfg.filter);
    }
}

/// Collects this thread's tracer and writes the labelled JSONL file.
/// No-op when tracing is off. IO failures are reported to stderr but
/// never fail the run: the simulation result is already in hand.
pub fn finish_run(label: &str) {
    let Some(cfg) = CFG.get() else { return };
    if !simtrace::is_active() {
        return;
    }
    let log = simtrace::finish();
    let path = cfg.dir.join(format!("{}.jsonl", sanitize(label)));
    let telemetry = Telemetry::from_events(&log.events, SUMMARY_BIN);
    let meta = format!(
        "{{\"kind\":\"meta\",\"label\":\"{}\",\"total\":{},\"dropped_oldest\":{},\"capacity\":{}}}\n",
        sanitize(label),
        log.total,
        log.dropped_oldest,
        log.capacity
    );
    let write = || -> std::io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        f.write_all(log.to_jsonl().as_bytes())?;
        f.write_all(meta.as_bytes())?;
        f.write_all(telemetry.summary_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("trace write failed for {}: {e}", path.display());
    }
}

/// File-system-safe run label: `fig9:flexpass:s0` → `fig9-flexpass-s0`.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_only() {
        assert_eq!(sanitize("fig9:flexpass:s0"), "fig9-flexpass-s0");
        assert_eq!(sanitize("a b/c\\d"), "a-b-c-d");
        assert_eq!(sanitize("ok-1.2_x"), "ok-1.2_x");
    }

    #[test]
    fn install_and_finish_are_noops_when_disarmed() {
        // CFG is process-global; tests must not arm it (other tests run
        // experiments through the pool). Disarmed, both calls are no-ops.
        if !enabled() {
            install_for_run();
            assert!(!simtrace::is_active());
            finish_run("unused");
        }
    }
}
