//! A minimal CSV writer (hand-rolled to keep the dependency set small).

use std::fs;
use std::io::Write;
use std::path::Path;

/// An in-memory CSV table.
#[derive(Clone, Debug)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Csv {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text (RFC 4180: cells containing a comma,
    /// quote or newline are quoted, with inner quotes doubled).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_row(&mut out, &self.header);
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }

    /// Writes the table to `dir/name.csv`, creating `dir` if needed.
    pub fn write(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
        f.write_all(self.render().as_bytes())
    }
}

fn render_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n', '\r']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Formats a float with 4 significant decimals for CSV cells.
pub fn f(v: f64) -> String {
    format!("{v:.6}")
}

/// Formats a seed-averaged count: whole numbers render without a decimal
/// point (so single-seed tables look like raw counts), fractional means
/// keep two decimals.
pub fn count(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_csv() {
        let mut c = Csv::new(&["a", "b"]);
        c.push(&[1, 2]);
        c.row(&["x".into(), "y".into()]);
        assert_eq!(c.render(), "a,b\n1,2\nx,y\n");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    /// RFC 4180 regression: commas, quotes and newlines in cells must not
    /// corrupt the table shape.
    #[test]
    fn quotes_special_cells() {
        let mut c = Csv::new(&["label", "value"]);
        c.row(&["has,comma".into(), "plain".into()]);
        c.row(&["say \"hi\"".into(), "line\nbreak".into()]);
        assert_eq!(
            c.render(),
            "label,value\n\"has,comma\",plain\n\"say \"\"hi\"\"\",\"line\nbreak\"\n"
        );
    }

    #[test]
    fn count_formats_means() {
        assert_eq!(count(7.0), "7");
        assert_eq!(count(7.5), "7.50");
        assert_eq!(count(0.0), "0");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut c = Csv::new(&["a", "b"]);
        c.push(&[1]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("flexpass_csv_test");
        let mut c = Csv::new(&["x"]);
        c.push(&[42]);
        c.write(&dir, "t").unwrap();
        let s = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(s, "x\n42\n");
    }
}
