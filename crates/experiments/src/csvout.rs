//! A minimal CSV writer (hand-rolled to keep the dependency set small).

use std::fs;
use std::io::Write;
use std::path::Path;

/// An in-memory CSV table.
#[derive(Clone, Debug)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Csv {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table to `dir/name.csv`, creating `dir` if needed.
    pub fn write(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
        f.write_all(self.render().as_bytes())
    }
}

/// Formats a float with 4 significant decimals for CSV cells.
pub fn f(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_csv() {
        let mut c = Csv::new(&["a", "b"]);
        c.push(&[1, 2]);
        c.row(&["x".into(), "y".into()]);
        assert_eq!(c.render(), "a,b\n1,2\nx,y\n");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut c = Csv::new(&["a", "b"]);
        c.push(&[1]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("flexpass_csv_test");
        let mut c = Csv::new(&["x"]);
        c.push(&[42]);
        c.write(&dir, "t").unwrap();
        let s = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(s, "x\n42\n");
    }
}
