//! Trace-driven custom scenarios: replay a user-provided flow trace under
//! any deployment scheme and report per-type FCT statistics.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::ProfileParams;
use flexpass::schemes::{Deployment, Scheme, SchemeFactory, TAG_LEGACY, TAG_UPGRADED};
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::topology::Topology;
use flexpass_workload::parse_trace;

use std::sync::Arc;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, TaskCtx};
use crate::runner::{run_flows_probed, RunScale, ScenarioResult};

/// Settings for a custom trace replay.
#[derive(Clone, Debug)]
pub struct CustomSpec {
    /// Scheme to run the upgraded flows on.
    pub scheme: Scheme,
    /// Fraction of racks upgraded.
    pub ratio: f64,
    /// Queue weight w_q.
    pub wq: f64,
    /// Fabric scale (host ids in the trace must fit).
    pub scale: RunScale,
    /// Deployment RNG seed.
    pub seed: u64,
}

impl Default for CustomSpec {
    fn default() -> Self {
        CustomSpec {
            scheme: Scheme::FlexPass,
            ratio: 1.0,
            wq: 0.5,
            scale: RunScale::Default,
            seed: 1,
        }
    }
}

/// Replays `flows` (e.g. from [`parse_trace`]) under the spec. Returns the
/// recorder for further analysis plus a summary CSV.
pub fn run_trace(flows: &[FlowSpec], spec: &CustomSpec) -> (Recorder, ScenarioResult) {
    let clos = spec.scale.clos();
    let n_hosts = clos.n_hosts();
    for fl in flows {
        assert!(
            fl.src < n_hosts && fl.dst < n_hosts,
            "trace host {} out of range for the {}-host fabric (use --scale full or renumber)",
            fl.src.max(fl.dst),
            n_hosts
        );
    }
    let rack_of: Vec<usize> = (0..n_hosts).map(|h| h / clos.hosts_per_tor).collect();
    let mut rng = SimRng::new(spec.seed);
    let deployment = Deployment::by_rack_ratio(&rack_of, spec.ratio, &mut rng);
    let mut flows: Vec<FlowSpec> = flows.to_vec();
    for fl in &mut flows {
        fl.tag = deployment.tag_for(fl);
    }
    let frac = deployment.upgraded_byte_fraction(&flows);
    let mut params = ProfileParams::simulation(clos.link_rate);
    params.wq = spec.wq;
    let profile = spec.scheme.profile(&params, frac);
    let host = flexpass::profiles::host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let factory = SchemeFactory::new(spec.scheme, deployment, FlexPassConfig::new(spec.wq), frac);
    let rec = orchestrate::run_isolated("custom", "trace", Recorder::new, move |ctx: &TaskCtx| {
        run_flows_probed(
            topo,
            Box::new(factory),
            Recorder::new(),
            &flows,
            None,
            TimeDelta::millis(20),
            Some(Arc::clone(&ctx.probe)),
        )
    });

    let mut csv = Csv::new(&[
        "flow_type",
        "flows",
        "avg_fct_ms",
        "p50_fct_ms",
        "p99_fct_ms",
        "max_fct_ms",
        "p99_small_ms",
    ]);
    for (label, tag) in [
        ("all", None),
        ("legacy", Some(TAG_LEGACY)),
        ("upgraded", Some(TAG_UPGRADED)),
    ] {
        let stats = rec.fct_stats(|r| tag.is_none_or(|t| r.tag == t));
        csv.row(&[
            label.into(),
            stats.count.to_string(),
            f(stats.avg * 1e3),
            f(stats.p50 * 1e3),
            f(stats.p99 * 1e3),
            f(stats.max * 1e3),
            f(rec.p99_small(tag) * 1e3),
        ]);
    }
    (rec, ScenarioResult::new("custom_trace", csv))
}

/// Loads a trace file and replays it.
pub fn run_trace_file(
    path: &std::path::Path,
    spec: &CustomSpec,
) -> std::io::Result<(Recorder, ScenarioResult)> {
    let text = std::fs::read_to_string(path)?;
    let flows = parse_trace(&text, 0)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(run_trace(&flows, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpass_workload::render_trace;

    #[test]
    fn replays_small_trace() {
        let trace = "src,dst,size_bytes,start_us\n\
                     0,7,100000,0\n\
                     1,8,50000,10\n\
                     2,9,14600,20\n";
        let flows = parse_trace(trace, 0).unwrap();
        let spec = CustomSpec {
            scale: RunScale::Smoke,
            ..CustomSpec::default()
        };
        let (rec, result) = run_trace(&flows, &spec);
        assert_eq!(rec.completed(), 3);
        assert_eq!(result.csv.len(), 3);
        // Full deployment: everything upgraded.
        let all = rec.fct_stats(|_| true);
        assert!(all.avg > 0.0);
    }

    #[test]
    fn trace_round_trip_replay() {
        let flows = parse_trace("0,1,1460,0\n1,2,1460,5\n", 0).unwrap();
        let text = render_trace(&flows);
        let again = parse_trace(&text, 0).unwrap();
        let spec = CustomSpec {
            scale: RunScale::Smoke,
            scheme: Scheme::Naive,
            ratio: 0.5,
            ..CustomSpec::default()
        };
        let (rec, _) = run_trace(&again, &spec);
        assert_eq!(rec.completed(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_hosts() {
        let flows = parse_trace("0,10000,100,0\n", 0).unwrap();
        let spec = CustomSpec {
            scale: RunScale::Smoke,
            ..CustomSpec::default()
        };
        let _ = run_trace(&flows, &spec);
    }
}
