//! Figure 18: the queue-weight (w_q) trade-off — smaller w_q shields
//! legacy flows during the rollout; larger w_q improves FlexPass's tail
//! FCT at full deployment.

use flexpass::schemes::Scheme;
use flexpass_workload::FlowSizeCdf;

use crate::csvout::{f, Csv};
use crate::runner::{RunScale, ScenarioResult};
use crate::sweep::{run_point, SweepSpec};

/// Runs the w_q sweep.
pub fn fig18(scale: RunScale) -> ScenarioResult {
    let weights = [0.4, 0.45, 0.5, 0.55, 0.6];
    // Mid-rollout ratios used to find the worst legacy degradation.
    let mid_ratios = [0.5];
    let mut csv = Csv::new(&["wq", "legacy_p99_max_degradation", "p99_small_full_ms"]);
    for &wq in &weights {
        let spec = |ratio: f64| SweepSpec {
            schemes: vec![Scheme::FlexPass],
            ratios: vec![ratio],
            cdf: FlowSizeCdf::web_search(),
            load: 0.5,
            mixed: false,
            scale,
            seed: 31,
            wq,
            sel_drop: 150_000,
            n_flows: if scale == RunScale::Default {
                Some(600)
            } else {
                None
            },
            seeds: 1,
        };
        eprintln!("  fig18: wq {wq}");
        // Baseline: all-DCTCP under the same switch configuration.
        let base = run_point(Scheme::FlexPass, 0.0, &spec(0.0)).p99_small[1];
        let mut worst = 0.0f64;
        for &r in &mid_ratios {
            let p = run_point(Scheme::FlexPass, r, &spec(r));
            if base > 0.0 && p.p99_small[1] > 0.0 {
                worst = worst.max(p.p99_small[1] / base - 1.0);
            }
        }
        let full = run_point(Scheme::FlexPass, 1.0, &spec(1.0));
        csv.row(&[format!("{wq:.2}"), f(worst), f(full.p99_small[0] * 1e3)]);
    }
    ScenarioResult::new("fig18_wq_tradeoff", csv)
}
