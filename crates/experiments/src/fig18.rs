//! Figure 18: the queue-weight (w_q) trade-off — smaller w_q shields
//! legacy flows during the rollout; larger w_q improves FlexPass's tail
//! FCT at full deployment.

use flexpass::schemes::Scheme;
use flexpass_workload::FlowSizeCdf;

use crate::csvout::{f, Csv};
use crate::orchestrate::{self, Task, TaskCtx};
use crate::runner::{RunScale, ScenarioResult};
use crate::sweep::{run_point, SweepSpec};

/// Runs the w_q sweep. Each weight needs three deployment points
/// (baseline 0 %, mid-rollout, full); all 15 simulations are independent,
/// so the whole grid is flattened onto the worker pool and the per-weight
/// rows are assembled afterwards from results in task order.
pub fn fig18(scale: RunScale) -> ScenarioResult {
    let weights = [0.4, 0.45, 0.5, 0.55, 0.6];
    // Mid-rollout ratios used to find the worst legacy degradation.
    let mid_ratios = [0.5];
    let ratios: Vec<f64> = std::iter::once(0.0)
        .chain(mid_ratios)
        .chain(std::iter::once(1.0))
        .collect();
    let mut tasks: Vec<Task<SweepPointLite>> = Vec::new();
    for &wq in &weights {
        for &ratio in &ratios {
            let spec = SweepSpec {
                schemes: vec![Scheme::FlexPass],
                ratios: vec![ratio],
                cdf: FlowSizeCdf::web_search(),
                load: 0.5,
                mixed: false,
                scale,
                seed: 31,
                wq,
                sel_drop: 150_000,
                n_flows: if scale == RunScale::Default {
                    Some(600)
                } else {
                    None
                },
                seeds: 1,
            };
            tasks.push(Task::new(
                format!("wq{wq:.2}:r{ratio:.2}"),
                move |_: &TaskCtx| {
                    let p = run_point(Scheme::FlexPass, ratio, &spec);
                    SweepPointLite {
                        p99_small_all: p.p99_small[0],
                        p99_small_legacy: p.p99_small[1],
                    }
                },
            ));
        }
    }
    let mut results = orchestrate::run_tasks("fig18", tasks).into_iter();
    let mut csv = Csv::new(&["wq", "legacy_p99_max_degradation", "p99_small_full_ms"]);
    for &wq in &weights {
        let mut next = || {
            results
                .next()
                .expect("one result per (wq, ratio) task")
                .unwrap_or(SweepPointLite {
                    p99_small_all: f64::NAN,
                    p99_small_legacy: f64::NAN,
                })
        };
        // Baseline: all-DCTCP under the same switch configuration.
        let base = next().p99_small_legacy;
        let mut worst = 0.0f64;
        for _ in &mid_ratios {
            let p = next();
            if base > 0.0 && p.p99_small_legacy > 0.0 {
                worst = worst.max(p.p99_small_legacy / base - 1.0);
            }
        }
        let full = next();
        csv.row(&[format!("{wq:.2}"), f(worst), f(full.p99_small_all * 1e3)]);
    }
    ScenarioResult::new("fig18_wq_tradeoff", csv)
}

/// The two statistics fig18 keeps per grid point.
#[derive(Clone, Copy)]
struct SweepPointLite {
    p99_small_all: f64,
    p99_small_legacy: f64,
}
