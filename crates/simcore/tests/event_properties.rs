//! Property tests for the deterministic event calendar.
//!
//! The calendar's contract (DESIGN.md "Determinism & invariants"): pops are
//! totally ordered by `(time, insertion order)` — time never goes backwards,
//! and events scheduled for the same instant fire in FIFO order. Both the
//! batch and the interleaved schedule/pop paths must uphold it.

use flexpass_simcore::event::EventQueue;
use flexpass_simcore::time::Time;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pop_order_is_total_monotone_and_fifo_stable(
        times in prop::collection::vec(0u64..50, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of FIFO order: {:?}", w);
            }
        }
        // The pop order is exactly a stable sort of insertions by time.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn interleaved_schedule_pop_stays_monotone(
        ops in prop::collection::vec(0u64..20, 1..200),
    ) {
        // op == 0 pops; op > 0 schedules at (last popped time + op - 1), so
        // schedules never land in the past and ties (op == 1) are common.
        let mut q = EventQueue::new();
        let mut last = 0u64;
        let mut n = 0usize;
        for &op in &ops {
            if op == 0 {
                if let Some((t, _)) = q.pop() {
                    prop_assert!(t.as_nanos() >= last);
                    last = t.as_nanos();
                }
            } else {
                q.schedule(Time::from_nanos(last + op - 1), n);
                n += 1;
            }
        }
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= last);
            last = t.as_nanos();
        }
    }
}
