//! Property tests for the deterministic event calendar.
//!
//! The calendar's contract (DESIGN.md "Determinism & invariants"): pops are
//! totally ordered by `(time, insertion order)` — time never goes backwards,
//! and events scheduled for the same instant fire in FIFO order. Both the
//! batch and the interleaved schedule/pop paths must uphold it.

use flexpass_simcore::event::EventQueue;
use flexpass_simcore::time::Time;
use proptest::prelude::*;

/// One step of the randomized differential tape, decoded from a raw
/// `(kind, arg)` pair. Times are offsets from the last popped instant so
/// schedules never land in the past; an offset of 0 produces same-instant
/// ties, exercising the FIFO tie-break.
#[derive(Debug, Clone)]
enum Op {
    Pop,
    Schedule(u64),
    ScheduleCancelable(u64),
    /// Cancel the pending handle at (index % live handles), if any.
    Cancel(usize),
}

fn decode(kind: u8, arg: u64) -> Op {
    match kind % 7 {
        0 | 1 => Op::Pop,
        // Mix short offsets (dense ties, same-slot collisions) with long
        // ones that overflow the wheel's near-future horizon.
        2 | 3 => Op::Schedule(arg % 2_000_000),
        4 | 5 => Op::ScheduleCancelable(arg % 2_000_000),
        _ => Op::Cancel(arg as usize),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pop_order_is_total_monotone_and_fifo_stable(
        times in prop::collection::vec(0u64..50, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of FIFO order: {:?}", w);
            }
        }
        // The pop order is exactly a stable sort of insertions by time.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn interleaved_schedule_pop_stays_monotone(
        ops in prop::collection::vec(0u64..20, 1..200),
    ) {
        // op == 0 pops; op > 0 schedules at (last popped time + op - 1), so
        // schedules never land in the past and ties (op == 1) are common.
        let mut q = EventQueue::new();
        let mut last = 0u64;
        let mut n = 0usize;
        for &op in &ops {
            if op == 0 {
                if let Some((t, _)) = q.pop() {
                    prop_assert!(t.as_nanos() >= last);
                    last = t.as_nanos();
                }
            } else {
                q.schedule(Time::from_nanos(last + op - 1), n);
                n += 1;
            }
        }
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= last);
            last = t.as_nanos();
        }
    }

    /// Differential check: the timing wheel and the legacy binary heap are
    /// observably the same calendar. Any interleaving of schedules, pops and
    /// cancellations — including same-instant ties and cancel-then-pop races
    /// (lazy deletion) — must yield the identical `(time, payload)` pop
    /// sequence from both backends.
    #[test]
    fn wheel_and_heap_pop_identically_under_cancellation(
        tape in prop::collection::vec((0u8..=255, 0u64..u64::MAX), 1..300),
    ) {
        let ops: Vec<Op> = tape.into_iter().map(|(k, a)| decode(k, a)).collect();
        let mut wheel: EventQueue<u64> = EventQueue::new_wheel_backed();
        let mut heap: EventQueue<u64> = EventQueue::new_heap_backed();
        // Live cancellable handles, tracked per queue by insertion order so
        // cancellation targets the "same" logical timer in both (handles
        // themselves are slab-allocated and need not be compared).
        let mut wheel_handles = Vec::new();
        let mut heap_handles = Vec::new();
        let mut next_payload = 0u64;
        let mut last_time = Time::ZERO;
        for op in ops {
            match op {
                Op::Pop => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "backends diverged on pop");
                    if let Some((t, _)) = a {
                        prop_assert!(t >= last_time, "time went backwards");
                        last_time = t;
                    }
                }
                Op::Schedule(dt) => {
                    let at = last_time + flexpass_simcore::time::TimeDelta::nanos(dt);
                    wheel.schedule(at, next_payload);
                    heap.schedule(at, next_payload);
                    next_payload += 1;
                }
                Op::ScheduleCancelable(dt) => {
                    let at = last_time + flexpass_simcore::time::TimeDelta::nanos(dt);
                    wheel_handles.push(wheel.schedule_cancelable(at, next_payload));
                    heap_handles.push(heap.schedule_cancelable(at, next_payload));
                    next_payload += 1;
                }
                Op::Cancel(i) => {
                    if !wheel_handles.is_empty() {
                        let i = i % wheel_handles.len();
                        let a = wheel.cancel(wheel_handles.swap_remove(i));
                        let b = heap.cancel(heap_handles.swap_remove(i));
                        prop_assert_eq!(a, b, "backends disagreed on cancel result");
                    }
                }
            }
            // NB: `len()` is deliberately not compared — it counts dead
            // entries awaiting lazy discard, and the wheel reaps those at
            // cascade time while the heap carries them to the head.
        }
        // Drain both to the end: the full residual sequence must match.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "backends diverged on final drain");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.popped(), heap.popped());
    }
}
