//! Hierarchical timing-wheel calendar backend.
//!
//! A hashed hierarchical timing wheel in the style of Varghese & Lauck's
//! scheme (and the Linux / tokio timer wheels), specialised for a
//! discrete-event simulator where *pops are globally ordered*: the consumer
//! always takes the earliest `(time, seq)` entry, never "all timers in this
//! tick". That requirement shapes the design:
//!
//! * **Levels.** [`LEVELS`] wheel levels of [`SLOTS_PER_LEVEL`] slots each.
//!   A level-0 slot spans `2^SLOT_BITS` ns (1.024 µs); each higher level is
//!   64× coarser, so the wheel covers `2^(SLOT_BITS + 6·LEVELS)` ns
//!   (≈ 17 s) past the cursor. Anything farther goes to a sorted
//!   *overflow* heap and is re-distributed when the cursor reaches it.
//! * **Current-slot heap.** Entries at or before the cursor's level-0 slot
//!   live in a small binary heap (`cur`) ordered by `(time, seq)`. The
//!   global minimum is always `cur.peek()`: every entry outside `cur` sits
//!   in a strictly later level-0 slot, hence at a strictly later time.
//!   Same-instant entries always share a slot, so FIFO tie-breaks reduce to
//!   the `seq` ordering inside `cur` — identical to a plain binary heap.
//! * **Eager normalisation.** After every `push`/`pop` the wheel restores
//!   the invariant *`cur` is non-empty whenever `len > 0`* by advancing the
//!   cursor to the next occupied slot (cascading coarser levels down as
//!   needed). This keeps `peek` a `&self` O(1) operation, matching the
//!   `BinaryHeap` contract the simulator was built against.
//!
//! Scheduling earlier than the cursor's slot is legal (the cursor can run
//! ahead of the last *popped* time after normalisation); such entries land
//! in `cur` and are ordered by the heap like any other.
//!
//! Occupancy is tracked as one `u64` bitmask per level, so "find the next
//! occupied slot" is a masked `trailing_zeros`, and an idle wheel costs
//! nothing to skip across arbitrarily large gaps.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// log2 of the level-0 slot width in nanoseconds (1024 ns per slot).
pub const SLOT_BITS: u32 = 10;
/// log2 of the slot count per level.
pub const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
pub const SLOTS_PER_LEVEL: usize = 1 << LEVEL_BITS;
/// Number of wheel levels before the sorted overflow heap takes over.
pub const LEVELS: usize = 4;
/// Slot-number bits covered by the wheel proper (beyond it: overflow).
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// A calendar entry: `(time, seq)` orders pops, `payload` rides along.
struct CalEntry<T> {
    time: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for CalEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for CalEntry<T> {}

impl<T> PartialOrd for CalEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for CalEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference calendar backend: one `BinaryHeap` over `(time, seq)`.
///
/// This is the pre-wheel implementation kept as a differential oracle: the
/// proptests in `tests/event_properties.rs` and the `calendar-heap` cargo
/// feature drive whole runs through it to prove the wheel pops a
/// byte-identical sequence.
pub struct HeapCalendar<T> {
    heap: BinaryHeap<CalEntry<T>>,
}

impl<T> Default for HeapCalendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapCalendar<T> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        HeapCalendar {
            heap: BinaryHeap::new(),
        }
    }

    /// Creates an empty calendar with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        HeapCalendar {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Inserts an entry. `seq` must be unique (the caller's insertion
    /// counter); ties on `time` pop in `seq` order.
    pub fn push(&mut self, time: Time, seq: u64, payload: T) {
        self.heap.push(CalEntry { time, seq, payload });
    }

    /// Removes and returns the earliest `(time, seq)` entry.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.payload))
    }

    /// The earliest entry without removing it.
    pub fn peek(&self) -> Option<(Time, u64, &T)> {
        self.heap.peek().map(|e| (e.time, e.seq, &e.payload))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Hierarchical timing wheel with a sorted overflow level.
///
/// Same `push`/`pop`/`peek` contract as [`HeapCalendar`] — pops are
/// globally ordered by `(time, seq)` — but near-future scheduling is O(1)
/// and pops touch only the small current-slot heap plus an occasional
/// cascade, instead of sifting a single calendar-wide heap.
pub struct TimingWheel<T> {
    /// `LEVELS × SLOTS_PER_LEVEL` buckets, indexed `lvl * 64 + slot`.
    slots: Vec<Vec<CalEntry<T>>>,
    /// One occupancy bit per slot, per level.
    occ: [u64; LEVELS],
    /// Entries at or before the cursor's level-0 slot, earliest-first.
    cur: BinaryHeap<CalEntry<T>>,
    /// Entries beyond the wheel horizon, earliest-first.
    overflow: BinaryHeap<CalEntry<T>>,
    /// Level-0 slot number of the cursor (`time >> SLOT_BITS` units).
    cur_slot: u64,
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty wheel sized for roughly `n` concurrent entries.
    ///
    /// Only the current-slot heap is pre-sized (wheel buckets grow on
    /// demand and stay allocated once touched).
    pub fn with_capacity(n: usize) -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS_PER_LEVEL).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            cur: BinaryHeap::with_capacity(n.min(SLOTS_PER_LEVEL)),
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            len: 0,
        }
    }

    /// Inserts an entry. `seq` must be unique and increasing per insertion;
    /// ties on `time` pop in `seq` order (FIFO).
    pub fn push(&mut self, time: Time, seq: u64, payload: T) {
        self.push_reap(time, seq, payload, &mut |_| false);
    }

    /// [`push`](Self::push) with a liveness filter: any entry for which
    /// `dead` returns `true` is silently dropped whenever a cascade or
    /// promotion touches it, instead of being carried toward delivery.
    /// Dropping is unobservable in the pop sequence (the caller would have
    /// discarded the entry at the head anyway), but on cancellation-heavy
    /// schedules it keeps dead timers from cascading through every level
    /// and sifting the current-slot heap.
    pub fn push_reap(
        &mut self,
        time: Time,
        seq: u64,
        payload: T,
        dead: &mut dyn FnMut(&T) -> bool,
    ) {
        self.place(CalEntry { time, seq, payload });
        self.len += 1;
        if self.cur.is_empty() {
            self.advance(dead);
        }
    }

    /// Removes and returns the earliest `(time, seq)` entry.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        self.pop_reap(&mut |_| false)
    }

    /// [`pop`](Self::pop) with a liveness filter (see
    /// [`push_reap`](Self::push_reap)). The returned entry itself is *not*
    /// filtered — entries already promoted into the current-slot heap are
    /// delivered and discarded by the caller — only the cascade work this
    /// pop triggers.
    pub fn pop_reap(&mut self, dead: &mut dyn FnMut(&T) -> bool) -> Option<(Time, u64, T)> {
        let e = self.cur.pop()?;
        self.len -= 1;
        if self.cur.is_empty() && self.len > 0 {
            self.advance(dead);
        }
        Some((e.time, e.seq, e.payload))
    }

    /// The earliest entry without removing it.
    ///
    /// O(1): normalisation guarantees the global minimum sits at the head
    /// of the current-slot heap.
    pub fn peek(&self) -> Option<(Time, u64, &T)> {
        self.cur.peek().map(|e| (e.time, e.seq, &e.payload))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Routes one entry to the current-slot heap, a wheel level, or the
    /// overflow heap, relative to the current cursor. Does not touch `len`.
    fn place(&mut self, e: CalEntry<T>) {
        let s0 = e.time.as_nanos() >> SLOT_BITS;
        if s0 <= self.cur_slot {
            self.cur.push(e);
            return;
        }
        // Highest bit where the slot numbers differ picks the level: the
        // entry shares all coarser slot digits with the cursor, so it lands
        // in the cursor's current block at that level.
        // lint:allow(panic-path): divisor is the non-zero LEVEL_BITS const.
        let lvl = ((63 - (s0 ^ self.cur_slot).leading_zeros()) / LEVEL_BITS) as usize;
        if lvl >= LEVELS {
            self.overflow.push(e);
        } else {
            let idx = ((s0 >> (LEVEL_BITS * lvl as u32)) & 63) as usize;
            // lint:allow(panic-path): lvl < LEVELS checked above; idx is
            // masked to < 64 = SLOTS_PER_LEVEL.
            self.occ[lvl] |= 1u64 << idx;
            // lint:allow(panic-path): same bounds as the occ update.
            self.slots[lvl * SLOTS_PER_LEVEL + idx].push(e);
        }
    }

    /// Lowest occupied slot index strictly after `rel` in `mask`, if any.
    fn next_occupied(mask: u64, rel: u32) -> Option<u32> {
        if rel >= 63 {
            return None;
        }
        let m = mask & (!0u64 << (rel + 1));
        (m != 0).then(|| m.trailing_zeros())
    }

    /// Advances the cursor until the current-slot heap is non-empty,
    /// cascading coarser levels (and the overflow heap) down as needed.
    /// Entries flagged by `dead` are dropped at the first touch instead of
    /// being re-placed or promoted.
    ///
    /// Precondition: `cur` is empty (no-op when the wheel is empty).
    fn advance(&mut self, dead: &mut dyn FnMut(&T) -> bool) {
        loop {
            if !self.cur.is_empty() || self.len == 0 {
                return;
            }
            // Next occupied level-0 slot in the cursor's block: promote it.
            let rel0 = (self.cur_slot & 63) as u32;
            // lint:allow(panic-path): occ is [u64; LEVELS] with LEVELS > 0;
            // index 0 is a constant within bounds.
            if let Some(idx) = Self::next_occupied(self.occ[0], rel0) {
                self.cur_slot = (self.cur_slot & !63) + u64::from(idx);
                // lint:allow(panic-path): constant index 0 < LEVELS.
                self.occ[0] &= !(1u64 << idx);
                // lint:allow(panic-path): idx is a bit position in a u64
                // mask, so < 64 = SLOTS_PER_LEVEL.
                let mut bucket = std::mem::take(&mut self.slots[idx as usize]);
                let before = bucket.len();
                bucket.retain(|e| !dead(&e.payload));
                self.len -= before - bucket.len();
                // `cur` is empty here, so the whole bucket heapifies in
                // O(n) instead of n log n pushes. The spent current-slot
                // buffer is recycled into the promoted slot: without the
                // swap-back every promotion dropped one grown buffer and
                // left a zero-capacity slot behind, so each slot re-grew
                // through the same doubling sequence on every wheel
                // rotation (the dominant steady-state allocation source).
                // lint:allow(alloc-in-datapath): BinaryHeap::from(Vec) is an
                // in-place heapify reusing the bucket's allocation.
                let spent = std::mem::replace(&mut self.cur, BinaryHeap::from(bucket));
                // lint:allow(panic-path): same idx bound as the take above.
                self.slots[idx as usize] = spent.into_vec();
                // If the whole bucket was dead, keep advancing.
                continue;
            }
            // Level 0 exhausted: cascade the earliest occupied slot of the
            // lowest occupied level. Every entry there precedes everything
            // at coarser levels, because blocks are 64-aligned.
            let mut cascaded = false;
            for lvl in 1..LEVELS {
                let shift = LEVEL_BITS * lvl as u32;
                let cursor_l = self.cur_slot >> shift;
                let rel = (cursor_l & 63) as u32;
                // lint:allow(panic-path): lvl ranges over 1..LEVELS, within
                // the [u64; LEVELS] occupancy array.
                if let Some(idx) = Self::next_occupied(self.occ[lvl], rel) {
                    // lint:allow(panic-path): lvl < LEVELS as above.
                    self.occ[lvl] &= !(1u64 << idx);
                    let slot_l = (cursor_l & !63) + u64::from(idx);
                    // Jump to the start of the cascaded slot: its entries
                    // re-place into strictly finer levels (or `cur`).
                    self.cur_slot = slot_l << shift;
                    // lint:allow(panic-path): lvl < LEVELS and idx < 64 (a
                    // u64 bit position), so the flat slot index is in range.
                    let flat = lvl * SLOTS_PER_LEVEL + idx as usize;
                    // Drain in place and hand the emptied buffer back to the
                    // slot: consuming the Vec here dropped its capacity, so
                    // the slot re-grew from zero on every later cascade.
                    // Re-placement cannot target this slot again (entries of
                    // a cascaded slot land at strictly finer levels, or in
                    // `cur`), so the restore never clobbers a re-place.
                    // lint:allow(panic-path): flat bounds proven above.
                    let mut bucket = std::mem::take(&mut self.slots[flat]);
                    for e in bucket.drain(..) {
                        if dead(&e.payload) {
                            self.len -= 1;
                        } else {
                            self.place(e);
                        }
                    }
                    // lint:allow(panic-path): flat bounds proven above.
                    self.slots[flat] = bucket;
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel fully drained: pull the next top-level block out of the
            // overflow heap (all in-wheel levels are empty here).
            match self.overflow.peek() {
                None => return, // only dead entries remained and were dropped
                Some(head) => {
                    // Jump straight to the earliest entry's slot so it
                    // lands in `cur` when re-placed.
                    self.cur_slot = head.time.as_nanos() >> SLOT_BITS;
                }
            }
            let block = self.cur_slot >> WHEEL_BITS;
            while let Some(head) = self.overflow.peek() {
                if (head.time.as_nanos() >> SLOT_BITS) >> WHEEL_BITS != block {
                    break;
                }
                let e = self.overflow.pop().expect("peeked entry exists");
                if dead(&e.payload) {
                    self.len -= 1;
                } else {
                    self.place(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(w: &mut TimingWheel<T>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop().map(|(t, s, _)| (t.as_nanos(), s))).collect()
    }

    #[test]
    fn single_slot_fifo() {
        let mut w = TimingWheel::new();
        for i in 0..10u64 {
            w.push(Time::from_nanos(500), i, ());
        }
        let order = drain(&mut w);
        assert_eq!(order, (0..10).map(|i| (500, i)).collect::<Vec<_>>());
    }

    #[test]
    fn cross_level_ordering() {
        // One entry per level plus overflow, pushed in reverse order.
        let times = [
            1u64 << 40,            // overflow (beyond 2^34 ns horizon)
            1 << (SLOT_BITS + 20), // level 3
            1 << (SLOT_BITS + 14), // level 2
            1 << (SLOT_BITS + 8),  // level 1
            1 << SLOT_BITS,        // level 0
            5,                     // current slot
        ];
        let mut w = TimingWheel::new();
        for (i, &t) in times.iter().enumerate() {
            w.push(Time::from_nanos(t), i as u64, ());
        }
        let order = drain(&mut w);
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(order, want);
    }

    #[test]
    fn push_behind_cursor_still_ordered() {
        // Normalisation runs the cursor ahead to slot(10_000); a later push
        // at t=200 (an earlier slot) must still pop first.
        let mut w = TimingWheel::new();
        w.push(Time::from_nanos(10_000), 0, ());
        w.push(Time::from_nanos(200), 1, ());
        assert_eq!(drain(&mut w), vec![(200, 1), (10_000, 0)]);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Deterministic pseudo-random interleaving, wheel vs. reference heap.
        let mut w = TimingWheel::new();
        let mut h = HeapCalendar::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = |range: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % range
        };
        let mut seq = 0u64;
        let mut last = 0u64;
        for _ in 0..5_000 {
            if next(3) < 2 {
                // Mix of near-future, far-future and same-instant times.
                let dt = match next(4) {
                    0 => 0,
                    1 => next(1 << 12),
                    2 => next(1 << 20),
                    _ => next(1 << 36),
                };
                let t = Time::from_nanos(last + dt);
                w.push(t, seq, ());
                h.push(t, seq, ());
                seq += 1;
            } else {
                let a = w.pop().map(|(t, s, _)| (t, s));
                let b = h.pop().map(|(t, s, _)| (t, s));
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    last = t.as_nanos();
                }
            }
            assert_eq!(w.len(), h.len());
            assert_eq!(
                w.peek().map(|(t, s, _)| (t, s)),
                h.peek().map(|(t, s, _)| (t, s))
            );
        }
        loop {
            let a = w.pop().map(|(t, s, _)| (t, s));
            let b = h.pop().map(|(t, s, _)| (t, s));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn far_future_overflow_roundtrip() {
        let mut w = TimingWheel::new();
        w.push(Time::from_nanos(u64::MAX - 1), 0, "far");
        w.push(Time::from_nanos(3), 1, "near");
        assert_eq!(w.pop().map(|(_, _, p)| p), Some("near"));
        assert_eq!(w.pop().map(|(_, _, p)| p), Some("far"));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn empty_wheel_behaviour() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.peek().is_none());
        assert!(w.pop().is_none());
    }
}
