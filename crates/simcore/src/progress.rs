//! Cross-thread progress observation for long simulation runs.
//!
//! A [`ProgressProbe`] is a pair of atomic counters — events popped and
//! virtual time reached — that a running [`EventQueue`](crate::event::EventQueue)
//! publishes into and an orchestration layer polls from another thread
//! (e.g. a heartbeat printing points-done / events-per-second to stderr).
//!
//! The probe is strictly *observational*: nothing in the simulation ever
//! reads it back, so attaching one cannot perturb event order or any other
//! simulated outcome. Publishing uses relaxed atomics — the heartbeat
//! tolerates slightly stale values, and the calendar publishes only every
//! [`PUBLISH_EVERY`] pops to keep the hot path free of contention.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How many event pops elapse between probe publications. A power of two
/// so the calendar can mask instead of dividing.
pub const PUBLISH_EVERY: u64 = 1024;

/// Maximum number of per-domain event slots a probe tracks (the partitioned
/// engine publishes one counter per domain; a fixed cap keeps the probe
/// allocation-free and lock-free).
pub const MAX_DOMAINS: usize = 16;

/// Atomic progress counters shared between a simulation thread (writer)
/// and a monitoring thread (reader).
#[derive(Debug, Default)]
pub struct ProgressProbe {
    /// Events popped from the calendar so far.
    events: AtomicU64,
    /// Virtual time reached, in nanoseconds.
    vtime_ns: AtomicU64,
    /// Number of partition domains publishing into `domain_events`
    /// (0 for a serial run).
    n_domains: AtomicUsize,
    /// Events processed per partition domain (first `n_domains` slots).
    domain_events: [AtomicU64; MAX_DOMAINS],
    /// Packet-arena slab growths since construction (post-warm-up growth
    /// means the preallocation was short).
    arena_grows: AtomicU64,
    /// Packet-arena high-water mark (peak live packets).
    arena_high_water: AtomicU64,
}

impl ProgressProbe {
    /// A probe with both counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the current totals (called from the simulation thread).
    pub fn publish(&self, events: u64, vtime_ns: u64) {
        self.events.store(events, Ordering::Relaxed);
        self.vtime_ns.store(vtime_ns, Ordering::Relaxed);
    }

    /// Events popped, as last published.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Virtual time reached in nanoseconds, as last published.
    pub fn vtime_ns(&self) -> u64 {
        self.vtime_ns.load(Ordering::Relaxed)
    }

    /// Publishes the packet-arena growth statistics (simulation thread).
    pub fn publish_arena(&self, grows: u64, high_water: u64) {
        self.arena_grows.store(grows, Ordering::Relaxed);
        self.arena_high_water.store(high_water, Ordering::Relaxed);
    }

    /// Arena slab growths, as last published.
    pub fn arena_grows(&self) -> u64 {
        self.arena_grows.load(Ordering::Relaxed)
    }

    /// Arena high-water mark, as last published.
    pub fn arena_high_water(&self) -> u64 {
        self.arena_high_water.load(Ordering::Relaxed)
    }

    /// Publishes the events-processed count of one partition domain
    /// (partitioned engine only; domains beyond [`MAX_DOMAINS`] are
    /// silently ignored in the balance report, never lost from totals —
    /// the aggregate `events` counter is published separately).
    pub fn publish_domain_events(&self, domain: usize, events: u64) {
        if let Some(slot) = self.domain_events.get(domain) {
            slot.store(events, Ordering::Relaxed);
            self.n_domains.fetch_max(domain + 1, Ordering::Relaxed);
        }
    }

    /// Per-domain event counts (empty for a serial run).
    pub fn domain_events(&self) -> Vec<u64> {
        let n = self.n_domains.load(Ordering::Relaxed).min(MAX_DOMAINS);
        self.domain_events
            .iter()
            .take(n)
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// `(max, min)` events across domains, when at least two domains have
    /// published. The ratio is the heartbeat's load-balance figure.
    pub fn domain_balance(&self) -> Option<(u64, u64)> {
        let counts = self.domain_events();
        if counts.len() < 2 {
            return None;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        Some((max, min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_and_read_back() {
        let p = ProgressProbe::new();
        assert_eq!(p.events(), 0);
        assert_eq!(p.vtime_ns(), 0);
        p.publish(1024, 5_000_000);
        assert_eq!(p.events(), 1024);
        assert_eq!(p.vtime_ns(), 5_000_000);
    }

    #[test]
    fn domain_slots_and_arena_stats() {
        let p = ProgressProbe::new();
        assert!(p.domain_balance().is_none());
        p.publish_domain_events(0, 100);
        assert!(p.domain_balance().is_none(), "one domain has no balance");
        p.publish_domain_events(1, 50);
        assert_eq!(p.domain_events(), vec![100, 50]);
        assert_eq!(p.domain_balance(), Some((100, 50)));
        // Out-of-range domains are ignored, not panicked on.
        p.publish_domain_events(MAX_DOMAINS + 3, 1);
        assert_eq!(p.domain_events().len(), 2);
        p.publish_arena(3, 512);
        assert_eq!((p.arena_grows(), p.arena_high_water()), (3, 512));
    }

    #[test]
    fn readable_across_threads() {
        let p = Arc::new(ProgressProbe::new());
        let writer = Arc::clone(&p);
        let h = std::thread::spawn(move || writer.publish(7, 9));
        h.join().expect("writer thread");
        assert_eq!((p.events(), p.vtime_ns()), (7, 9));
    }
}
