//! Cross-thread progress observation for long simulation runs.
//!
//! A [`ProgressProbe`] is a pair of atomic counters — events popped and
//! virtual time reached — that a running [`EventQueue`](crate::event::EventQueue)
//! publishes into and an orchestration layer polls from another thread
//! (e.g. a heartbeat printing points-done / events-per-second to stderr).
//!
//! The probe is strictly *observational*: nothing in the simulation ever
//! reads it back, so attaching one cannot perturb event order or any other
//! simulated outcome. Publishing uses relaxed atomics — the heartbeat
//! tolerates slightly stale values, and the calendar publishes only every
//! [`PUBLISH_EVERY`] pops to keep the hot path free of contention.

use std::sync::atomic::{AtomicU64, Ordering};

/// How many event pops elapse between probe publications. A power of two
/// so the calendar can mask instead of dividing.
pub const PUBLISH_EVERY: u64 = 1024;

/// Atomic progress counters shared between a simulation thread (writer)
/// and a monitoring thread (reader).
#[derive(Debug, Default)]
pub struct ProgressProbe {
    /// Events popped from the calendar so far.
    events: AtomicU64,
    /// Virtual time reached, in nanoseconds.
    vtime_ns: AtomicU64,
}

impl ProgressProbe {
    /// A probe with both counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the current totals (called from the simulation thread).
    pub fn publish(&self, events: u64, vtime_ns: u64) {
        self.events.store(events, Ordering::Relaxed);
        self.vtime_ns.store(vtime_ns, Ordering::Relaxed);
    }

    /// Events popped, as last published.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Virtual time reached in nanoseconds, as last published.
    pub fn vtime_ns(&self) -> u64 {
        self.vtime_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_and_read_back() {
        let p = ProgressProbe::new();
        assert_eq!(p.events(), 0);
        assert_eq!(p.vtime_ns(), 0);
        p.publish(1024, 5_000_000);
        assert_eq!(p.events(), 1024);
        assert_eq!(p.vtime_ns(), 5_000_000);
    }

    #[test]
    fn readable_across_threads() {
        let p = Arc::new(ProgressProbe::new());
        let writer = Arc::clone(&p);
        let h = std::thread::spawn(move || writer.publish(7, 9));
        h.join().expect("writer thread");
        assert_eq!((p.events(), p.vtime_ns()), (7, 9));
    }
}
