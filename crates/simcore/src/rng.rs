//! Deterministic randomness and flow hashing.
//!
//! All stochastic behaviour in the simulator (workload arrivals, flow sizes,
//! jitter) flows through [`SimRng`], a seeded splitmix/xoshiro-style PRNG, so
//! that every experiment is exactly reproducible from its seed. ECMP path
//! selection uses [`symmetric_flow_hash`], which is invariant under swapping
//! source and destination — the property ExpressPass (and hence FlexPass)
//! requires so that credit packets retrace the data path in reverse.

/// A small, fast, seedable PRNG (xoshiro256** core with splitmix64 seeding).
///
/// We implement it directly rather than going through `rand`'s trait stack in
/// the hot path; `rand` remains available for distributions in the workload
/// crate.
///
/// # Examples
///
/// ```
/// use flexpass_simcore::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator (e.g. one per host).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used here and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A 64-bit mix of an arbitrary key (used for hashing tuples).
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Symmetric per-flow hash for ECMP.
///
/// The hash is identical for `(a, b)` and `(b, a)` endpoints so forward data
/// packets and reverse credit/ACK packets of the same flow pick the same
/// up/down path through a Clos fabric (given consistent next-hop ordering).
/// `salt` distinguishes flows between the same endpoint pair.
///
/// # Examples
///
/// ```
/// use flexpass_simcore::rng::symmetric_flow_hash;
///
/// assert_eq!(symmetric_flow_hash(3, 9, 77), symmetric_flow_hash(9, 3, 77));
/// assert_ne!(symmetric_flow_hash(3, 9, 77), symmetric_flow_hash(3, 9, 78));
/// ```
pub fn symmetric_flow_hash(a: u64, b: u64, salt: u64) -> u64 {
    let lo = a.min(b);
    let hi = a.max(b);
    mix64(mix64(lo ^ 0xA076_1D64_78BD_642F) ^ mix64(hi ^ 0xE703_7ED1_A0B4_28DB) ^ mix64(salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_sampling_in_range_and_covers() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn symmetric_hash_is_symmetric() {
        for a in 0..20u64 {
            for b in 0..20u64 {
                assert_eq!(symmetric_flow_hash(a, b, 5), symmetric_flow_hash(b, a, 5));
            }
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = SimRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
