//! Units-of-measure newtypes for byte accounting.
//!
//! FlexPass's evaluation hinges on exact byte accounting: *wire* bytes
//! (frame + preamble + inter-frame gap) drive serialization delay, credit
//! pacing, RED/ECN thresholds, and shared-buffer occupancy, while *payload*
//! bytes drive flow completion and goodput. Mixing the two is a silent
//! ~5 % error that no runtime audit reliably catches. This module makes the
//! distinction a compile error:
//!
//! * [`Bytes`] — application/payload bytes (flow sizes, per-packet payload).
//! * [`WireBytes`] — on-wire bytes including all framing overhead.
//! * [`PktCount`] — a count of packets (never bytes).
//!
//! There is deliberately **no** `From`/`Into` between [`Bytes`] and
//! [`WireBytes`]; the only blessed conversions are the wire-format functions
//! in `simnet::consts` (`data_wire_bytes`, `packets_for`,
//! `payload_of_packet`), which encode the header/framing model in one place.
//!
//! Arithmetic is checked: `+` / `-` panic on overflow or underflow instead
//! of wrapping, so byte-conservation bugs surface at the faulty operation
//! rather than as corrupted counters thousands of events later. Escaping to
//! raw integers is explicit (`get`) and crossing to floats goes through the
//! contained `as_f64` / `from_f64` pair so the `raw-cast` lint can pin every
//! remaining numeric cast to this file and `simcore::time`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use crate::time::{Rate, TimeDelta};

/// Application (payload) bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(u64);

/// On-wire bytes: frame, preamble and inter-frame gap included.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireBytes(u64);

/// A count of packets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PktCount(u32);

macro_rules! byte_newtype {
    ($ty:ident, $what:expr) => {
        impl $ty {
            /// Zero.
            pub const ZERO: $ty = $ty(0);
            /// Largest representable value (used for "uncapped" sentinels).
            pub const MAX: $ty = $ty(u64::MAX);

            /// Wraps a raw count.
            pub const fn new(n: u64) -> $ty {
                $ty(n)
            }

            /// Unwraps to the raw count (explicit escape hatch).
            pub const fn get(self) -> u64 {
                self.0
            }

            /// True when zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Checked addition; `None` on overflow.
            pub const fn checked_add(self, rhs: $ty) -> Option<$ty> {
                match self.0.checked_add(rhs.0) {
                    Some(n) => Some($ty(n)),
                    None => None,
                }
            }

            /// Checked subtraction; `None` on underflow.
            pub const fn checked_sub(self, rhs: $ty) -> Option<$ty> {
                match self.0.checked_sub(rhs.0) {
                    Some(n) => Some($ty(n)),
                    None => None,
                }
            }

            /// Subtraction clamped at zero.
            pub const fn saturating_sub(self, rhs: $ty) -> $ty {
                $ty(self.0.saturating_sub(rhs.0))
            }

            /// Addition clamped at `MAX`.
            pub const fn saturating_add(self, rhs: $ty) -> $ty {
                $ty(self.0.saturating_add(rhs.0))
            }

            /// Ceiling division by `rhs`, e.g. packetization.
            pub const fn div_ceil(self, rhs: $ty) -> u64 {
                self.0.div_ceil(rhs.0)
            }

            /// Lossy conversion to `f64` for reporting / weighted math.
            /// Exact for values below 2^53 — far beyond any simulated
            /// buffer or flow size.
            pub fn as_f64(self) -> f64 {
                self.0 as f64 // lint:allow(raw-cast): the one contained widening
            }

            /// Converts back from a non-negative finite `f64` (truncating),
            /// for threshold math that is specified as a float fraction.
            ///
            /// # Panics
            /// On NaN, infinite, or negative input.
            pub fn from_f64(v: f64) -> $ty {
                assert!(v.is_finite() && v >= 0.0, "{} from invalid f64 {v}", $what);
                $ty(v as u64) // lint:allow(raw-cast): contained narrowing
            }
        }

        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                match self.checked_add(rhs) {
                    Some(n) => n,
                    // lint:allow(panic-path): checked-arithmetic contract; overflow is a caller bug
                    None => panic!("{} overflow: {} + {}", $what, self.0, rhs.0),
                }
            }
        }

        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                match self.checked_sub(rhs) {
                    Some(n) => n,
                    // lint:allow(panic-path): checked-arithmetic contract; overflow is a caller bug
                    None => panic!("{} underflow: {} - {}", $what, self.0, rhs.0),
                }
            }
        }

        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                *self = *self - rhs;
            }
        }

        impl Mul<u64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: u64) -> $ty {
                match self.0.checked_mul(rhs) {
                    Some(n) => $ty(n),
                    // lint:allow(panic-path): checked-arithmetic contract; overflow is a caller bug
                    None => panic!("{} overflow: {} * {}", $what, self.0, rhs),
                }
            }
        }

        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty::ZERO, |a, b| a + b)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} B", self.0)
            }
        }
    };
}

byte_newtype!(Bytes, "Bytes");
byte_newtype!(WireBytes, "WireBytes");

impl PktCount {
    /// Zero packets.
    pub const ZERO: PktCount = PktCount(0);
    /// One packet.
    pub const ONE: PktCount = PktCount(1);

    /// Wraps a raw count.
    pub const fn new(n: u32) -> PktCount {
        PktCount(n)
    }

    /// Unwraps to the raw count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The count as a `usize` (buffer sizing).
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: PktCount) -> Option<PktCount> {
        match self.0.checked_add(rhs.0) {
            Some(n) => Some(PktCount(n)),
            None => None,
        }
    }

    /// Subtraction clamped at zero.
    pub const fn saturating_sub(self, rhs: PktCount) -> PktCount {
        PktCount(self.0.saturating_sub(rhs.0))
    }
}

impl Add for PktCount {
    type Output = PktCount;
    fn add(self, rhs: PktCount) -> PktCount {
        match self.checked_add(rhs) {
            Some(n) => n,
            // lint:allow(panic-path): checked-arithmetic contract; overflow is a caller bug
            None => panic!("PktCount overflow: {} + {}", self.0, rhs.0),
        }
    }
}

impl fmt::Display for PktCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pkts", self.0)
    }
}

/// Multiplying a packet count by a per-packet wire size yields wire bytes.
impl Mul<WireBytes> for PktCount {
    type Output = WireBytes;
    fn mul(self, rhs: WireBytes) -> WireBytes {
        rhs * u64::from(self.0)
    }
}

/// Multiplying a packet count by a per-packet payload yields payload bytes.
impl Mul<Bytes> for PktCount {
    type Output = Bytes;
    fn mul(self, rhs: Bytes) -> Bytes {
        rhs * u64::from(self.0)
    }
}

// Typed entry points into rate arithmetic. These live here (same crate as
// `Rate`) so the untyped `Rate::serialize(u64)` / `Rate::bytes_over` can
// eventually become private plumbing.
impl Rate {
    /// Serialization delay of `w` on-wire bytes at this rate.
    pub fn serialize_wire(self, w: WireBytes) -> TimeDelta {
        self.serialize(w.get())
    }

    /// On-wire bytes transferable in `d` at this rate (floor).
    pub fn wire_bytes_over(self, d: TimeDelta) -> WireBytes {
        WireBytes::new(self.bytes_over(d))
    }

    /// Payload bytes transferable in `d` at this rate (floor).
    pub fn payload_bytes_over(self, d: TimeDelta) -> Bytes {
        Bytes::new(self.bytes_over(d))
    }
}

#[cfg(test)]
// Test expectations compare floats that are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn checked_arithmetic_roundtrip() {
        let a = Bytes::new(1460);
        let b = Bytes::new(40);
        assert_eq!((a + b).get(), 1500);
        assert_eq!((a - b).get(), 1420);
        assert_eq!(a.saturating_sub(a + b), Bytes::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(Bytes::MAX.checked_add(Bytes::new(1)), None);
        let mut c = WireBytes::new(84);
        c += WireBytes::new(1538);
        c -= WireBytes::new(84);
        assert_eq!(c, WireBytes::new(1538));
    }

    #[test]
    #[should_panic(expected = "Bytes underflow")]
    fn sub_underflow_panics() {
        let _ = Bytes::new(1) - Bytes::new(2);
    }

    #[test]
    #[should_panic(expected = "WireBytes overflow")]
    fn add_overflow_panics() {
        let _ = WireBytes::MAX + WireBytes::new(1);
    }

    #[test]
    fn pkt_count_scales_bytes() {
        assert_eq!(
            PktCount::new(3) * WireBytes::new(1538),
            WireBytes::new(4614)
        );
        assert_eq!(PktCount::new(2) * Bytes::new(1460), Bytes::new(2920));
        assert_eq!((PktCount::ONE + PktCount::new(4)).get(), 5);
        assert_eq!(
            PktCount::new(2).saturating_sub(PktCount::new(5)),
            PktCount::ZERO
        );
    }

    #[test]
    fn sum_and_display() {
        let total: Bytes = [1u64, 2, 3].into_iter().map(Bytes::new).sum();
        assert_eq!(total, Bytes::new(6));
        assert_eq!(format!("{}", WireBytes::new(84)), "84 B");
        assert_eq!(format!("{}", PktCount::new(7)), "7 pkts");
    }

    #[test]
    fn float_crossings_are_contained() {
        assert_eq!(Bytes::new(1500).as_f64(), 1500.0);
        assert_eq!(WireBytes::from_f64(1537.9), WireBytes::new(1537));
        assert_eq!(Bytes::from_f64(0.0), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "from invalid f64")]
    fn from_f64_rejects_negative() {
        let _ = WireBytes::from_f64(-1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// serialize/bytes_over round-trip: sending the serialization time
        /// of `w` wire bytes back through the rate recovers at least `w`
        /// (ceiling delay) but never a full extra byte's worth of slack
        /// beyond what one delay quantum can carry.
        #[test]
        fn rate_roundtrip_recovers_wire_bytes(
            bps in 1_000u64..400_000_000_000,
            raw in 1u64..10_000_000,
        ) {
            let rate = Rate::from_bps(bps);
            let w = WireBytes::new(raw);
            let d = rate.serialize_wire(w);
            let back = rate.wire_bytes_over(d);
            prop_assert!(back >= w, "{back} < {w} at {bps} bps");
            // The ceiling in serialize overshoots by < 1 ns of bytes.
            let slack = rate.wire_bytes_over(TimeDelta::nanos(1));
            prop_assert!(back.get() <= w.get() + slack.get().max(1));
        }

        /// serialize is monotone in the byte count: more bytes never take
        /// less time, expressed in the typed Bytes domain.
        #[test]
        fn rate_serialize_monotone_in_bytes(
            bps in 1_000u64..400_000_000_000,
            a in 0u64..5_000_000,
            extra in 0u64..5_000_000,
        ) {
            let rate = Rate::from_bps(bps);
            let small = Bytes::new(a);
            let large = small + Bytes::new(extra);
            prop_assert!(
                rate.serialize(large.get()) >= rate.serialize(small.get())
            );
        }

        /// bytes_over is monotone in the interval and additive up to one
        /// quantum: splitting an interval never yields more bytes.
        #[test]
        fn rate_bytes_over_monotone(
            bps in 1_000u64..400_000_000_000,
            ns_a in 0u64..1_000_000_000,
            ns_b in 0u64..1_000_000_000,
        ) {
            let rate = Rate::from_bps(bps);
            let whole = rate.payload_bytes_over(TimeDelta::nanos(ns_a + ns_b));
            let parts = rate.payload_bytes_over(TimeDelta::nanos(ns_a))
                + rate.payload_bytes_over(TimeDelta::nanos(ns_b));
            prop_assert!(parts <= whole);
            prop_assert!(whole.get() - parts.get() <= 2); // two floor losses
        }
    }
}
