//! Virtual time, durations, and link-rate arithmetic.
//!
//! Time is kept as an absolute number of nanoseconds since the start of the
//! simulation in a `u64`, which covers ~584 years of virtual time — far more
//! than any experiment here needs. Rates are kept in bits per second.
//!
//! Serialization delays are computed with rounding-up integer arithmetic so
//! that a packet never finishes "early"; this keeps byte conservation checks
//! exact in tests.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

/// A transmission rate in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`Time::MAX`].
    pub fn saturating_add(self, d: TimeDelta) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl TimeDelta {
    /// A zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest representable span.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Builds a span from raw nanoseconds.
    pub const fn nanos(ns: u64) -> Self {
        TimeDelta(ns)
    }

    /// Builds a span from microseconds.
    pub const fn micros(us: u64) -> Self {
        TimeDelta(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        TimeDelta(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        TimeDelta((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by a non-negative float factor, rounding.
    pub fn mul_f64(self, f: f64) -> TimeDelta {
        assert!(f.is_finite() && f >= 0.0, "invalid factor: {f}");
        TimeDelta((self.0 as f64 * f).round() as u64)
    }
}

impl Rate {
    /// A zero rate. Dividing a size by it yields [`TimeDelta::MAX`].
    pub const ZERO: Rate = Rate(0);

    /// Builds a rate from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Builds a rate from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Builds a rate from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Raw bits-per-second value.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in (fractional) gigabits per second.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time needed to serialize `bytes` at this rate, rounded up to the next
    /// nanosecond. A zero rate yields [`TimeDelta::MAX`].
    pub fn serialize(self, bytes: u64) -> TimeDelta {
        if self.0 == 0 {
            return TimeDelta::MAX;
        }
        let bits = (bytes as u128) * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        TimeDelta(ns.min(u64::MAX as u128) as u64)
    }

    /// Number of whole bytes this rate delivers over `d`.
    pub fn bytes_over(self, d: TimeDelta) -> u64 {
        let bits = (self.0 as u128) * (d.0 as u128) / 1_000_000_000;
        (bits / 8).min(u64::MAX as u128) as u64
    }

    /// Scales the rate by a non-negative factor (e.g. a DWRR weight), rounding.
    pub fn scale(self, f: f64) -> Rate {
        assert!(f.is_finite() && f >= 0.0, "invalid rate scale: {f}");
        Rate((self.0 as f64 * f).round() as u64)
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    fn sub(self, rhs: Time) -> TimeDelta {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        TimeDelta(self.0 - rhs.0)
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bps", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_rounds_up() {
        // 1500 bytes at 10 Gbps = 1200 ns exactly.
        assert_eq!(Rate::from_gbps(10).serialize(1500), TimeDelta::nanos(1_200));
        // 1 byte at 3 bps: 8/3 s -> rounds up.
        assert_eq!(
            Rate::from_bps(3).serialize(1),
            TimeDelta::nanos(2_666_666_667)
        );
    }

    #[test]
    fn serialize_zero_rate_is_infinite() {
        assert_eq!(Rate::ZERO.serialize(1), TimeDelta::MAX);
    }

    #[test]
    fn bytes_over_inverts_serialize_approximately() {
        let r = Rate::from_gbps(40);
        let d = r.serialize(1_000_000);
        let b = r.bytes_over(d);
        assert!((1_000_000..=1_000_001).contains(&b), "bytes_over = {b}");
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_micros(5) + TimeDelta::nanos(10);
        assert_eq!(t.as_nanos(), 5_010);
        assert_eq!(t - Time::from_micros(5), TimeDelta::nanos(10));
        assert_eq!(
            Time::from_micros(1).saturating_since(Time::from_micros(2)),
            TimeDelta::ZERO
        );
    }

    #[test]
    fn rate_scale() {
        assert_eq!(Rate::from_gbps(10).scale(0.5), Rate::from_gbps(5));
        assert_eq!(Rate::from_gbps(40).scale(0.0546).as_bps(), 2_184_000_000);
    }

    #[test]
    fn delta_constructors_agree() {
        assert_eq!(TimeDelta::micros(1), TimeDelta::nanos(1_000));
        assert_eq!(TimeDelta::millis(1), TimeDelta::micros(1_000));
        assert_eq!(TimeDelta::secs(1), TimeDelta::millis(1_000));
        assert_eq!(TimeDelta::from_secs_f64(0.5), TimeDelta::millis(500));
    }

    #[test]
    fn delta_mul_div() {
        assert_eq!(TimeDelta::micros(3) * 2, TimeDelta::micros(6));
        assert_eq!(TimeDelta::micros(3) / 3, TimeDelta::micros(1));
        assert_eq!(TimeDelta::micros(4).mul_f64(1.5), TimeDelta::micros(6));
    }
}
