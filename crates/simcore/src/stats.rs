//! Statistics kernels shared by the metrics and experiment crates.

use crate::time::{Time, TimeDelta};

/// Online mean / variance / min / max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use flexpass_simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.stddev(), 2.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over a retained sample set.
///
/// Samples are kept and sorted on demand; experiments here record at most a
/// few hundred thousand flows, so exactness is affordable and avoids sketch
/// error in tail metrics (the paper's headline numbers are 99th percentiles).
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank on the sorted
    /// samples. Returns 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Median.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample (0 when empty).
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().expect("non-empty")
    }

    /// Appends every sample of `other`. Quantiles, mean, and max over the
    /// merged set are identical to pooling the raw samples (the set is
    /// re-sorted on demand), so per-domain sample sets from a partitioned
    /// run merge without approximation.
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Population standard deviation (0 when empty).
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }
}

/// A fixed-bin time series accumulating a value per bin (e.g. bytes per ms).
///
/// Used for throughput-vs-time plots (Figures 1, 7, 9) and starvation-time
/// accounting (Figure 9c).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bin: TimeDelta,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: TimeDelta) -> Self {
        assert!(bin > TimeDelta::ZERO, "zero bin width");
        TimeSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Adds `value` to the bin containing instant `t`.
    pub fn add(&mut self, t: Time, value: f64) {
        // lint:allow(raw-cast): ns / ns is a dimensionless bin index
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Bin width.
    pub fn bin_width(&self) -> TimeDelta {
        self.bin
    }

    /// All bins in time order (possibly empty trailing bins are absent).
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Iterates `(bin start time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        let w = self.bin.as_nanos();
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &v)| (Time::from_nanos(i as u64 * w), v))
    }

    /// Adds `other`'s bins elementwise, extending this series if `other`
    /// is longer. Exact for the integral payload-byte values recorded per
    /// bin, so per-domain series from a partitioned run sum to the serial
    /// series bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.bin, other.bin, "time-series bin width mismatch");
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
    }

    /// Fraction of bins in `[from, to)` whose value is below `threshold`.
    /// Returns 0 if the window contains no bins.
    pub fn fraction_below(&self, threshold: f64, from: Time, to: Time) -> f64 {
        let w = self.bin.as_nanos();
        // lint:allow(raw-cast): ns / ns is a dimensionless bin index
        let lo = (from.as_nanos() / w) as usize;
        // lint:allow(raw-cast): ns / ns is a dimensionless bin index
        let hi = to.as_nanos().div_ceil(w) as usize;
        let hi = hi.min(self.bins.len());
        if lo >= hi {
            return 0.0;
        }
        let below = self.bins[lo..hi].iter().filter(|&&v| v < threshold).count();
        below as f64 / (hi - lo) as f64
    }
}

/// Converts bytes accumulated in a bin to the average rate in Gbps.
/// Reporting-only: the result never feeds back into simulation time.
pub fn bytes_to_gbps(bytes: f64, bin: TimeDelta) -> f64 {
    bytes * 8.0 / bin.as_secs_f64() / 1e9 // lint:allow(float-time)
}

#[cfg(test)]
// Test expectations compare floats that are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.variance(), 1.0);
    }

    #[test]
    fn online_stats_merge_matches_pooled() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in data.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.push(i as f64);
        }
        assert_eq!(p.quantile(0.99), 99.0);
        assert_eq!(p.quantile(1.0), 100.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.p50(), 50.0);
        assert_eq!(p.mean(), 50.5);
        assert_eq!(p.max(), 100.0);
    }

    #[test]
    fn percentiles_empty_is_zero() {
        let mut p = Percentiles::new();
        assert_eq!(p.p99(), 0.0);
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.stddev(), 0.0);
    }

    #[test]
    fn timeseries_bins_and_fraction() {
        let mut ts = TimeSeries::new(TimeDelta::millis(1));
        ts.add(Time::from_micros(100), 5.0);
        ts.add(Time::from_micros(900), 5.0);
        ts.add(Time::from_micros(1500), 2.0);
        assert_eq!(ts.bins(), &[10.0, 2.0]);
        let f = ts.fraction_below(5.0, Time::ZERO, Time::from_millis(2));
        assert_eq!(f, 0.5);
    }

    #[test]
    fn timeseries_iter_times() {
        let mut ts = TimeSeries::new(TimeDelta::millis(2));
        ts.add(Time::from_millis(3), 1.0);
        let pts: Vec<_> = ts.iter().collect();
        assert_eq!(pts[1], (Time::from_millis(2), 1.0));
    }

    #[test]
    fn percentiles_merge_matches_pooled() {
        let mut whole = Percentiles::new();
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        for i in 1..=100 {
            let x = ((i * 37) % 101) as f64;
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.p99(), whole.p99());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn timeseries_merge_sums_elementwise() {
        let mut a = TimeSeries::new(TimeDelta::millis(1));
        let mut b = TimeSeries::new(TimeDelta::millis(1));
        a.add(Time::from_micros(100), 5.0);
        b.add(Time::from_micros(200), 2.0);
        b.add(Time::from_micros(1500), 4.0);
        a.merge(&b);
        assert_eq!(a.bins(), &[7.0, 4.0]);
    }

    #[test]
    fn bytes_to_gbps_conversion() {
        // 1.25 MB in 1 ms = 10 Gbps.
        assert!((bytes_to_gbps(1_250_000.0, TimeDelta::millis(1)) - 10.0).abs() < 1e-9);
    }
}
