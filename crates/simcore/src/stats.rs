//! Statistics kernels shared by the metrics and experiment crates.

use crate::time::{Time, TimeDelta};

/// Online mean / variance / min / max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use flexpass_simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.stddev(), 2.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over a retained sample set.
///
/// Samples are kept and sorted on demand; experiments here record at most a
/// few hundred thousand flows, so exactness is affordable and avoids sketch
/// error in tail metrics (the paper's headline numbers are 99th percentiles).
/// Datacenter-scale runs should use [`FctSketch`] instead, which holds
/// bounded memory per metric regardless of flow count.
///
/// Non-finite samples (NaN, ±inf) are rejected at [`Percentiles::push`] and
/// counted ([`Percentiles::rejected_non_finite`]) instead of poisoning the
/// sample set — a NaN used to abort the whole run at report time, deep in
/// the sort comparator, long after the bad sample was recorded.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
    non_finite: u64,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
            non_finite: 0,
        }
    }

    /// Adds one sample. Non-finite values are counted and discarded rather
    /// than recorded (see [`Percentiles::rejected_non_finite`]).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Non-finite samples rejected at [`Percentiles::push`]. Nonzero means
    /// an upstream metric produced NaN/inf — audit-visible, never fatal.
    pub fn rejected_non_finite(&self) -> u64 {
        self.non_finite
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp is a belt-and-braces total order: push() already
            // keeps non-finite values out, so this can never panic.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank on the sorted
    /// samples. Returns 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Median.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample (0 when empty).
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().expect("non-empty")
    }

    /// Appends every sample of `other`. Quantiles, mean, and max over the
    /// merged set are identical to pooling the raw samples (the set is
    /// re-sorted on demand), so per-domain sample sets from a partitioned
    /// run merge without approximation.
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.non_finite += other.non_finite;
    }

    /// Population standard deviation (0 when empty).
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }
}

/// Sub-buckets per octave in [`FctSketch`] (64 = 6 mantissa bits).
const SKETCH_SUB_BITS: u32 = 6;
const SKETCH_SUBS: usize = 1 << SKETCH_SUB_BITS;
/// Smallest representable octave: FCTs below 2^-40 s (~1 ps) clamp into
/// the first bin. Simulated FCTs are at least a serialization delay, so
/// the clamp is unreachable in practice.
const SKETCH_MIN_EXP: i32 = -40;
/// Largest representable octave: FCTs of 2^12 s (~68 min) and above clamp
/// into the last bin.
const SKETCH_MAX_EXP: i32 = 12;
const SKETCH_BINS: usize = ((SKETCH_MAX_EXP - SKETCH_MIN_EXP) as usize) * SKETCH_SUBS;

/// Bounded-memory FCT quantile sketch: a log-spaced fixed-bin histogram
/// with exact count / mean / min / max / variance on the side.
///
/// Each power-of-two octave of the sample range is split into
/// [`SKETCH_SUBS`] linear sub-buckets, HDR-histogram style. Bucketing
/// extracts the exponent and top mantissa bits of the `f64` directly — no
/// floating-point log, so the bin index is platform-independent and exact.
/// A bucket spans a relative width of `1/64`, so any quantile read from a
/// bucket midpoint is within [`FctSketch::RELATIVE_ERROR`] of the exact
/// order statistic; count, mean, min, max, and stddev are exact because
/// they come from an embedded [`OnlineStats`], not the bins.
///
/// Memory is a fixed ~26 kB per sketch regardless of sample count — the
/// property that lets a streaming recorder survive datacenter-scale runs
/// where retaining per-flow samples is O(flows).
///
/// Non-finite samples are rejected and counted
/// ([`FctSketch::rejected_non_finite`]), mirroring [`Percentiles`].
///
/// [`FctSketch::merge`] adds bin counts integer-exactly and merges the
/// side statistics with the same pairwise update as
/// [`OnlineStats::merge`]; merging per-domain sketches in a fixed domain
/// order is therefore deterministic, and quantiles over the merged bins
/// are identical to sketching the pooled samples.
#[derive(Clone, Debug)]
pub struct FctSketch {
    bins: Box<[u64; SKETCH_BINS]>,
    stats: OnlineStats,
    non_finite: u64,
}

impl Default for FctSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl FctSketch {
    /// Worst-case relative error of any quantile against the exact order
    /// statistic: one bucket spans `[L, L * (1 + 1/64))`, and quantiles
    /// report the bucket midpoint, so the true value is within half a
    /// bucket width. Stated as the full bucket width for a safe bound.
    pub const RELATIVE_ERROR: f64 = 1.0 / SKETCH_SUBS as f64;

    /// An empty sketch.
    pub fn new() -> Self {
        FctSketch {
            bins: Box::new([0u64; SKETCH_BINS]),
            stats: OnlineStats::new(),
            non_finite: 0,
        }
    }

    /// Bin index of a finite sample. Zero and negative values clamp into
    /// the first bin; out-of-range magnitudes clamp into the end bins.
    fn bucket_of(x: f64) -> usize {
        if x <= 0.0 {
            return 0;
        }
        let bits = x.to_bits();
        // lint:allow(raw-cast): IEEE-754 exponent field extraction.
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < SKETCH_MIN_EXP {
            return 0;
        }
        if exp >= SKETCH_MAX_EXP {
            return SKETCH_BINS - 1;
        }
        // lint:allow(raw-cast): top mantissa bits select the sub-bucket.
        let sub = ((bits >> (52 - SKETCH_SUB_BITS)) & (SKETCH_SUBS as u64 - 1)) as usize;
        (exp - SKETCH_MIN_EXP) as usize * SKETCH_SUBS + sub
    }

    /// Exact power of two via bit construction (`k` within the sketch's
    /// exponent range): deterministic on every platform, no libm.
    fn pow2(k: i32) -> f64 {
        debug_assert!((-1022..=1023).contains(&k));
        f64::from_bits(((k + 1023) as u64) << 52)
    }

    /// Midpoint of a bin's value range.
    fn bin_midpoint(bin: usize) -> f64 {
        let exp = SKETCH_MIN_EXP + (bin / SKETCH_SUBS) as i32;
        let sub = (bin % SKETCH_SUBS) as f64;
        let base = Self::pow2(exp);
        let lo = base * (1.0 + sub / SKETCH_SUBS as f64);
        let hi = base * (1.0 + (sub + 1.0) / SKETCH_SUBS as f64);
        0.5 * (lo + hi)
    }

    /// Adds one sample. Non-finite values are counted and discarded.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.stats.push(x);
        self.bins[Self::bucket_of(x)] += 1;
    }

    /// Number of recorded samples (exact).
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.count() == 0
    }

    /// Non-finite samples rejected at [`FctSketch::push`].
    pub fn rejected_non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Sample mean, exact (0 when empty).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Smallest sample, exact (0 when empty).
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Largest sample, exact (0 when empty).
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Population standard deviation, exact (0 when empty).
    pub fn stddev(&self) -> f64 {
        self.stats.stddev()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), nearest-rank over the binned
    /// counts — same rank convention as [`Percentiles::quantile`]. The
    /// result is the selected bucket's midpoint clamped into the exact
    /// `[min, max]` observed range, so it is within
    /// [`FctSketch::RELATIVE_ERROR`] of the exact order statistic.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.stats.count();
        if n == 0 {
            return 0.0;
        }
        // lint:allow(raw-cast): nearest-rank index from a fraction.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        // lint:allow(unordered-iteration): fixed-size array, index order.
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bin_midpoint(i).clamp(self.stats.min(), self.stats.max());
            }
        }
        self.stats.max()
    }

    /// 99th percentile (within [`FctSketch::RELATIVE_ERROR`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Median (within [`FctSketch::RELATIVE_ERROR`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Folds another sketch into this one: bin counts add exactly, side
    /// statistics merge as [`OnlineStats::merge`]. Merging per-domain
    /// sketches in ascending domain order is bit-deterministic.
    pub fn merge(&mut self, other: &FctSketch) {
        // lint:allow(unordered-iteration): fixed-size arrays, index order.
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
        self.stats.merge(&other.stats);
        self.non_finite += other.non_finite;
    }
}

/// A fixed-bin time series accumulating a value per bin (e.g. bytes per ms).
///
/// Used for throughput-vs-time plots (Figures 1, 7, 9) and starvation-time
/// accounting (Figure 9c).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bin: TimeDelta,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: TimeDelta) -> Self {
        assert!(bin > TimeDelta::ZERO, "zero bin width");
        TimeSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Adds `value` to the bin containing instant `t`.
    pub fn add(&mut self, t: Time, value: f64) {
        // lint:allow(raw-cast): ns / ns is a dimensionless bin index
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Bin width.
    pub fn bin_width(&self) -> TimeDelta {
        self.bin
    }

    /// All bins in time order (possibly empty trailing bins are absent).
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Iterates `(bin start time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        let w = self.bin.as_nanos();
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &v)| (Time::from_nanos(i as u64 * w), v))
    }

    /// Adds `other`'s bins elementwise, extending this series if `other`
    /// is longer. Exact for the integral payload-byte values recorded per
    /// bin, so per-domain series from a partitioned run sum to the serial
    /// series bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.bin, other.bin, "time-series bin width mismatch");
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
    }

    /// Fraction of bins in `[from, to)` whose value is below `threshold`.
    /// Returns 0 if the window contains no bins.
    pub fn fraction_below(&self, threshold: f64, from: Time, to: Time) -> f64 {
        let w = self.bin.as_nanos();
        // lint:allow(raw-cast): ns / ns is a dimensionless bin index
        let lo = (from.as_nanos() / w) as usize;
        // lint:allow(raw-cast): ns / ns is a dimensionless bin index
        let hi = to.as_nanos().div_ceil(w) as usize;
        let hi = hi.min(self.bins.len());
        if lo >= hi {
            return 0.0;
        }
        let below = self.bins[lo..hi].iter().filter(|&&v| v < threshold).count();
        below as f64 / (hi - lo) as f64
    }
}

/// Converts bytes accumulated in a bin to the average rate in Gbps.
/// Reporting-only: the result never feeds back into simulation time.
pub fn bytes_to_gbps(bytes: f64, bin: TimeDelta) -> f64 {
    bytes * 8.0 / bin.as_secs_f64() / 1e9 // lint:allow(float-time)
}

#[cfg(test)]
// Test expectations compare floats that are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.variance(), 1.0);
    }

    #[test]
    fn online_stats_merge_matches_pooled() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in data.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.push(i as f64);
        }
        assert_eq!(p.quantile(0.99), 99.0);
        assert_eq!(p.quantile(1.0), 100.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.p50(), 50.0);
        assert_eq!(p.mean(), 50.5);
        assert_eq!(p.max(), 100.0);
    }

    #[test]
    fn percentiles_empty_is_zero() {
        let mut p = Percentiles::new();
        assert_eq!(p.p99(), 0.0);
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.stddev(), 0.0);
    }

    #[test]
    fn timeseries_bins_and_fraction() {
        let mut ts = TimeSeries::new(TimeDelta::millis(1));
        ts.add(Time::from_micros(100), 5.0);
        ts.add(Time::from_micros(900), 5.0);
        ts.add(Time::from_micros(1500), 2.0);
        assert_eq!(ts.bins(), &[10.0, 2.0]);
        let f = ts.fraction_below(5.0, Time::ZERO, Time::from_millis(2));
        assert_eq!(f, 0.5);
    }

    #[test]
    fn timeseries_iter_times() {
        let mut ts = TimeSeries::new(TimeDelta::millis(2));
        ts.add(Time::from_millis(3), 1.0);
        let pts: Vec<_> = ts.iter().collect();
        assert_eq!(pts[1], (Time::from_millis(2), 1.0));
    }

    #[test]
    fn percentiles_merge_matches_pooled() {
        let mut whole = Percentiles::new();
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        for i in 1..=100 {
            let x = ((i * 37) % 101) as f64;
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.p99(), whole.p99());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn timeseries_merge_sums_elementwise() {
        let mut a = TimeSeries::new(TimeDelta::millis(1));
        let mut b = TimeSeries::new(TimeDelta::millis(1));
        a.add(Time::from_micros(100), 5.0);
        b.add(Time::from_micros(200), 2.0);
        b.add(Time::from_micros(1500), 4.0);
        a.merge(&b);
        assert_eq!(a.bins(), &[7.0, 4.0]);
    }

    #[test]
    fn bytes_to_gbps_conversion() {
        // 1.25 MB in 1 ms = 10 Gbps.
        assert!((bytes_to_gbps(1_250_000.0, TimeDelta::millis(1)) - 10.0).abs() < 1e-9);
    }

    /// Regression (NaN panic path): a NaN pushed into a Percentiles set
    /// must not abort at report time; it is rejected and counted.
    #[test]
    fn percentiles_reject_non_finite_without_panicking() {
        let mut p = Percentiles::new();
        p.push(1.0);
        p.push(f64::NAN);
        p.push(f64::INFINITY);
        p.push(f64::NEG_INFINITY);
        p.push(2.0);
        assert_eq!(p.count(), 2);
        assert_eq!(p.rejected_non_finite(), 3);
        // The panic used to fire here, inside the sort comparator.
        assert_eq!(p.p99(), 2.0);
        assert_eq!(p.p50(), 1.0);
        let mut merged = Percentiles::new();
        merged.merge(&p);
        assert_eq!(merged.rejected_non_finite(), 3);
    }

    /// Deterministic pseudo-random FCT-like samples spanning ~6 orders of
    /// magnitude (microseconds to seconds), heavy-tailed like a flow-size
    /// mix.
    fn fct_samples(n: u64, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                // xorshift64*: cheap, deterministic, good enough spread.
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u =
                    (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
                // Map uniform [0,1) to log-uniform [1e-6, 1e0) seconds.
                1e-6 * 1e6f64.powf(u)
            })
            .collect()
    }

    #[test]
    fn sketch_quantiles_within_documented_error() {
        let data = fct_samples(50_000, 42);
        let mut sketch = FctSketch::new();
        let mut exact = Percentiles::new();
        for &x in &data {
            sketch.push(x);
            exact.push(x);
        }
        assert_eq!(sketch.count(), 50_000);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let e = exact.quantile(q);
            let s = sketch.quantile(q);
            assert!(
                (s - e).abs() <= FctSketch::RELATIVE_ERROR * e,
                "q{q}: sketch {s} vs exact {e}"
            );
        }
        // Count/mean/min/max/stddev come from the exact side statistics,
        // not the bins (mean/stddev via Welford, so equal to the naive
        // sum only up to accumulation rounding).
        assert!((sketch.mean() - exact.mean()).abs() < 1e-12 * exact.mean().abs().max(1.0));
        assert_eq!(sketch.max(), exact.max());
        assert_eq!(
            sketch.min(),
            data.iter().copied().fold(f64::INFINITY, f64::min)
        );
        assert!((sketch.stddev() - exact.stddev()).abs() < 1e-9 * exact.stddev().max(1.0));
    }

    #[test]
    fn sketch_merge_is_deterministic_and_matches_pooled() {
        let data = fct_samples(10_000, 7);
        let mut pooled = FctSketch::new();
        let mut parts: Vec<FctSketch> = (0..4).map(|_| FctSketch::new()).collect();
        for (i, &x) in data.iter().enumerate() {
            pooled.push(x);
            parts[i % 4].push(x);
        }
        let merge_all = |parts: &[FctSketch]| {
            let mut m = FctSketch::new();
            for p in parts {
                m.merge(p);
            }
            m
        };
        let a = merge_all(&parts);
        let b = merge_all(&parts);
        // Bit-identical across repeated merges in the same order.
        for q in [0.5, 0.99] {
            assert_eq!(a.quantile(q).to_bits(), b.quantile(q).to_bits());
        }
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        // Bin counts of the merged sketch equal the pooled sketch exactly,
        // so quantiles agree bit-for-bit with a single-recorder run.
        assert_eq!(a.count(), pooled.count());
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(a.quantile(q).to_bits(), pooled.quantile(q).to_bits());
        }
        assert_eq!(a.max(), pooled.max());
    }

    #[test]
    fn sketch_rejects_non_finite_and_clamps_range() {
        let mut s = FctSketch::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.rejected_non_finite(), 2);
        assert_eq!(s.quantile(0.5), 0.0);
        // Out-of-range magnitudes land in the clamp bins without panicking.
        s.push(0.0);
        s.push(1e-300);
        s.push(1e300);
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), 1e300);
        // Quantiles stay inside the exact observed range despite clamping.
        assert!(s.quantile(1.0) <= s.max());
        assert!(s.quantile(0.0) >= s.min());
    }

    #[test]
    fn sketch_single_sample_quantile_is_exact() {
        let mut s = FctSketch::new();
        s.push(123e-6);
        // Midpoint clamps into [min, max] = [x, x]: exact for one sample.
        assert_eq!(s.quantile(0.5), 123e-6);
        assert_eq!(s.p99(), 123e-6);
    }
}
