//! Process-memory self-measurement for scale reporting.
//!
//! Linux-only (parses `/proc/self/status`); on other platforms the
//! queries return `None` and callers simply omit the figure. Strictly
//! observational — nothing in a simulation reads these back, so sampling
//! RSS can never perturb a simulated outcome.

/// Resident set size right now, in bytes (`VmRSS`), when measurable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Peak resident set size over the process lifetime, in bytes (`VmHWM`),
/// when measurable.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// Reads one `kB`-valued field from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    // Format: "VmRSS:\t  123456 kB".
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn proc_status_kb(_field: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_is_measurable_and_sane() {
        let rss = current_rss_bytes().expect("VmRSS readable on linux");
        let peak = peak_rss_bytes().expect("VmHWM readable on linux");
        // A running test binary occupies at least a few hundred kB, and
        // the high-water mark can never undercut the current value as of
        // the same read... modulo paging races, so allow slack.
        assert!(rss > 100 * 1024, "rss {rss}");
        assert!(peak + 1024 * 1024 >= rss, "peak {peak} < rss {rss}");
    }
}
