//! Deterministic event calendar.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is the
//! global insertion order. This makes the simulation fully deterministic:
//! two events scheduled for the same instant fire in the order they were
//! scheduled, independent of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::progress::{ProgressProbe, PUBLISH_EVERY};
use crate::time::Time;

/// A pending entry in the calendar.
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-calendar of timestamped events.
///
/// # Examples
///
/// ```
/// use flexpass_simcore::event::EventQueue;
/// use flexpass_simcore::time::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_nanos(5), 'b');
/// q.schedule(Time::from_nanos(5), 'c');
/// q.schedule(Time::from_nanos(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
    last_time: Time,
    /// Observational progress counters published every
    /// [`PUBLISH_EVERY`] pops; never read back by the simulation.
    probe: Option<Arc<ProgressProbe>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            last_time: Time::ZERO,
            probe: None,
        }
    }

    /// Attaches a [`ProgressProbe`] the calendar publishes `(popped, now)`
    /// into every [`PUBLISH_EVERY`] pops. Purely observational: the
    /// simulation never reads the probe, so attaching one cannot change
    /// any simulated outcome.
    pub fn attach_probe(&mut self, probe: Arc<ProgressProbe>) {
        probe.publish(self.popped, self.last_time.as_nanos());
        self.probe = Some(probe);
    }

    /// Schedules `payload` to fire at absolute instant `time`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic error
    /// in the caller and panics in debug builds; in release builds the event
    /// fires "now" at the head of the queue, preserving monotonic pops.
    pub fn schedule(&mut self, time: Time, payload: E) {
        debug_assert!(
            time >= self.last_time,
            "scheduled event at {time:?} before current time {:?}",
            self.last_time
        );
        #[cfg(feature = "audit")]
        flexpass_simaudit::on_event_schedule(time.as_nanos(), self.last_time.as_nanos());
        let time = time.max(self.last_time);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        self.last_time = entry.time;
        #[cfg(feature = "audit")]
        flexpass_simaudit::on_event_pop(entry.time.as_nanos(), entry.seq);
        if self.popped & (PUBLISH_EVERY - 1) == 0 {
            if let Some(p) = &self.probe {
                p.publish(self.popped, entry.time.as_nanos());
            }
        }
        Some((entry.time, entry.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the most recently popped event (the current virtual time).
    pub fn now(&self) -> Time {
        self.last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(30), 3);
        q.schedule(Time::from_nanos(10), 1);
        q.schedule(Time::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(10), 1));
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(20), 2));
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_nanos(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(10), "a");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + TimeDelta::nanos(5), "b");
        q.schedule(t + TimeDelta::nanos(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.popped(), 3);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_micros(3), ());
        q.pop();
        assert_eq!(q.now(), Time::from_micros(3));
    }

    #[test]
    fn probe_publishes_on_pop_boundary() {
        use crate::progress::{ProgressProbe, PUBLISH_EVERY};
        use std::sync::Arc;

        let mut q = EventQueue::new();
        let probe = Arc::new(ProgressProbe::new());
        q.attach_probe(Arc::clone(&probe));
        for i in 0..PUBLISH_EVERY + 1 {
            q.schedule(Time::from_nanos(i), i);
        }
        // Before the publish boundary the probe still shows the initial 0.
        for _ in 0..PUBLISH_EVERY - 1 {
            q.pop();
        }
        assert_eq!(probe.events(), 0);
        q.pop(); // pop number PUBLISH_EVERY → publish fires
        assert_eq!(probe.events(), PUBLISH_EVERY);
        assert_eq!(probe.vtime_ns(), PUBLISH_EVERY - 1);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }
}
