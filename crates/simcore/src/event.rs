//! Deterministic event calendar.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is the
//! global insertion order. This makes the simulation fully deterministic:
//! two events scheduled for the same instant fire in the order they were
//! scheduled, independent of calendar internals.
//!
//! The calendar is backed by a hierarchical [`TimingWheel`] (see
//! [`crate::wheel`]) for O(1) near-future scheduling; the original binary
//! heap survives as [`HeapCalendar`], selectable per-queue for differential
//! tests/benches or workspace-wide via the `calendar-heap` cargo feature.
//! Both backends pop the byte-identical `(time, seq)` sequence.
//!
//! On top of the plain calendar sits a cancellable timer layer:
//! [`EventQueue::schedule_cancelable`] returns a generation-tagged
//! [`TimerHandle`]; [`EventQueue::cancel`] invalidates it in O(1) and the
//! dead entry is lazily discarded — at the latest when it reaches the head
//! of the calendar, or earlier when a wheel cascade touches it (dead
//! entries are dropped instead of re-placed, so cancellation-heavy loads
//! never carry them through the levels).
//! Cancelled entries are invisible to every observable: they are never
//! returned, never advance `now()`, never count as `popped()`, and never
//! reach the audit hooks — so a run with cancellations pops the same
//! delivered sequence as if the cancelled events had never been scheduled.

use std::sync::Arc;

use crate::progress::{ProgressProbe, PUBLISH_EVERY};
use crate::time::Time;
use crate::wheel::{HeapCalendar, TimingWheel};

/// Identifies one armed cancellable timer.
///
/// The handle is a `(slot, generation)` pair into the queue's timer slab.
/// Slots are recycled, but each reuse bumps the generation, so a stale
/// handle (already fired or cancelled) can never alias a newer timer:
/// [`EventQueue::cancel`] and [`EventQueue::is_pending`] on it are no-ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    generation: u32,
}

/// In-calendar payload wrapper: cancellable entries carry their slab slot
/// so the pop path can check liveness and recycle the slot.
struct Scheduled<E> {
    payload: E,
    timer: Option<TimerHandle>,
}

/// Liveness filter for cascade-time reaping: flags cancelled entries so
/// the wheel drops them at the first cascade touch, recycling their slab
/// slot on the spot (the generation was already bumped by `cancel`).
/// Borrows the slab fields individually so the store can be borrowed
/// mutably alongside.
fn dead_filter<'a, E>(
    gens: &'a [u32],
    free: &'a mut Vec<u32>,
) -> impl FnMut(&Scheduled<E>) -> bool + 'a {
    move |e| match e.timer {
        Some(h)
            if gens
                .get(h.slot as usize)
                .is_some_and(|&g| g != h.generation) =>
        {
            free.push(h.slot);
            true
        }
        _ => false,
    }
}

/// Calendar backend: the timing wheel by default, the reference binary
/// heap behind the `calendar-heap` feature or an explicit constructor.
enum Store<T> {
    Wheel(TimingWheel<T>),
    Heap(HeapCalendar<T>),
}

impl<T> Store<T> {
    /// Push with a liveness filter: the wheel drops `dead` entries at the
    /// first cascade touch (see [`TimingWheel::push_reap`]); the heap has
    /// no cascades, so dead entries simply wait to be reaped at pop.
    fn push(&mut self, time: Time, seq: u64, payload: T, dead: &mut dyn FnMut(&T) -> bool) {
        match self {
            Store::Wheel(w) => w.push_reap(time, seq, payload, dead),
            Store::Heap(h) => h.push(time, seq, payload),
        }
    }

    fn pop(&mut self, dead: &mut dyn FnMut(&T) -> bool) -> Option<(Time, u64, T)> {
        match self {
            Store::Wheel(w) => w.pop_reap(dead),
            Store::Heap(h) => h.pop(),
        }
    }

    fn peek(&self) -> Option<(Time, u64, &T)> {
        match self {
            Store::Wheel(w) => w.peek(),
            Store::Heap(h) => h.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Store::Wheel(w) => w.len(),
            Store::Heap(h) => h.len(),
        }
    }
}

/// A deterministic min-calendar of timestamped events.
///
/// # Examples
///
/// ```
/// use flexpass_simcore::event::EventQueue;
/// use flexpass_simcore::time::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_nanos(5), 'b');
/// q.schedule(Time::from_nanos(5), 'c');
/// q.schedule(Time::from_nanos(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
///
/// Cancellable timers:
///
/// ```
/// use flexpass_simcore::event::EventQueue;
/// use flexpass_simcore::time::Time;
///
/// let mut q = EventQueue::new();
/// let h = q.schedule_cancelable(Time::from_nanos(10), "rto");
/// q.schedule(Time::from_nanos(20), "later");
/// assert!(q.cancel(h));
/// assert!(!q.cancel(h)); // double-cancel is a no-op
/// assert_eq!(q.pop(), Some((Time::from_nanos(20), "later")));
/// ```
pub struct EventQueue<E> {
    store: Store<Scheduled<E>>,
    next_seq: u64,
    popped: u64,
    last_time: Time,
    /// Release-mode past-time schedules clamped up to `now` (satellite:
    /// observable instead of silent).
    clamped: u64,
    /// Successful [`cancel`](Self::cancel) calls.
    cancelled: u64,
    /// Generation counter per timer slab slot. A calendar entry whose
    /// recorded generation no longer matches is dead and is skipped on pop.
    timer_gens: Vec<u32>,
    /// Slab slots whose calendar entry has drained and can be reused.
    free_slots: Vec<u32>,
    /// Observational progress counters published every
    /// [`PUBLISH_EVERY`] pops; never read back by the simulation.
    probe: Option<Arc<ProgressProbe>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar on the default backend (the timing wheel,
    /// or the reference heap when built with the `calendar-heap` feature).
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty calendar pre-sized for roughly `n` concurrent
    /// events, avoiding repeated growth at sweep start.
    pub fn with_capacity(n: usize) -> Self {
        #[cfg(not(feature = "calendar-heap"))]
        let store = Store::Wheel(TimingWheel::with_capacity(n));
        #[cfg(feature = "calendar-heap")]
        let store = Store::Heap(HeapCalendar::with_capacity(n));
        Self::from_store(store, n)
    }

    /// Creates a calendar explicitly backed by the hierarchical timing
    /// wheel, regardless of the `calendar-heap` feature. For differential
    /// tests and benchmarks.
    pub fn new_wheel_backed() -> Self {
        Self::from_store(Store::Wheel(TimingWheel::new()), 0)
    }

    /// Creates a calendar explicitly backed by the reference binary heap
    /// (the pre-wheel implementation). For differential tests and
    /// benchmarks: both backends pop byte-identical `(time, seq)` orders.
    pub fn new_heap_backed() -> Self {
        Self::from_store(Store::Heap(HeapCalendar::new()), 0)
    }

    fn from_store(store: Store<Scheduled<E>>, cap: usize) -> Self {
        EventQueue {
            store,
            next_seq: 0,
            popped: 0,
            last_time: Time::ZERO,
            clamped: 0,
            cancelled: 0,
            timer_gens: Vec::with_capacity(cap.min(1 << 16)),
            free_slots: Vec::new(),
            probe: None,
        }
    }

    /// Attaches a [`ProgressProbe`] the calendar publishes `(popped, now)`
    /// into every [`PUBLISH_EVERY`] pops. Purely observational: the
    /// simulation never reads the probe, so attaching one cannot change
    /// any simulated outcome.
    pub fn attach_probe(&mut self, probe: Arc<ProgressProbe>) {
        probe.publish(self.popped, self.last_time.as_nanos());
        self.probe = Some(probe);
    }

    /// Schedules `payload` to fire at absolute instant `time`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic error
    /// in the caller and panics in debug builds; in release builds the event
    /// fires "now" at the head of the queue, preserving monotonic pops, and
    /// the clamp is counted in [`clamped`](Self::clamped).
    pub fn schedule(&mut self, time: Time, payload: E) {
        self.schedule_entry(
            time,
            Scheduled {
                payload,
                timer: None,
            },
        );
    }

    /// Schedules `payload` like [`schedule`](Self::schedule), returning a
    /// [`TimerHandle`] that can [`cancel`](Self::cancel) the event before
    /// it fires. Costs one slab slot over a plain schedule; deletion is
    /// lazy (the entry is discarded when it reaches the calendar head).
    pub fn schedule_cancelable(&mut self, time: Time, payload: E) -> TimerHandle {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.timer_gens.len() as u32;
                self.timer_gens.push(0);
                s
            }
        };
        let generation = *self
            .timer_gens
            .get(slot as usize)
            .expect("slab slot just allocated");
        let handle = TimerHandle { slot, generation };
        self.schedule_entry(
            time,
            Scheduled {
                payload,
                timer: Some(handle),
            },
        );
        handle
    }

    fn schedule_entry(&mut self, time: Time, entry: Scheduled<E>) {
        debug_assert!(
            time >= self.last_time,
            "scheduled event at {time:?} before current time {:?}",
            self.last_time
        );
        #[cfg(feature = "audit")]
        flexpass_simaudit::on_event_schedule(time.as_nanos(), self.last_time.as_nanos());
        if time < self.last_time {
            self.clamped += 1;
        }
        let time = time.max(self.last_time);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.store.push(
            time,
            seq,
            entry,
            &mut dead_filter(&self.timer_gens, &mut self.free_slots),
        );
    }

    /// Cancels a pending cancellable event. Returns `true` if the handle
    /// was still live; `false` (a no-op) if it already fired or was
    /// already cancelled. O(1): the calendar entry is discarded lazily.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        match self.timer_gens.get_mut(handle.slot as usize) {
            Some(g) if *g == handle.generation => {
                *g = g.wrapping_add(1);
                self.cancelled += 1;
                true
            }
            _ => false,
        }
    }

    /// True while `handle`'s event is still scheduled (not yet fired or
    /// cancelled).
    pub fn is_pending(&self, handle: TimerHandle) -> bool {
        self.timer_gens.get(handle.slot as usize) == Some(&handle.generation)
    }

    /// True if the entry is a cancelled leftover; recycles its slab slot
    /// either way (live entries are about to be delivered).
    fn reap(&mut self, entry: &Scheduled<E>) -> bool {
        match entry.timer {
            None => false,
            Some(h) => {
                let g = self
                    .timer_gens
                    .get_mut(h.slot as usize)
                    .expect("slab slot valid while its handle is outstanding");
                let dead = *g != h.generation;
                if !dead {
                    // Delivered: invalidate outstanding handles.
                    *g = g.wrapping_add(1);
                }
                self.free_slots.push(h.slot);
                dead
            }
        }
    }

    /// Removes and returns the earliest live event, if any.
    ///
    /// Cancelled entries encountered on the way are discarded without any
    /// observable effect (no `popped` tick, no `now()` advance, no audit
    /// callback, no probe publish).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            let (time, seq, entry) = self
                .store
                .pop(&mut dead_filter(&self.timer_gens, &mut self.free_slots))?;
            if self.reap(&entry) {
                continue;
            }
            self.popped += 1;
            self.last_time = time;
            #[cfg(not(feature = "audit"))]
            let _ = seq;
            #[cfg(feature = "audit")]
            flexpass_simaudit::on_event_pop(time.as_nanos(), seq);
            if self.popped & (PUBLISH_EVERY - 1) == 0 {
                if let Some(p) = &self.probe {
                    p.publish(self.popped, time.as_nanos());
                }
            }
            return Some((time, entry.payload));
        }
    }

    /// Timestamp of the earliest pending *live* event.
    ///
    /// Takes `&mut self` because cancelled leftovers at the calendar head
    /// are drained here — otherwise a dead entry's stale timestamp could
    /// leak into `run_until`-style deadline checks.
    pub fn peek_time(&mut self) -> Option<Time> {
        loop {
            let dead = {
                let (time, _, entry) = self.store.peek()?;
                match entry.timer {
                    Some(h)
                        if self
                            .timer_gens
                            .get(h.slot as usize)
                            .is_some_and(|&g| g != h.generation) =>
                    {
                        true
                    }
                    _ => return Some(time),
                }
            };
            debug_assert!(dead);
            let (_, _, entry) = self
                .store
                .pop(&mut dead_filter(&self.timer_gens, &mut self.free_slots))
                .expect("peeked entry exists");
            let reaped = self.reap(&entry);
            debug_assert!(reaped);
        }
    }

    /// Number of pending calendar entries, *including* cancelled ones not
    /// yet lazily discarded.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no calendar entries are pending (live or cancelled).
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Total number of live events popped so far (a cheap progress metric).
    /// Cancelled entries never count.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the most recently popped event (the current virtual time).
    pub fn now(&self) -> Time {
        self.last_time
    }

    /// Number of release-mode past-time schedules clamped up to `now`.
    /// Always 0 in a healthy run (debug builds panic instead).
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Number of successful [`cancel`](Self::cancel) calls so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(30), 3);
        q.schedule(Time::from_nanos(10), 1);
        q.schedule(Time::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(10), 1));
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(20), 2));
        assert_eq!(q.pop().unwrap(), (Time::from_nanos(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_nanos(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(10), "a");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + TimeDelta::nanos(5), "b");
        q.schedule(t + TimeDelta::nanos(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.popped(), 3);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_micros(3), ());
        q.pop();
        assert_eq!(q.now(), Time::from_micros(3));
    }

    #[test]
    fn probe_publishes_on_pop_boundary() {
        use crate::progress::{ProgressProbe, PUBLISH_EVERY};
        use std::sync::Arc;

        let mut q = EventQueue::new();
        let probe = Arc::new(ProgressProbe::new());
        q.attach_probe(Arc::clone(&probe));
        for i in 0..PUBLISH_EVERY + 1 {
            q.schedule(Time::from_nanos(i), i);
        }
        // Before the publish boundary the probe still shows the initial 0.
        for _ in 0..PUBLISH_EVERY - 1 {
            q.pop();
        }
        assert_eq!(probe.events(), 0);
        q.pop(); // pop number PUBLISH_EVERY → publish fires
        assert_eq!(probe.events(), PUBLISH_EVERY);
        assert_eq!(probe.vtime_ns(), PUBLISH_EVERY - 1);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(Time::from_nanos(10), "timer");
        q.schedule(Time::from_nanos(20), "event");
        assert!(q.is_pending(h));
        assert!(q.cancel(h));
        assert!(!q.is_pending(h));
        // The dead entry is skipped: neither pop nor peek ever sees it.
        assert_eq!(q.peek_time(), Some(Time::from_nanos(20)));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "event")));
        assert!(q.pop().is_none());
        assert_eq!(q.popped(), 1);
        assert_eq!(q.cancelled(), 1);
        // now() was never advanced by the cancelled entry's timestamp.
        assert_eq!(q.now(), Time::from_nanos(20));
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        let h = q.schedule_cancelable(Time::from_nanos(5), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert_eq!(q.cancelled(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(Time::from_nanos(5), "t");
        assert_eq!(q.pop(), Some((Time::from_nanos(5), "t")));
        assert!(!q.is_pending(h));
        assert!(!q.cancel(h));
        assert_eq!(q.cancelled(), 0);
    }

    #[test]
    fn rearm_after_cancel_uses_fresh_generation() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_cancelable(Time::from_nanos(10), "first");
        assert!(q.cancel(h1));
        // Re-arm: may reuse the slab slot, but the old handle stays dead.
        let h2 = q.schedule_cancelable(Time::from_nanos(30), "second");
        assert_ne!(h1, h2);
        assert!(!q.is_pending(h1));
        assert!(q.is_pending(h2));
        assert!(!q.cancel(h1));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), "second")));
        assert!(!q.is_pending(h2));
    }

    #[test]
    fn slot_reuse_after_fire_does_not_alias() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_cancelable(Time::from_nanos(1), 1);
        assert!(q.pop().is_some()); // h1 fires, slot recycled
        let h2 = q.schedule_cancelable(Time::from_nanos(2), 2);
        assert!(!q.cancel(h1)); // stale handle must not kill h2
        assert!(q.is_pending(h2));
        assert_eq!(q.pop(), Some((Time::from_nanos(2), 2)));
    }

    #[test]
    fn queue_of_only_cancelled_entries_is_effectively_empty() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let hs: Vec<_> = (0..8)
            .map(|i| q.schedule_cancelable(Time::from_nanos(i), i as u32))
            .collect();
        for h in hs {
            assert!(q.cancel(h));
        }
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        assert_eq!(q.popped(), 0);
        assert_eq!(q.now(), Time::ZERO);
    }

    #[test]
    fn heap_backed_matches_wheel_backed() {
        let mut w = EventQueue::new_wheel_backed();
        let mut h = EventQueue::new_heap_backed();
        let times = [40u64, 7, 7, 100_000, 7, 2_000_000, 40];
        for (i, &t) in times.iter().enumerate() {
            w.schedule(Time::from_nanos(t), i);
            h.schedule(Time::from_nanos(t), i);
        }
        loop {
            let a = w.pop();
            let b = h.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(1024);
        q.schedule(Time::from_nanos(2), "b");
        q.schedule(Time::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.clamped(), 0);
    }

    // Release-only: in debug builds a past-time schedule panics via
    // debug_assert before the clamp counter is reached.
    #[cfg(not(debug_assertions))]
    #[test]
    fn past_time_schedule_is_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(100), "a");
        q.pop();
        q.schedule(Time::from_nanos(50), "late");
        assert_eq!(q.clamped(), 1);
        // The clamped event fires "now", preserving monotone pops.
        assert_eq!(q.pop(), Some((Time::from_nanos(100), "late")));
    }
}
