//! Discrete-event simulation core used by the FlexPass reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`time`] — fixed-point virtual time ([`Time`], [`TimeDelta`]) in
//!   nanoseconds, byte/rate arithmetic ([`Rate`]) for serialization delays.
//! * [`event`] — a deterministic event calendar ([`EventQueue`]) ordered by
//!   `(time, insertion sequence)` so equal-time events fire FIFO, with
//!   cancellable timers ([`TimerHandle`]).
//! * [`wheel`] — the hierarchical timing-wheel backend behind the calendar
//!   (plus the reference [`wheel::HeapCalendar`] it is differentially
//!   tested against).
//! * [`rng`] — seeded deterministic randomness and a symmetric flow hash for
//!   ECMP path selection.
//! * [`progress`] — atomic progress counters ([`ProgressProbe`]) a running
//!   calendar publishes into, for cross-thread heartbeat reporting.
//! * [`stats`] — online mean/variance, exact percentiles, the bounded-memory
//!   [`FctSketch`] quantile histogram, time-binned series.
//! * [`mem`] — linux-gated process-RSS self-measurement for scale
//!   reporting (`/proc/self/status`).
//! * [`units`] — byte-accounting newtypes ([`Bytes`], [`WireBytes`],
//!   [`PktCount`]) keeping payload and wire bytes apart at compile time.
//!
//! # Examples
//!
//! ```
//! use flexpass_simcore::event::EventQueue;
//! use flexpass_simcore::time::{Time, TimeDelta};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Time::ZERO + TimeDelta::micros(2), "second");
//! q.schedule(Time::ZERO + TimeDelta::micros(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, Time::from_nanos(1_000));
//! ```

pub mod event;
pub mod mem;
pub mod progress;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;
pub mod wheel;

pub use event::{EventQueue, TimerHandle};
pub use progress::ProgressProbe;
pub use rng::SimRng;
pub use stats::{FctSketch, OnlineStats, Percentiles, TimeSeries};
pub use time::{Rate, Time, TimeDelta};
pub use units::{Bytes, PktCount, WireBytes};
