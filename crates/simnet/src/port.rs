//! Egress port scheduling: strict priority levels, Deficit Weighted Round
//! Robin within a level, and token-bucket shaping.
//!
//! The FlexPass switch configuration (§4.1) is expressed as:
//!
//! * Q0 (credits): strict priority level 0, token-bucket shaped to
//!   `w_q × CREDIT_RATE_FULL_FRACTION` of line rate, tiny static buffer.
//! * Q1 (FlexPass data) and Q2 (legacy): priority level 1, DWRR with weights
//!   `w_q` and `1 − w_q`.
//!
//! The scheduler is work conserving: while the shaped credit queue waits for
//! tokens, lower-priority data queues are served; if *only* shaped traffic is
//! pending, the port reports the next token-eligibility instant so the
//! simulator can schedule a wake-up.

use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::WireBytes;

use crate::audit;
use crate::consts::DATA_WIRE;
use crate::packet::Packet;
use crate::queue::{DropReason, Enqueue, PacketQueue, QueueConfig};

/// Scheduling attributes of one queue within a port.
#[derive(Clone, Copy, Debug)]
pub struct QueueSched {
    /// Strict priority level; 0 is served first.
    pub level: u8,
    /// DWRR weight among queues of the same level (relative, not normalized).
    pub weight: f64,
    /// Optional token-bucket shaper (rate, burst). Only supported on
    /// queues that are alone at their priority level (the credit queue).
    pub shaper: Option<(Rate, WireBytes)>,
}

impl QueueSched {
    /// A strict-priority queue at `level` with no shaping.
    pub fn strict(level: u8) -> Self {
        QueueSched {
            level,
            weight: 1.0,
            shaper: None,
        }
    }

    /// A DWRR queue at `level` with the given weight.
    pub fn weighted(level: u8, weight: f64) -> Self {
        assert!(weight > 0.0, "DWRR weight must be positive");
        QueueSched {
            level,
            weight,
            shaper: None,
        }
    }

    /// Adds a token-bucket shaper.
    pub fn shaped(mut self, rate: Rate, burst: WireBytes) -> Self {
        self.shaper = Some((rate, burst));
        self
    }
}

/// Full configuration of a port: line rate plus per-queue policy + schedule.
#[derive(Clone, Debug)]
pub struct PortConfig {
    /// Line rate.
    pub rate: Rate,
    /// Per-queue configuration, in queue-index order.
    pub queues: Vec<(QueueConfig, QueueSched)>,
}

impl PortConfig {
    /// A single plain FIFO at line rate (simple reference ports).
    pub fn single_fifo(rate: Rate) -> Self {
        PortConfig {
            rate,
            queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
        }
    }
}

/// What the scheduler decided on a service opportunity.
#[derive(Debug)]
pub enum Decision {
    /// Transmit this packet (already dequeued).
    Send(Packet),
    /// Nothing is eligible now, but a shaped queue becomes eligible at the
    /// given instant: wake the port then.
    WaitUntil(Time),
    /// No backlog at all.
    Idle,
}

/// Token-bucket units: one token is a "bit-nanosecond", the credit earned
/// by 1 bps over 1 ns. A byte costs `8 × 1e9` tokens.
const TOKENS_PER_BYTE: u128 = 8 * 1_000_000_000;

/// Token-bucket shaper with exact integer accounting.
///
/// Refilling over `dt` nanoseconds at `rate` bps adds `dt × rate` tokens;
/// transmitting `b` bytes spends `b ×` [`TOKENS_PER_BYTE`]. Keeping tokens
/// in bit-nanoseconds makes the bucket drift-free (no float rounding), so
/// `eligible_at` can compute the exact wake-up instant with one ceiling
/// division and repeated refill/spend cycles conserve credit bit-for-bit.
#[derive(Debug)]
struct Shaper {
    rate: Rate,
    burst: u128,
    tokens: u128,
    last: Time,
    audit_id: audit::ComponentId,
}

impl Shaper {
    fn new(rate: Rate, burst: WireBytes) -> Self {
        let burst = u128::from(burst.get()) * TOKENS_PER_BYTE;
        Shaper {
            rate,
            burst,
            tokens: burst,
            last: Time::ZERO,
            audit_id: audit::new_component_id(),
        }
    }

    /// Tokens needed to transmit `bytes`.
    fn need(bytes: WireBytes) -> u128 {
        u128::from(bytes.get()) * TOKENS_PER_BYTE
    }

    fn refill(&mut self, now: Time) {
        let dt = u128::from(now.saturating_since(self.last).as_nanos());
        self.tokens = (self.tokens + dt * u128::from(self.rate.as_bps())).min(self.burst);
        self.last = now;
        audit::shaper_tokens(self.audit_id, self.tokens, self.burst);
    }

    /// Consumes `need` tokens; caller must have checked availability.
    fn spend(&mut self, need: u128) {
        debug_assert!(self.tokens >= need, "shaper overspend");
        self.tokens -= need;
        audit::shaper_tokens(self.audit_id, self.tokens, self.burst);
    }

    fn eligible_at(&self, now: Time, need: u128) -> Time {
        if self.tokens >= need {
            return now;
        }
        if self.rate.as_bps() == 0 {
            return Time::MAX;
        }
        let deficit = need - self.tokens;
        let ns = deficit.div_ceil(u128::from(self.rate.as_bps()));
        now.saturating_add(TimeDelta::nanos(u64::try_from(ns).unwrap_or(u64::MAX)))
    }
}

#[derive(Debug)]
struct Level {
    /// Queue indices at this level, in configuration order.
    members: Vec<usize>,
    /// Round-robin pointer into `members`.
    pos: usize,
    /// Whether the queue under the pointer still needs its visit quantum.
    fresh: bool,
}

/// Per-port transmit counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortCounters {
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Wire bytes transmitted.
    pub tx_bytes: WireBytes,
}

/// An egress port: a set of queues plus the scheduler state, attached to a
/// simplex link towards `peer`.
#[derive(Debug)]
pub struct Port {
    /// Line rate.
    pub rate: Rate,
    /// Peer node this port transmits to (set during topology wiring).
    pub peer: usize,
    /// Propagation delay of the attached link.
    pub prop: TimeDelta,
    queues: Vec<PacketQueue>,
    scheds: Vec<QueueSched>,
    shapers: Vec<Option<Shaper>>,
    deficits: Vec<f64>,
    quanta: Vec<f64>,
    levels: Vec<Level>,
    /// End of the in-flight serialization, if transmitting.
    pub busy_until: Option<Time>,
    /// Earliest already-scheduled idle wake-up (dedup for shaper waits).
    pub pending_wake: Option<Time>,
    counters: PortCounters,
}

impl Port {
    /// Builds a port from its configuration. `peer`/`prop` are filled in by
    /// the topology wiring.
    pub fn new(cfg: &PortConfig) -> Self {
        let nq = cfg.queues.len();
        assert!(nq > 0, "port needs at least one queue");
        let queues: Vec<PacketQueue> = cfg
            .queues
            .iter()
            .map(|(qc, _)| PacketQueue::new(*qc))
            .collect();
        let scheds: Vec<QueueSched> = cfg.queues.iter().map(|(_, s)| *s).collect();
        let shapers: Vec<Option<Shaper>> = scheds
            .iter()
            .map(|s| s.shaper.map(|(r, b)| Shaper::new(r, b)))
            .collect();

        // Group queues into strict levels, ascending.
        let mut level_ids: Vec<u8> = scheds.iter().map(|s| s.level).collect();
        level_ids.sort_unstable();
        level_ids.dedup();
        let levels: Vec<Level> = level_ids
            .iter()
            .map(|&l| Level {
                members: (0..nq).filter(|&i| scheds[i].level == l).collect(),
                pos: 0,
                fresh: true,
            })
            .collect();

        // Shapers only on single-queue levels (covers every paper config).
        for level in &levels {
            if level.members.len() > 1 {
                for &i in &level.members {
                    assert!(
                        scheds[i].shaper.is_none(),
                        "shaped queues must be alone at their priority level"
                    );
                }
            }
        }

        // DWRR quantum: proportional to weight, scaled so the largest weight
        // in a level gets one MTU per round.
        let mut quanta = vec![0.0; nq];
        for level in &levels {
            let wmax = level
                .members
                .iter()
                .map(|&i| scheds[i].weight)
                .fold(0.0_f64, f64::max);
            for &i in &level.members {
                quanta[i] = (scheds[i].weight / wmax * DATA_WIRE.as_f64()).max(1.0);
            }
        }

        Port {
            rate: cfg.rate,
            peer: usize::MAX,
            prop: TimeDelta::ZERO,
            queues,
            scheds,
            shapers,
            deficits: vec![0.0; nq],
            quanta,
            levels,
            busy_until: None,
            pending_wake: None,
            counters: PortCounters::default(),
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Immutable access to a queue (metrics / admission checks).
    pub fn queue(&self, idx: usize) -> &PacketQueue {
        &self.queues[idx]
    }

    /// Sum of bytes across all queues.
    pub fn backlog_bytes(&self) -> WireBytes {
        self.queues.iter().map(|q| q.bytes()).sum()
    }

    /// True if any queue holds packets.
    pub fn has_backlog(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    /// Transmit counters.
    pub fn counters(&self) -> PortCounters {
        self.counters
    }

    /// Scheduling attributes of queue `idx`.
    pub fn sched(&self, idx: usize) -> &QueueSched {
        &self.scheds[idx]
    }

    /// Offers `pkt` to queue `qidx` applying that queue's own policies.
    /// Shared-buffer admission must have been checked by the caller.
    pub fn enqueue(&mut self, qidx: usize, pkt: Packet) -> Result<(), DropReason> {
        match self.queues[qidx].offer(pkt) {
            Enqueue::Admitted => Ok(()),
            Enqueue::Dropped(r) => Err(r),
        }
    }

    /// Serialization time of `bytes` at line rate.
    pub fn serialize(&self, bytes: WireBytes) -> TimeDelta {
        self.rate.serialize_wire(bytes)
    }

    /// Runs the scheduler for one service opportunity at `now`.
    pub fn next_packet(&mut self, now: Time) -> Decision {
        let mut wake: Option<Time> = None;
        for li in 0..self.levels.len() {
            let members_len = self.levels[li].members.len();
            if members_len == 1 {
                let qi = self.levels[li].members[0];
                if self.queues[qi].is_empty() {
                    continue;
                }
                let head = self.queues[qi].head_bytes().expect("non-empty");
                if let Some(shaper) = self.shapers[qi].as_mut() {
                    shaper.refill(now);
                    let need = Shaper::need(head);
                    if shaper.tokens >= need {
                        shaper.spend(need);
                        return self.serve(qi);
                    }
                    let at = shaper.eligible_at(now, need);
                    wake = Some(wake.map_or(at, |w: Time| w.min(at)));
                    // Work conserving: fall through to lower levels.
                    continue;
                }
                return self.serve(qi);
            }
            if let Some(qi) = self.dwrr_pick(li) {
                return self.serve(qi);
            }
        }
        match wake {
            Some(t) => Decision::WaitUntil(t),
            None => Decision::Idle,
        }
    }

    /// DWRR selection among the queues of level `li`. Returns the queue to
    /// serve, or `None` if the level has no backlog.
    fn dwrr_pick(&mut self, li: usize) -> Option<usize> {
        let n = self.levels[li].members.len();
        if !self.levels[li]
            .members
            .iter()
            .any(|&i| !self.queues[i].is_empty())
        {
            return None;
        }
        // Progress bound: one full cycle adds `quanta[i]` to every
        // backlogged queue's deficit, so the queue whose head needs the
        // fewest additional quanta is served within that many cycles. This
        // is exact for any head size and weight vector (+2 cycles of slack
        // for the rotation in progress), unlike a `MTU / min_quantum`
        // heuristic, which under-counts whenever a head packet is large
        // relative to its own queue's quantum (e.g. a jumbo frame on a
        // tiny-weight queue) and then trips the unreachable!() below.
        let min_rounds = self.levels[li]
            .members
            .iter()
            .filter(|&&i| !self.queues[i].is_empty())
            .map(|&i| {
                let head = self.queues[i].head_bytes().expect("non-empty").as_f64();
                let need = (head - self.deficits[i]).max(0.0);
                // lint:allow(raw-cast): round count, not a byte quantity
                (need / self.quanta[i]).ceil() as usize
            })
            .min()
            .expect("level has backlog");
        let max_passes = n * (min_rounds + 2);
        for _ in 0..=max_passes {
            let level = &mut self.levels[li];
            let qi = level.members[level.pos];
            if self.queues[qi].is_empty() {
                self.deficits[qi] = 0.0;
                level.pos = (level.pos + 1) % n;
                level.fresh = true;
                continue;
            }
            if level.fresh {
                self.deficits[qi] += self.quanta[qi];
                level.fresh = false;
            }
            let head = self.queues[qi].head_bytes().expect("non-empty").as_f64();
            if self.deficits[qi] >= head {
                return Some(qi);
            }
            level.pos = (level.pos + 1) % n;
            level.fresh = true;
        }
        // lint:allow(panic-path): progress bound proven above; a trip here
        // is a scheduler logic bug that must abort the run.
        unreachable!("DWRR failed to make progress");
    }

    /// Dequeues from `qi`, updating deficits and counters.
    fn serve(&mut self, qi: usize) -> Decision {
        let pkt = self.queues[qi].dequeue().expect("serve on empty queue");
        let size = pkt.wire.as_f64();
        // Update DWRR state if this queue shares its level.
        let li = self
            .levels
            .iter()
            .position(|l| l.members.contains(&qi))
            .expect("queue belongs to a level");
        if self.levels[li].members.len() > 1 {
            self.deficits[qi] -= size;
            let level = &mut self.levels[li];
            let n = level.members.len();
            let advance = if self.queues[qi].is_empty() {
                self.deficits[qi] = 0.0;
                true
            } else {
                let next_head = self.queues[qi].head_bytes().expect("non-empty").as_f64();
                self.deficits[qi] < next_head
            };
            if advance {
                level.pos = (level.pos + 1) % n;
                level.fresh = true;
            }
        }
        self.counters.tx_pkts += 1;
        self.counters.tx_bytes += pkt.wire;
        Decision::Send(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{CTRL_WIRE, DATA_HEADER_WIRE};
    use crate::packet::{CreditInfo, DataInfo, Payload, Subflow, TrafficClass};
    use flexpass_simcore::units::Bytes;

    fn data(wire: u64) -> Packet {
        Packet::new(
            1,
            0,
            1,
            WireBytes::new(wire),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Only,
                payload: Bytes::new(wire.saturating_sub(DATA_HEADER_WIRE.get())),
                retx: false,
            }),
        )
    }

    fn credit() -> Packet {
        Packet::new(
            2,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        )
    }

    fn drain(port: &mut Port, now: Time, n: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        for _ in 0..n {
            match port.next_packet(now) {
                Decision::Send(p) => out.push(p),
                _ => break,
            }
        }
        out
    }

    #[test]
    fn strict_priority_order() {
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::strict(0)),
                (QueueConfig::plain(), QueueSched::strict(1)),
            ],
        };
        let mut port = Port::new(&cfg);
        port.enqueue(1, data(DATA_WIRE.get())).unwrap();
        port.enqueue(0, data(100)).unwrap();
        let out = drain(&mut port, Time::ZERO, 2);
        assert_eq!(out[0].wire, WireBytes::new(100));
        assert_eq!(out[1].wire, DATA_WIRE);
    }

    #[test]
    fn dwrr_equal_weights_alternate() {
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, 0.5)),
                (QueueConfig::plain(), QueueSched::weighted(0, 0.5)),
            ],
        };
        let mut port = Port::new(&cfg);
        for _ in 0..10 {
            port.enqueue(0, data(DATA_WIRE.get())).unwrap();
            port.enqueue(1, data(538)).unwrap();
        }
        // Byte share, not packet share, must be balanced: queue 1's packets
        // are smaller so it should send ~2.8x as many packets.
        let mut bytes = [0u64; 2];
        let mut served = 0;
        while let Decision::Send(p) = port.next_packet(Time::ZERO) {
            let qi = if p.wire == DATA_WIRE { 0 } else { 1 };
            bytes[qi] += p.wire.get();
            served += 1;
            if served > 14 {
                break;
            }
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((0.6..1.7).contains(&ratio), "byte ratio {ratio}");
    }

    #[test]
    fn dwrr_weight_ratio_converges() {
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, 0.4)),
                (QueueConfig::plain(), QueueSched::weighted(0, 0.6)),
            ],
        };
        // Use distinguishable sizes close enough to be fair by bytes.
        let mut counts = [0u64; 2];
        let mut port = Port::new(&cfg);
        for _ in 0..1000 {
            port.enqueue(0, data(1537)).unwrap();
            port.enqueue(1, data(DATA_WIRE.get())).unwrap();
        }
        for _ in 0..1000 {
            match port.next_packet(Time::ZERO) {
                Decision::Send(p) => {
                    if p.wire == WireBytes::new(1537) {
                        counts[0] += 1
                    } else {
                        counts[1] += 1
                    }
                }
                _ => break,
            }
        }
        let share = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((share - 0.4).abs() < 0.03, "queue-0 share {share}");
    }

    #[test]
    fn work_conservation_under_shaped_credit_queue() {
        // Credit queue shaped to a tiny rate; data must flow meanwhile.
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (
                    QueueConfig::capped(WireBytes::new(1_000)),
                    QueueSched::strict(0).shaped(Rate::from_mbps(1), CTRL_WIRE),
                ),
                (QueueConfig::plain(), QueueSched::strict(1)),
            ],
        };
        let mut port = Port::new(&cfg);
        let t0 = Time::from_millis(1);
        // Exhaust the initial token burst with one credit.
        port.enqueue(0, credit()).unwrap();
        match port.next_packet(t0) {
            Decision::Send(p) => assert_eq!(p.wire, CTRL_WIRE),
            other => panic!("expected credit send, got {other:?}"),
        }
        // Now the bucket is empty; a queued credit must wait but data flows.
        port.enqueue(0, credit()).unwrap();
        port.enqueue(1, data(DATA_WIRE.get())).unwrap();
        match port.next_packet(t0) {
            Decision::Send(p) => assert_eq!(p.wire, DATA_WIRE),
            other => panic!("expected data send, got {other:?}"),
        }
        // Only the credit remains: scheduler reports the wake time.
        match port.next_packet(t0) {
            Decision::WaitUntil(t) => {
                // 84 bytes at 1 Mbps = 672 us.
                let dt = t - t0;
                assert!(
                    (dt.as_micros_f64() - 672.0).abs() < 1.0,
                    "wake after {dt:?}"
                );
                // At the wake time the credit becomes eligible.
                match port.next_packet(t) {
                    Decision::Send(p) => assert_eq!(p.wire, CTRL_WIRE),
                    other => panic!("expected credit after wait, got {other:?}"),
                }
            }
            other => panic!("expected WaitUntil, got {other:?}"),
        }
    }

    #[test]
    fn dwrr_serves_jumbo_from_tiny_weight_queue() {
        // Regression: the old pass bound, n * (ceil(MTU / min_quantum) + 2),
        // under-counts whenever the head packet needs more rounds than an
        // MTU would relative to its own queue's quantum. A 9000-byte jumbo
        // on a weight-0.001 queue (quantum 1.538) needs ~5852 rounds; the
        // old bound allowed ~1002 and hit the unreachable!() panic.
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, 0.001)),
                (QueueConfig::plain(), QueueSched::weighted(0, 1.0)),
            ],
        };
        let mut port = Port::new(&cfg);
        port.enqueue(0, data(9_000)).unwrap();
        match port.next_packet(Time::ZERO) {
            Decision::Send(p) => assert_eq!(p.wire, WireBytes::new(9_000)),
            other => panic!("expected jumbo send, got {other:?}"),
        }
        assert!(!port.has_backlog());
    }

    #[test]
    fn idle_when_empty() {
        let mut port = Port::new(&PortConfig::single_fifo(Rate::from_gbps(10)));
        assert!(matches!(port.next_packet(Time::ZERO), Decision::Idle));
        assert!(!port.has_backlog());
    }

    #[test]
    fn shaper_rate_enforced_over_time() {
        // Drain credits as fast as the scheduler lets us and verify the
        // long-run rate matches the shaper.
        let rate = Rate::from_mbps(100);
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![(
                QueueConfig::plain(),
                QueueSched::strict(0).shaped(rate, CTRL_WIRE * 2),
            )],
        };
        let mut port = Port::new(&cfg);
        for _ in 0..1000 {
            port.enqueue(0, credit()).unwrap();
        }
        let mut now = Time::ZERO;
        let mut sent = 0u64;
        let mut last = Time::ZERO;
        while sent < 1000 {
            match port.next_packet(now) {
                Decision::Send(_) => {
                    sent += 1;
                    last = now;
                }
                Decision::WaitUntil(t) => now = t,
                Decision::Idle => break,
            }
        }
        let achieved_bps = (1000.0 - 2.0) * CTRL_WIRE.as_f64() * 8.0 / last.as_secs_f64();
        let target = rate.as_bps() as f64;
        assert!(
            (achieved_bps - target).abs() / target < 0.01,
            "achieved {achieved_bps} vs {target}"
        );
    }
}
